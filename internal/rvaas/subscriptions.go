package rvaas

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/enclave"
	"repro/internal/headerspace"
	"repro/internal/history"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

// This file implements the standing-invariant subscription engine: the
// continuous form of the paper's verification service. A one-shot query
// tells a client its invariant held at one instant; an adversary who
// reconfigures between two polls is never seen by the client. A
// subscription instead re-evaluates the invariant after every applied
// snapshot change and pushes a signed notification on every verdict
// transition — the monitoring loop the paper runs for its own interception
// rules, generalized to arbitrary client invariants.
//
// Re-verification is incremental and indexed. Every evaluation records its
// footprint: the set of switches the reachability traversal consulted
// (headerspace.Footprint). An applied event dirties exactly the switches
// whose per-switch generation counter advanced (snapshotStore.generations);
// an invariant whose footprint is disjoint from the dirty set is
// revalidated for free — its evaluation is a deterministic function of the
// transfer functions of the footprint switches, none of which changed.
//
// The engine is built for ~10⁵ standing invariants per controller:
//
//   - The subscription map is split across a fixed number of shards with
//     per-shard locks, so Subscribe/Unsubscribe and verdict publication
//     from parallel recheck workers do not contend on one mutex.
//   - An inverted index switch → subscription bucket is kept in sync with
//     each evaluation's recorded footprint (diffed on every commit), so a
//     single-switch event dispatches only the affected bucket — O(touched)
//     instead of a linear footprint scan over every subscription.
//   - The per-invariant evaluations of one pass are independent and fan
//     out across a bounded worker pool. Passes themselves stay serialized
//     (runMu), and each subscription is evaluated at most once per pass,
//     so per-subscription Notification.Seq remains strictly ordered.
//   - Isolation invariants cache one traversal cone per injection point
//     (isolation.go) and re-sweep only the points whose cone was dirtied.

// SubscriptionStats counts subscription-engine activity.
type SubscriptionStats struct {
	// Registered/Removed/Active count subscription lifecycle events.
	Registered uint64
	Removed    uint64
	Active     uint64
	// Rechecks counts re-verification passes that inspected the
	// subscription set (passes with an empty dirty set return early and are
	// not counted).
	Rechecks uint64
	// Evaluated counts invariant evaluations actually run (including the
	// initial evaluation at registration).
	Evaluated uint64
	// Revalidated counts invariants revalidated for free because their
	// footprint missed the dirty set.
	Revalidated uint64
	// IndexDispatched counts invariants dispatched through the inverted
	// switch → subscriptions index (zero when the legacy linear scan is
	// forced).
	IndexDispatched uint64
	// DeltaSkipped counts invariants that sat in a dirty switch's index
	// bucket but were revalidated for free because their recorded traversal
	// slice at every dirty switch was disjoint from the change's
	// header-space delta (rule-delta dispatch; zero when per-switch
	// dispatch is forced).
	DeltaSkipped uint64
	// VerdictQueries counts served SubOpQueryVerdict requests (gap-recovery
	// resyncs answered without a re-subscribe).
	VerdictQueries uint64
	// Violations/Recoveries count verdict transitions.
	Violations uint64
	Recoveries uint64
	// NotificationsSent counts signed in-band notifications accepted for
	// delivery; NotificationsDropped counts notifications discarded because
	// the delivery queue or the subscriber's switch session was saturated
	// (clients recover via Notification.Seq gap detection).
	NotificationsSent    uint64
	NotificationsDropped uint64
	// IsoPointsSwept/IsoPointsReused count per-injection-point isolation
	// cone evaluations re-run versus served from the cone cache.
	IsoPointsSwept  uint64
	IsoPointsReused uint64
}

// subscription is one standing invariant. Identity fields are immutable
// after registration; verdict state (violated, detail, fp, seq, removed) is
// guarded by the owning shard's mutex. The isolation cone cache (cones) is
// touched only during evaluation, which the engine's run lock serializes
// per subscription.
type subscription struct {
	id          uint64
	clientID    uint64
	nonce       uint64
	kind        wire.QueryKind
	constraints []wire.FieldConstraint
	param       string
	bound       int // parsed Param for path-length invariants
	req         requesterInfo

	violated  bool
	detail    string
	fp        headerspace.Footprint
	evaluated bool
	removed   bool
	seq       uint64

	cones *isoConeCache
}

// maxSeenNoncesPerClient bounds the replay-protection memory per client
// (FIFO eviction). The bound is per client, not global: one tenant
// churning subscribe ops can only evict its OWN nonce history, never age
// out another client's — so a captured frame of client A stays
// unreplayable no matter what client B does.
const maxSeenNoncesPerClient = 1024

// clientNonces is one client's replay-protection memory.
type clientNonces struct {
	seen  map[uint64]struct{}
	order []uint64
}

// subShardCount fixes the number of subscription map shards and inverted
// index shards (power of two so the shard pick is a mask).
const subShardCount = 32

// subShard is one slice of the subscription map.
type subShard struct {
	mu   sync.Mutex
	subs map[uint64]*subscription
}

// indexShard is one slice of the inverted footprint index. buckets[n] holds
// every live subscription whose recorded footprint contains switch n.
type indexShard struct {
	mu      sync.Mutex
	buckets map[headerspace.NodeID]map[uint64]*subscription
}

// engineCounters are the hot-path statistics, kept as atomics so parallel
// recheck workers never serialize on a stats mutex.
type engineCounters struct {
	registered, removed                  atomic.Uint64
	rechecks, evaluated, revalidated     atomic.Uint64
	indexDispatched, deltaSkipped        atomic.Uint64
	verdictQueries                       atomic.Uint64
	violations, recoveries               atomic.Uint64
	notificationsSent, notificationsDrop atomic.Uint64
	isoPointsSwept, isoPointsReused      atomic.Uint64
}

// RecheckTuning controls the recheck engine's dispatch strategy and
// evaluation fan-out. Experiments use it for ablations; production
// deployments keep the zero value (indexed dispatch, GOMAXPROCS workers).
type RecheckTuning struct {
	// Parallelism is the worker count one recheck pass fans independent
	// invariant evaluations across; <= 0 means GOMAXPROCS.
	Parallelism int
	// LegacyScan restores the pre-sharding engine for comparison: a linear
	// footprint scan over every subscription, sequential evaluation, and
	// full isolation sweeps (no cone cache exploitation).
	LegacyScan bool
	// PerSwitchDispatch restores switch-granularity dirty dispatch (the
	// PR 3 engine, kept as the differential reference): every invariant in
	// a dirty switch's index bucket re-runs, without the footprint-slice ∩
	// rule-delta overlap filter. Verdicts are identical either way — the
	// filter only skips evaluations whose outcome provably cannot change.
	PerSwitchDispatch bool
}

// subscriptionEngine owns the subscription set and the incremental
// re-verification state.
type subscriptionEngine struct {
	// runMu serializes whole re-verification passes so concurrent triggers
	// (parallel polls, passive events, manual rechecks) cannot interleave
	// evaluations and double-report one transition. It also guards lastGen
	// and every subscription's evaluation-only state (isolation cones).
	runMu  sync.Mutex
	shards [subShardCount]subShard
	index  [subShardCount]indexShard
	nextID atomic.Uint64

	// nonceMu guards seenNonces: wire-registered nonces per client —
	// including removed subscriptions, so a captured SubOpAdd frame cannot
	// be replayed after the client unsubscribes.
	nonceMu    sync.Mutex
	seenNonces map[uint64]*clientNonces

	// lastGen is the generation baseline of the previous pass; the diff
	// against the store's current counters is the dirty set. Guarded by
	// runMu.
	lastGen map[topology.SwitchID]uint64

	parallelism atomic.Int64
	legacyScan  atomic.Bool
	perSwitch   atomic.Bool

	stats engineCounters
}

func newSubscriptionEngine() *subscriptionEngine {
	e := &subscriptionEngine{
		seenNonces: make(map[uint64]*clientNonces),
		lastGen:    make(map[topology.SwitchID]uint64),
	}
	for i := range e.shards {
		e.shards[i].subs = make(map[uint64]*subscription)
	}
	for i := range e.index {
		e.index[i].buckets = make(map[headerspace.NodeID]map[uint64]*subscription)
	}
	return e
}

func (e *subscriptionEngine) shardFor(id uint64) *subShard {
	return &e.shards[id&(subShardCount-1)]
}

func (e *subscriptionEngine) indexFor(n headerspace.NodeID) *indexShard {
	return &e.index[uint32(n)&(subShardCount-1)]
}

// indexAdd/indexRemove maintain the inverted footprint index. Callers hold
// the subscription's shard mutex; index shard mutexes nest inside shard
// mutexes (never the other way around), so the lock order is acyclic.
func (e *subscriptionEngine) indexAdd(sub *subscription, nodes []headerspace.NodeID) {
	for _, n := range nodes {
		ish := e.indexFor(n)
		ish.mu.Lock()
		bucket := ish.buckets[n]
		if bucket == nil {
			bucket = make(map[uint64]*subscription)
			ish.buckets[n] = bucket
		}
		bucket[sub.id] = sub
		ish.mu.Unlock()
	}
}

func (e *subscriptionEngine) indexRemove(sub *subscription, nodes []headerspace.NodeID) {
	for _, n := range nodes {
		ish := e.indexFor(n)
		ish.mu.Lock()
		if bucket := ish.buckets[n]; bucket != nil {
			delete(bucket, sub.id)
			if len(bucket) == 0 {
				delete(ish.buckets, n)
			}
		}
		ish.mu.Unlock()
	}
}

// removeLocked unlinks one subscription from its shard map and the inverted
// index. Callers hold sh.mu (the shard owning sub).
func (e *subscriptionEngine) removeLocked(sh *subShard, sub *subscription) {
	sub.removed = true
	delete(sh.subs, sub.id)
	e.indexRemove(sub, sub.fp.Nodes())
	e.stats.removed.Add(1)
}

// activeCount sums the shard sizes.
func (e *subscriptionEngine) activeCount() uint64 {
	var n uint64
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		n += uint64(len(sh.subs))
		sh.mu.Unlock()
	}
	return n
}

// SubscriptionInfo is a read-only snapshot of one standing invariant.
type SubscriptionInfo struct {
	ID       uint64
	ClientID uint64
	Kind     wire.QueryKind
	Param    string
	Violated bool
	Detail   string
	// FootprintSize is the number of switches the last evaluation
	// consulted.
	FootprintSize int
}

// SubscriptionStats returns a copy of the engine counters.
func (c *Controller) SubscriptionStats() SubscriptionStats {
	e := c.subs
	return SubscriptionStats{
		Registered:           e.stats.registered.Load(),
		Removed:              e.stats.removed.Load(),
		Active:               e.activeCount(),
		Rechecks:             e.stats.rechecks.Load(),
		Evaluated:            e.stats.evaluated.Load(),
		Revalidated:          e.stats.revalidated.Load(),
		IndexDispatched:      e.stats.indexDispatched.Load(),
		DeltaSkipped:         e.stats.deltaSkipped.Load(),
		VerdictQueries:       e.stats.verdictQueries.Load(),
		Violations:           e.stats.violations.Load(),
		Recoveries:           e.stats.recoveries.Load(),
		NotificationsSent:    e.stats.notificationsSent.Load(),
		NotificationsDropped: e.stats.notificationsDrop.Load(),
		IsoPointsSwept:       e.stats.isoPointsSwept.Load(),
		IsoPointsReused:      e.stats.isoPointsReused.Load(),
	}
}

// SetRecheckTuning adjusts the recheck engine's dispatch strategy and
// worker-pool width at runtime (safe concurrently with passes: the next
// pass observes the new tuning).
func (c *Controller) SetRecheckTuning(t RecheckTuning) {
	c.subs.parallelism.Store(int64(t.Parallelism))
	c.subs.legacyScan.Store(t.LegacyScan)
	c.subs.perSwitch.Store(t.PerSwitchDispatch)
}

// Subscriptions lists the standing invariants in id order.
func (c *Controller) Subscriptions() []SubscriptionInfo {
	e := c.subs
	var out []SubscriptionInfo
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for _, sub := range sh.subs {
			out = append(out, SubscriptionInfo{
				ID: sub.id, ClientID: sub.clientID, Kind: sub.kind, Param: sub.param,
				Violated: sub.violated, Detail: sub.detail, FootprintSize: len(sub.fp),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ViolationLog exposes the recorded verdict transitions (read-only use).
func (c *Controller) ViolationLog() *history.ViolationLog { return c.vlog }

// Subscribe registers a standing invariant on behalf of clientID, anchored
// at the access point `at` (the client's network card, where notifications
// are injected). Supported kinds: reachable-destinations (violated when the
// scoped traffic can no longer leave the network anywhere), isolation,
// path-length, waypoint-avoidance (violated exactly when the one-shot
// query of the same kind would report StatusViolation). The invariant is
// evaluated immediately; the verdict is readable via Subscriptions and the
// returned id.
func (c *Controller) Subscribe(clientID uint64, kind wire.QueryKind, constraints []wire.FieldConstraint, param string, at topology.Endpoint) (uint64, error) {
	req := requesterInfo{sw: at.Switch, port: at.Port}
	if ap, ok := c.topo.AccessPointAt(at); ok {
		req.mac, req.ip = ap.HostMAC, ap.HostIP
	}
	return c.subscribe(clientID, 0, kind, constraints, param, req)
}

func (c *Controller) subscribe(clientID, nonce uint64, kind wire.QueryKind, constraints []wire.FieldConstraint, param string, req requesterInfo) (uint64, error) {
	sub := &subscription{
		clientID:    clientID,
		nonce:       nonce,
		kind:        kind,
		constraints: append([]wire.FieldConstraint(nil), constraints...),
		param:       param,
		req:         req,
	}
	switch kind {
	case wire.QueryReachableDestinations, wire.QueryIsolation, wire.QueryWaypointAvoidance:
	case wire.QueryPathLength:
		bound, err := strconv.Atoi(param)
		if err != nil {
			return 0, fmt.Errorf("rvaas: path-length subscription needs integer Param, got %q", param)
		}
		sub.bound = bound
	default:
		return 0, fmt.Errorf("rvaas: unsupported subscription kind %s", kind)
	}

	e := c.subs
	if nonce != 0 {
		// Wire-path replay protection: a (client, nonce) pair identifies
		// one subscribe operation. The memory survives unsubscription so a
		// captured frame cannot resurrect a removed invariant, and is
		// bounded per client so no other tenant can age it out.
		e.nonceMu.Lock()
		cn := e.seenNonces[clientID]
		if cn == nil {
			cn = &clientNonces{seen: make(map[uint64]struct{})}
			e.seenNonces[clientID] = cn
		}
		if _, dup := cn.seen[nonce]; dup {
			e.nonceMu.Unlock()
			return 0, fmt.Errorf("rvaas: duplicate subscription nonce %#x for client %d (replay?)", nonce, clientID)
		}
		cn.seen[nonce] = struct{}{}
		cn.order = append(cn.order, nonce)
		if len(cn.order) > maxSeenNoncesPerClient {
			delete(cn.seen, cn.order[0])
			cn.order = cn.order[1:]
		}
		e.nonceMu.Unlock()
	}
	sub.id = e.nextID.Add(1)
	sh := e.shardFor(sub.id)
	sh.mu.Lock()
	sh.subs[sub.id] = sub
	sh.mu.Unlock()
	e.stats.registered.Add(1)

	// Initial evaluation, serialized with re-verification passes so the
	// first verdict cannot race a concurrent recheck of the same
	// subscription. An initially-violated invariant is recorded in the
	// violation log but not pushed in-band: the ack carries the verdict.
	e.runMu.Lock()
	net := c.snap.buildNetwork(c.topo)
	v := c.evaluateInvariant(net, sub, nil, nil, true, false)
	c.commitVerdict(sub, v, c.snap.snapshotID(), false)
	e.runMu.Unlock()
	return sub.id, nil
}

// Unsubscribe removes a standing invariant; it reports whether the id was
// registered to the given client.
func (c *Controller) Unsubscribe(clientID, id uint64) bool {
	e := c.subs
	sh := e.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sub, ok := sh.subs[id]
	if !ok || sub.clientID != clientID {
		return false
	}
	e.removeLocked(sh, sub)
	return true
}

// unsubscribeByNonce removes a client's subscription by its registration
// nonce — the cleanup path for a client whose subscribe ack was lost and
// who therefore never learned the SubID.
func (c *Controller) unsubscribeByNonce(clientID, nonce uint64) (uint64, bool) {
	if nonce == 0 {
		return 0, false
	}
	e := c.subs
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for id, sub := range sh.subs {
			if sub.clientID == clientID && sub.nonce == nonce {
				e.removeLocked(sh, sub)
				sh.mu.Unlock()
				return id, true
			}
		}
		sh.mu.Unlock()
	}
	return 0, false
}

// verdict is one invariant evaluation outcome.
type verdict struct {
	violated bool
	detail   string
	fp       headerspace.Footprint
}

// evaluateInvariant runs one standing invariant against the compiled
// network, capturing the footprint for future incremental revalidation.
// dirty is the current pass's dirty switch set; deltas (nil under
// per-switch dispatch, RevalidateAll and the legacy ablation) refines it
// with each dirty switch's rule-delta header space. fullSweep forces
// from-scratch evaluation (registration, RevalidateAll, legacy mode) —
// isolation invariants otherwise re-sweep only the injection points whose
// cached cone was dirtied (isolation.go). pooled marks evaluation inside
// a multi-worker pass, where isolation sweeps must not nest a second
// fan-out. Callers hold the engine's run lock (directly or by running
// inside a pass's worker pool).
func (c *Controller) evaluateInvariant(net *headerspace.Network, sub *subscription, dirty []headerspace.NodeID, deltas map[headerspace.NodeID]headerspace.Space, fullSweep, pooled bool) verdict {
	space := scopeSpace(sub.constraints)
	at, port := headerspace.NodeID(sub.req.sw), headerspace.PortID(sub.req.port)
	switch sub.kind {
	case wire.QueryReachableDestinations:
		results, fp := net.ReachFootprint(at, port, space, headerspace.ReachOptions{})
		eps := c.collectEndpoints(results, sub.req)
		if len(eps) == 0 {
			return verdict{violated: true, detail: "no reachable destinations for scoped traffic", fp: fp}
		}
		return verdict{detail: fmt.Sprintf("%d reachable endpoint(s)", len(eps)), fp: fp}
	case wire.QueryIsolation:
		return c.evaluateIsolation(net, sub, dirty, deltas, fullSweep, pooled)
	case wire.QueryPathLength:
		results, fp := net.ReachFootprint(at, port, space, headerspace.ReachOptions{KeepLoops: true})
		violated, detail := pathLengthVerdict(results, sub.bound)
		return verdict{violated: violated, detail: detail, fp: fp}
	case wire.QueryWaypointAvoidance:
		results, fp := net.ReachFootprint(at, port, space, headerspace.ReachOptions{})
		violated, detail := c.waypointVerdict(results, sub.param)
		return verdict{violated: violated, detail: detail, fp: fp}
	}
	return verdict{violated: false, detail: "unsupported kind", fp: headerspace.NewFootprint()}
}

// commitVerdict publishes one evaluation outcome, re-syncs the inverted
// footprint index with the new footprint and, on a verdict transition,
// appends a violation-log record and (when notify is set) queues a signed
// in-band notification to the subscriber. Callers hold the engine's run
// lock; the shard mutex makes the publication atomic against concurrent
// Subscribe/Unsubscribe on other subscriptions of the same shard.
func (c *Controller) commitVerdict(sub *subscription, v verdict, snapID uint64, notify bool) {
	e := c.subs
	sh := e.shardFor(sub.id)
	sh.mu.Lock()
	if sub.removed {
		// Unsubscribed while the evaluation ran: the index entries are
		// gone; publishing (or re-indexing) would resurrect a dead
		// invariant.
		sh.mu.Unlock()
		return
	}
	e.stats.evaluated.Add(1)
	prevViolated, prevEvaluated := sub.violated, sub.evaluated
	added, removed := headerspace.DiffFootprints(sub.fp, v.fp)
	sub.violated = v.violated
	sub.detail = v.detail
	sub.fp = v.fp
	sub.evaluated = true
	e.indexAdd(sub, added)
	e.indexRemove(sub, removed)
	changed := (prevEvaluated && prevViolated != v.violated) || (!prevEvaluated && v.violated)
	var seq uint64
	if changed {
		sub.seq++
		seq = sub.seq
		if v.violated {
			e.stats.violations.Add(1)
		} else {
			e.stats.recoveries.Add(1)
		}
	}
	sh.mu.Unlock()
	if !changed {
		return
	}

	event := history.EventRecovery
	nev := wire.NotifyRecovery
	status := wire.StatusOK
	if v.violated {
		event = history.EventViolation
		nev = wire.NotifyViolation
		status = wire.StatusViolation
	}
	c.vlog.Append(history.Violation{
		At:         c.cfg.Clock(),
		Event:      event,
		SubID:      sub.id,
		ClientID:   sub.clientID,
		Kind:       sub.kind.String(),
		Detail:     v.detail,
		SnapshotID: snapID,
	})
	if notify {
		c.sendNotification(sub, nev, status, v.detail, seq, snapID)
	}
}

// sendNotification signs one notification and hands it to the asynchronous
// delivery queue. The queue is bounded and the enqueue never blocks: a
// wedged or dead subscriber can stall neither a recheck worker nor the
// engine's run lock. Dropped notifications surface at the client as a
// Notification.Seq gap, which triggers its re-subscribe recovery.
func (c *Controller) sendNotification(sub *subscription, event wire.NotifyEvent, status wire.ResponseStatus, detail string, seq, snapID uint64) {
	if sub.req.mac == 0 && sub.req.ip == 0 {
		return // no in-band delivery point (in-process subscriber)
	}
	n := &wire.Notification{
		Version:    wire.CurrentVersion,
		Event:      event,
		Kind:       sub.kind,
		Status:     status,
		SubID:      sub.id,
		Nonce:      sub.nonce,
		Seq:        seq,
		SnapshotID: snapID,
		Detail:     detail,
	}
	n.Signature = c.enclave.Sign(n.SigningBytes())
	n.Quote = c.enclave.KeyQuote().Marshal()
	job := notifyJob{
		sw:   sub.req.sw,
		port: sub.req.port,
		pkt:  wire.NewNotificationPacket(sub.req.mac, sub.req.ip, n),
	}
	select {
	case c.notifyQ <- job:
		c.subs.stats.notificationsSent.Add(1)
	default:
		c.subs.stats.notificationsDrop.Add(1)
	}
}

// notifyJob is one queued in-band notification delivery.
type notifyJob struct {
	sw   topology.SwitchID
	port topology.PortNo
	pkt  *wire.Packet
}

// notifier drains the notification queue onto switch sessions with
// non-blocking sends: a switch whose control channel is saturated (e.g.
// its serve loop is stuck behind a wedged host) costs a dropped
// notification, never a stalled engine.
func (c *Controller) notifier() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case j := <-c.notifyQ:
			if !c.trySendPacketOut(j.sw, j.port, j.pkt) {
				c.subs.stats.notificationsDrop.Add(1)
			}
		}
	}
}

// trySendPacketOut injects a frame at a switch without ever blocking on the
// session's send buffer.
func (c *Controller) trySendPacketOut(sw topology.SwitchID, outPort topology.PortNo, pkt *wire.Packet) bool {
	c.mu.Lock()
	sess := c.sessions[sw]
	c.mu.Unlock()
	if sess == nil {
		return false
	}
	sent, err := sess.conn.TrySend(&openflow.PacketOut{
		XID:     c.xid(),
		InPort:  openflow.AnyPort,
		Actions: []openflow.Action{openflow.Output(uint32(outPort))},
		Data:    pkt.Marshal(),
	})
	return sent && err == nil
}

// RecheckNow runs one incremental re-verification pass synchronously:
// the dirty switches since the last pass select the affected subscription
// buckets from the inverted index, and only those invariants re-run —
// fanned across the worker pool. The background worker calls this after
// every applied snapshot change; experiments and tests call it directly.
func (c *Controller) RecheckNow() { c.recheckSubscriptions(false) }

// RevalidateAll re-evaluates every standing invariant from scratch,
// ignoring footprints — the naive re-query baseline the E12 experiment
// compares incremental re-verification against.
func (c *Controller) RevalidateAll() { c.recheckSubscriptions(true) }

func (c *Controller) recheckSubscriptions(force bool) {
	e := c.subs
	e.runMu.Lock()
	defer e.runMu.Unlock()

	// The drained deltas describe exactly the changes between the previous
	// pass's generation baseline and this one (one lock acquisition covers
	// both), so dirty-set membership and delta content can never disagree.
	_, gens, deltas := c.snap.generationsAndDeltas()
	var dirty []headerspace.NodeID
	for sw, g := range gens {
		if e.lastGen[sw] != g {
			dirty = append(dirty, headerspace.NodeID(sw))
		}
	}
	e.lastGen = gens
	if !force && len(dirty) == 0 {
		return
	}

	legacy := e.legacyScan.Load()
	perSwitch := e.perSwitch.Load() || force || legacy
	// deltaByNode maps each dirty switch to its pending rule delta. Dirty
	// switches whose delta is semantically empty — a fully shadowed insert,
	// meter-only churn, interception-rule churn — are dropped from dispatch
	// entirely: no packet's forwarding behavior changed, so no invariant
	// can flip. A dirty switch with no drained delta (engine attached after
	// store churn) conservatively widens to the full header space.
	var deltaByNode map[headerspace.NodeID]headerspace.Space
	dispatch := dirty
	if !perSwitch {
		deltaByNode = make(map[headerspace.NodeID]headerspace.Space, len(dirty))
		dispatch = make([]headerspace.NodeID, 0, len(dirty))
		for _, n := range dirty {
			d, ok := deltas[topology.SwitchID(n)]
			if !ok {
				d = headerspace.FullSpace(wire.HeaderWidth)
			}
			if d.IsEmpty() {
				continue
			}
			deltaByNode[n] = d
			dispatch = append(dispatch, n)
		}
	}

	var targets []*subscription
	var active, free uint64
	if force || legacy {
		// Full enumeration: RevalidateAll re-runs everything; the legacy
		// ablation reproduces the pre-index engine's linear footprint scan.
		for i := range e.shards {
			sh := &e.shards[i]
			sh.mu.Lock()
			for _, sub := range sh.subs {
				active++
				if force || sub.fp.Invalidated(dirty) {
					targets = append(targets, sub)
				} else {
					free++
				}
			}
			sh.mu.Unlock()
		}
	} else {
		// Indexed dirty dispatch: the union of the dispatch switches'
		// buckets is the set of invariants whose footprint was touched;
		// the rule-delta overlap filter then discards the ones whose
		// recorded traversal slice misses every delta (their evaluation is
		// a function of transfer-function behavior on exactly those
		// slices, none of which changed).
		seen := make(map[uint64]*subscription)
		for _, n := range dispatch {
			ish := e.indexFor(n)
			ish.mu.Lock()
			for id, sub := range ish.buckets[n] {
				seen[id] = sub
			}
			ish.mu.Unlock()
		}
		targets = make([]*subscription, 0, len(seen))
		for _, sub := range seen {
			// sub.fp is written only under runMu (commitVerdict), which we
			// hold: the read is race-free. The pass-start perSwitch capture
			// (not a re-load) decides the filter: a concurrent
			// SetRecheckTuning flip must not turn a per-switch pass (nil
			// deltaByNode) into a delta-filtered one mid-loop, which would
			// skip every target against an empty delta map.
			if perSwitch || sub.fp.InvalidatedBy(deltaByNode) {
				targets = append(targets, sub)
			} else {
				e.stats.deltaSkipped.Add(1)
			}
		}
		active = e.activeCount()
		if n := uint64(len(targets)); active > n {
			free = active - n
		}
		e.stats.indexDispatched.Add(uint64(len(targets)))
	}
	if active == 0 {
		return
	}
	e.stats.rechecks.Add(1)
	if free > 0 {
		e.stats.revalidated.Add(free)
	}
	if len(targets) == 0 {
		return
	}

	// Served from the compile cache: only dirty switches recompile.
	net := c.snap.buildNetwork(c.topo)
	snapID := c.snap.snapshotID()
	fullSweep := force || legacy

	workers := int(e.parallelism.Load())
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if legacy {
		workers = 1
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	pooled := workers > 1
	run := func(sub *subscription) {
		v := c.evaluateInvariant(net, sub, dirty, deltaByNode, fullSweep, pooled)
		c.commitVerdict(sub, v, snapID, true)
	}
	if workers <= 1 {
		for _, sub := range targets {
			run(sub)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(targets) {
					return
				}
				run(targets[i])
			}
		}()
	}
	wg.Wait()
}

// pokeSubscriptions nudges the background worker; called after every
// applied snapshot change. Non-blocking: a pending nudge coalesces bursts.
func (c *Controller) pokeSubscriptions() {
	select {
	case c.subKick <- struct{}{}:
	default:
	}
}

// subscriptionWorker drains recheck nudges until the controller closes.
func (c *Controller) subscriptionWorker() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-c.subKick:
			c.recheckSubscriptions(false)
		}
	}
}

// handleSubscribe serves one intercepted in-band subscription operation
// and acknowledges it with a signed notification carrying the initial
// verdict (SubOpAdd) or the removal outcome (SubOpRemove). Operations
// mutate server state, so they are only honored when signed by the
// requesting client's registered key — otherwise any in-network host
// could forge a SubOpRemove and silently disable a victim's standing
// monitoring.
func (c *Controller) handleSubscribe(sw topology.SwitchID, inPort topology.PortNo, pkt *wire.Packet, sr *wire.SubscribeRequest) {
	req := requesterInfo{sw: sw, port: inPort, mac: pkt.EthSrc, ip: pkt.IPSrc}
	ack := &wire.Notification{
		Version: wire.CurrentVersion,
		Event:   wire.NotifyAck,
		Kind:    sr.Kind,
		Status:  wire.StatusOK,
		Nonce:   sr.Nonce,
	}
	c.mu.Lock()
	pub, registered := c.clients[sr.ClientID]
	c.mu.Unlock()
	if !registered || !enclave.VerifyFrom(pub, sr.SigningBytes(), sr.Signature) {
		ack.Event = wire.NotifyError
		ack.Status = wire.StatusError
		ack.Detail = fmt.Sprintf("subscription op not signed by registered key of client %d", sr.ClientID)
		c.finishSubscribeAck(sw, inPort, pkt, ack)
		return
	}
	switch sr.Op {
	case wire.SubOpAdd:
		// The signed anchor must match the actual ingress: a captured
		// subscribe frame replayed from a different port would otherwise
		// re-anchor the invariant (and its notifications) at the
		// replayer's endpoint.
		if sr.AnchorSwitch != uint32(sw) || sr.AnchorPort != uint32(inPort) {
			ack.Event = wire.NotifyError
			ack.Status = wire.StatusError
			ack.Detail = fmt.Sprintf("anchor (%d,%d) does not match ingress (%d,%d)",
				sr.AnchorSwitch, sr.AnchorPort, sw, inPort)
			break
		}
		id, err := c.subscribe(sr.ClientID, sr.Nonce, sr.Kind, sr.Constraints, sr.Param, req)
		if err != nil {
			ack.Event = wire.NotifyError
			ack.Status = wire.StatusError
			ack.Detail = err.Error()
			break
		}
		ack.SubID = id
		e := c.subs
		sh := e.shardFor(id)
		sh.mu.Lock()
		if sub := sh.subs[id]; sub != nil {
			ack.Detail = sub.detail
			if sub.violated {
				ack.Status = wire.StatusViolation
			}
			// An initially-violated invariant consumes sequence number 1
			// without any push existing for it (the ack IS the verdict).
			// Carrying the current seq lets the client baseline its gap
			// detection so the first real push is not misread as a loss.
			ack.Seq = sub.seq
		}
		sh.mu.Unlock()
	case wire.SubOpQueryVerdict:
		// Current-verdict query: gap recovery resyncs from the signed ack
		// (status, detail, sequence number) without a re-subscribe. The
		// signature check above bound the request to the client, and the
		// ownership check below keeps one tenant from reading another's
		// verdicts.
		ack.SubID = sr.SubID
		sh := c.subs.shardFor(sr.SubID)
		sh.mu.Lock()
		sub := sh.subs[sr.SubID]
		if sub == nil || sub.clientID != sr.ClientID {
			sh.mu.Unlock()
			ack.Event = wire.NotifyError
			ack.Status = wire.StatusError
			ack.Detail = fmt.Sprintf("no subscription %d for client %d", sr.SubID, sr.ClientID)
			break
		}
		if sub.req.sw != sw || sub.req.port != inPort {
			// Ingress must match the subscription's anchor — the same
			// defense SubOpAdd applies: a captured (authentically signed)
			// query frame replayed from another port would otherwise
			// deliver the tenant's signed verdict to the replayer's
			// endpoint.
			sh.mu.Unlock()
			ack.Event = wire.NotifyError
			ack.Status = wire.StatusError
			ack.Detail = fmt.Sprintf("ingress (%d,%d) does not match subscription anchor (%d,%d)",
				sw, inPort, sub.req.sw, sub.req.port)
			break
		}
		ack.Kind = sub.kind
		ack.Detail = sub.detail
		if sub.violated {
			ack.Status = wire.StatusViolation
		}
		// The current per-subscription sequence number lets the client
		// rebase its gap detection: every push at or below it is covered
		// by this verdict.
		ack.Seq = sub.seq
		sh.mu.Unlock()
		c.subs.stats.verdictQueries.Add(1)
	case wire.SubOpRemove:
		// Removal is idempotent: removing an already-absent subscription
		// acks success, so clients can always reconcile local teardown
		// with the server. NotifyError on a remove therefore always means
		// the op itself was rejected (bad auth), never "already gone".
		ack.SubID = sr.SubID
		if sr.SubID == 0 {
			// Removal by registration nonce: orphan cleanup after a lost
			// subscribe ack.
			if id, ok := c.unsubscribeByNonce(sr.ClientID, sr.RefNonce); ok {
				ack.SubID = id
			} else {
				ack.Detail = fmt.Sprintf("no subscription with nonce %#x (already removed)", sr.RefNonce)
			}
		} else if !c.Unsubscribe(sr.ClientID, sr.SubID) {
			ack.Detail = fmt.Sprintf("no subscription %d (already removed)", sr.SubID)
		}
	default:
		ack.Event = wire.NotifyError
		ack.Status = wire.StatusError
		ack.Detail = fmt.Sprintf("unknown subscription op %d", sr.Op)
	}
	c.finishSubscribeAck(sw, inPort, pkt, ack)
}

// finishSubscribeAck signs and injects one subscription ack.
func (c *Controller) finishSubscribeAck(sw topology.SwitchID, inPort topology.PortNo, pkt *wire.Packet, ack *wire.Notification) {
	ack.SnapshotID = c.snap.snapshotID()
	ack.Signature = c.enclave.Sign(ack.SigningBytes())
	ack.Quote = c.enclave.KeyQuote().Marshal()
	_ = c.sendPacketOut(sw, inPort, wire.NewNotificationPacket(pkt.EthSrc, pkt.IPSrc, ack))
}
