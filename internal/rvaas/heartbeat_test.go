package rvaas

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/enclave"
	"repro/internal/openflow"
	"repro/internal/topology"
)

// fakeSwitch answers the controller's attach sequence (stats polls, echoes)
// over a secure channel until muted — then it keeps the channel open but
// stops answering, the way a wedged or SIGKILLed remote process looks to a
// datagram transport.
type fakeSwitch struct {
	conn  *openflow.SecureConn
	muted atomic.Bool
	seq   uint64
}

func (f *fakeSwitch) run() {
	for {
		msg, err := f.conn.Recv()
		if err != nil {
			return
		}
		if f.muted.Load() {
			continue
		}
		switch m := msg.(type) {
		case *openflow.StatsRequest:
			f.seq++
			_ = f.conn.Send(&openflow.StatsReply{XID: m.XID, TableSeq: f.seq})
		case *openflow.EchoRequest:
			_ = f.conn.Send(&openflow.EchoReply{XID: m.XID, Data: m.Data})
		}
	}
}

// TestHeartbeatDetachesSilentSession: with heartbeats enabled, a session
// whose peer goes silent (channel still open — no transport-close signal)
// is detached after the miss threshold and reported as detached, while a
// responsive session stays attached.
func TestHeartbeatDetachesSilentSession(t *testing.T) {
	topo, err := topology.Linear(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(Config{
		Topology:          topo,
		Platform:          platform,
		ManualRecheck:     true,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	ca, err := openflow.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	ctlID, err := openflow.NewIdentity("rvaas")
	if err != nil {
		t.Fatal(err)
	}
	ctlCert := ca.Issue(ctlID)
	attach := func(sw topology.SwitchID, name string) *fakeSwitch {
		t.Helper()
		swID, err := openflow.NewIdentity(name)
		if err != nil {
			t.Fatal(err)
		}
		ctlConn, swConn, err := openflow.ConnectSecure(ctlID, ctlCert, swID, ca.Issue(swID), ca.Pub)
		if err != nil {
			t.Fatal(err)
		}
		f := &fakeSwitch{conn: swConn}
		go f.run()
		if err := ctl.Attach(sw, ctlConn); err != nil {
			t.Fatalf("attach %d: %v", sw, err)
		}
		return f
	}
	silent := attach(1, "switch-1")
	attach(2, "switch-2")

	// Both alive: heartbeats keep both sessions attached.
	time.Sleep(100 * time.Millisecond)
	for _, ss := range ctl.SwitchSessions() {
		if !ss.Attached() {
			t.Fatalf("switch %d = %q with a live peer", ss.Switch, ss.State)
		}
	}
	if ctl.Stats().Detaches != 0 {
		t.Fatal("spurious detach with live peers")
	}

	// Switch 1's host process wedges: channel open, nobody home.
	silent.muted.Store(true)
	deadline := time.Now().Add(3 * time.Second)
	for {
		sessions := ctl.SwitchSessions()
		if sessions[0].State == SwitchDetached {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("silent session never detached: %+v", sessions)
		}
		time.Sleep(10 * time.Millisecond)
	}
	sessions := ctl.SwitchSessions()
	if sessions[1].State != SwitchAttached {
		t.Fatalf("responsive switch 2 = %q, want attached", sessions[1].State)
	}
	if st := ctl.Stats(); st.Detaches != 1 {
		t.Errorf("detaches = %d, want 1", st.Detaches)
	}
}
