package rvaas_test

import (
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/wire"
)

// TestRepeatedQueriesHitCompileCache asserts the tentpole acceptance
// criterion end-to-end: repeated queries against an unchanged snapshot must
// skip network compilation entirely (served from the compile cache).
func TestRepeatedQueriesHitCompileCache(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{})
	aps := d.Topology.AccessPoints()
	agent := d.Agent(1)

	// Setup-time flow-monitor events (RVaaS's own interception rules) land
	// asynchronously after deploy returns; wait for the snapshot to go
	// quiet so the cache counters below measure only the queries.
	last := d.RVaaS.SnapshotID()
	for stable := 0; stable < 3; {
		time.Sleep(10 * time.Millisecond)
		if cur := d.RVaaS.SnapshotID(); cur == last {
			stable++
		} else {
			last, stable = cur, 0
		}
	}

	if _, err := agent.Query(wire.QueryReachableDestinations, ipConstraint(aps[2].HostIP), ""); err != nil {
		t.Fatal(err)
	}
	base := d.RVaaS.CompileCacheStats()

	const extra = 5
	for i := 0; i < extra; i++ {
		if _, err := agent.Query(wire.QueryReachableDestinations, ipConstraint(aps[2].HostIP), ""); err != nil {
			t.Fatal(err)
		}
	}
	st := d.RVaaS.CompileCacheStats()
	if got := st.NetworkHits - base.NetworkHits; got != extra {
		t.Errorf("cache hits = %d, want %d (every repeat query must hit)", got, extra)
	}
	if st.NetworkBuilds != base.NetworkBuilds {
		t.Errorf("repeat queries rebuilt the network %d time(s)", st.NetworkBuilds-base.NetworkBuilds)
	}
	if st.SwitchCompiles != base.SwitchCompiles {
		t.Errorf("repeat queries recompiled %d switch(es)", st.SwitchCompiles-base.SwitchCompiles)
	}

	// A reaching-sources sweep (the parallel ReachAll path) must share the
	// same cached network too.
	if _, err := agent.Query(wire.QueryReachingSources, ipConstraint(aps[0].HostIP), ""); err != nil {
		t.Fatal(err)
	}
	st2 := d.RVaaS.CompileCacheStats()
	if st2.NetworkBuilds != st.NetworkBuilds {
		t.Errorf("reaching-sources rebuilt the network")
	}
}
