// Package admin is the operator-plane ops API over a running RVaaS
// controller, layered handler → service: Service exposes typed operations
// (list/filter/paginate subscriptions, per-shard engine stats, verdict
// history, forced resync, session listing, an overview), and Handler
// (http.go) maps them onto a local HTTP endpoint. `rvaasd` mounts the
// handler; `rvaasd ops` is the CLI client.
//
// Every read goes through the controller's lock-free admin surface
// (per-shard snapshots and atomic counters) so operating the service never
// contends with the verification engine's re-check passes.
package admin

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/rvaas"
	"repro/internal/topology"
)

// Service is the operator-plane service layer.
type Service struct {
	ctl *rvaas.Controller
}

// NewService wraps a running controller.
func NewService(ctl *rvaas.Controller) *Service { return &Service{ctl: ctl} }

// Subscription status filter values.
const (
	StatusAny      = ""
	StatusViolated = "violated"
	StatusOK       = "ok"
)

// SubFilter restricts a subscription listing. Zero values mean "any".
type SubFilter struct {
	// Status is "", "violated" or "ok".
	Status string
	// Client restricts to one client ID (0 = any).
	Client uint64
	// Kind restricts to one invariant kind by wire name ("" = any).
	Kind string
	// Session restricts to one session ID; meaningful only with HasSession
	// (session 0 is the v1/in-process group).
	Session    uint64
	HasSession bool
}

func (f SubFilter) validate() error {
	switch f.Status {
	case StatusAny, StatusViolated, StatusOK:
		return nil
	}
	return fmt.Errorf("admin: unknown status filter %q (want %q or %q)", f.Status, StatusViolated, StatusOK)
}

func (f SubFilter) match(s rvaas.SubscriptionInfo) bool {
	if f.Status == StatusViolated && !s.Violated {
		return false
	}
	if f.Status == StatusOK && s.Violated {
		return false
	}
	if f.Client != 0 && s.ClientID != f.Client {
		return false
	}
	if f.Kind != "" && s.Kind.String() != f.Kind {
		return false
	}
	if f.HasSession && s.SessionID != f.Session {
		return false
	}
	return true
}

// SubView is the JSON shape of one standing invariant.
type SubView struct {
	ID            uint64 `json:"id"`
	Client        uint64 `json:"client"`
	Session       uint64 `json:"session"`
	Kind          string `json:"kind"`
	Param         string `json:"param,omitempty"`
	Status        string `json:"status"`
	Detail        string `json:"detail,omitempty"`
	Seq           uint64 `json:"seq"`
	FootprintSize int    `json:"footprintSize"`
}

func subView(s rvaas.SubscriptionInfo) SubView {
	status := StatusOK
	if s.Violated {
		status = StatusViolated
	}
	return SubView{
		ID: s.ID, Client: s.ClientID, Session: s.SessionID,
		Kind: s.Kind.String(), Param: s.Param,
		Status: status, Detail: s.Detail, Seq: s.Seq,
		FootprintSize: s.FootprintSize,
	}
}

// SubPage is one page of a filtered subscription listing, keyed by ID:
// request the next page with After = NextAfter until NextAfter is 0.
type SubPage struct {
	Subs []SubView `json:"subs"`
	// Total is the number of subscriptions matching the filter (all pages).
	Total int `json:"total"`
	// NextAfter is the cursor for the next page (0 = exhausted).
	NextAfter uint64 `json:"nextAfter"`
}

// DefaultPageSize bounds listings when the caller does not choose one.
const DefaultPageSize = 100

// ListSubscriptions returns the page of filtered subscriptions with ID >
// after, in ID order.
func (s *Service) ListSubscriptions(f SubFilter, after uint64, pageSize int) (SubPage, error) {
	if err := f.validate(); err != nil {
		return SubPage{}, err
	}
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	page := SubPage{Subs: []SubView{}}
	for _, sub := range s.ctl.Subscriptions() {
		if !f.match(sub) {
			continue
		}
		page.Total++
		if sub.ID <= after {
			continue
		}
		if len(page.Subs) < pageSize {
			page.Subs = append(page.Subs, subView(sub))
		} else if page.NextAfter == 0 {
			page.NextAfter = page.Subs[len(page.Subs)-1].ID
		}
	}
	return page, nil
}

// ShardView is the JSON shape of one engine shard snapshot.
type ShardView struct {
	Shard        int `json:"shard"`
	Active       int `json:"active"`
	Violated     int `json:"violated"`
	IndexBuckets int `json:"indexBuckets"`
	IndexEntries int `json:"indexEntries"`
}

// ShardStats snapshots the 32 engine shards.
func (s *Service) ShardStats() []ShardView {
	infos := s.ctl.ShardStats()
	out := make([]ShardView, len(infos))
	for i, in := range infos {
		out[i] = ShardView{
			Shard: in.Shard, Active: in.Active, Violated: in.Violated,
			IndexBuckets: in.IndexBuckets, IndexEntries: in.IndexEntries,
		}
	}
	return out
}

// VerdictView is one verdict transition of a subscription.
type VerdictView struct {
	At         time.Time `json:"at"`
	Event      string    `json:"event"`
	Client     uint64    `json:"client"`
	Kind       string    `json:"kind"`
	Detail     string    `json:"detail,omitempty"`
	SnapshotID uint64    `json:"snapshotId"`
}

// HistoryView is the verdict history of one subscription.
type HistoryView struct {
	SubID uint64 `json:"subId"`
	// Live reports whether the subscription is currently registered.
	Live     bool          `json:"live"`
	Verdicts []VerdictView `json:"verdicts"`
}

// VerdictHistory returns the retained verdict transitions of a
// subscription. An ID with no live registration and no history is an error.
func (s *Service) VerdictHistory(subID uint64) (HistoryView, error) {
	records, live := s.ctl.SubscriptionHistory(subID)
	if !live && len(records) == 0 {
		return HistoryView{}, fmt.Errorf("admin: subscription %d: not registered and no retained history", subID)
	}
	view := HistoryView{SubID: subID, Live: live, Verdicts: make([]VerdictView, 0, len(records))}
	for _, r := range records {
		view.Verdicts = append(view.Verdicts, VerdictView{
			At: r.At, Event: r.Event.String(), Client: r.ClientID,
			Kind: r.Kind, Detail: r.Detail, SnapshotID: r.SnapshotID,
		})
	}
	return view, nil
}

// ForceResync triggers an authoritative re-sync of one switch's snapshot.
func (s *Service) ForceResync(sw uint32) error {
	return s.ctl.ForceResync(topology.SwitchID(sw))
}

// SessionsView lists client sessions and attached switch sessions.
type SessionsView struct {
	Clients  []ClientSessionView `json:"clients"`
	Switches []SwitchSessionView `json:"switches"`
}

// ClientSessionView is one client session group.
type ClientSessionView struct {
	Session       uint64 `json:"session"`
	Client        uint64 `json:"client"`
	Protocol      uint8  `json:"protocol"`
	Subscriptions int    `json:"subscriptions"`
	Violated      int    `json:"violated"`
}

// SwitchSessionView is one attached switch control channel.
type SwitchSessionView struct {
	Switch    uint32 `json:"switch"`
	PeerName  string `json:"peerName"`
	Resyncing bool   `json:"resyncing"`
}

// Sessions lists client session groups and switch control sessions.
func (s *Service) Sessions() SessionsView {
	view := SessionsView{Clients: []ClientSessionView{}, Switches: []SwitchSessionView{}}
	for _, cs := range s.ctl.ClientSessions() {
		view.Clients = append(view.Clients, ClientSessionView{
			Session: cs.SessionID, Client: cs.ClientID, Protocol: cs.Protocol,
			Subscriptions: cs.Subscriptions, Violated: cs.Violated,
		})
	}
	for _, ss := range s.ctl.SwitchSessions() {
		view.Switches = append(view.Switches, SwitchSessionView{
			Switch: uint32(ss.Switch), PeerName: ss.PeerName, Resyncing: ss.Resyncing,
		})
	}
	return view
}

// OverviewView is the one-screen health summary.
type OverviewView struct {
	SnapshotID uint64 `json:"snapshotId"`
	Switches   int    `json:"switches"`
	// Controller activity counters.
	ActivePolls   uint64 `json:"activePolls"`
	PassiveEvents uint64 `json:"passiveEvents"`
	Resyncs       uint64 `json:"resyncs"`
	QueriesServed uint64 `json:"queriesServed"`
	// Subscription engine counters.
	SubsActive      uint64 `json:"subsActive"`
	SubsViolated    int    `json:"subsViolated"`
	Rechecks        uint64 `json:"rechecks"`
	Evaluated       uint64 `json:"evaluated"`
	Revalidated     uint64 `json:"revalidated"`
	IndexDispatched uint64 `json:"indexDispatched"`
	DeltaSkipped    uint64 `json:"deltaSkipped"`
	Violations      uint64 `json:"violations"`
	Recoveries      uint64 `json:"recoveries"`
}

// Overview assembles the health summary from atomic and per-shard reads.
func (s *Service) Overview() OverviewView {
	st := s.ctl.Stats()
	es := s.ctl.SubscriptionStats()
	violated := 0
	for _, sh := range s.ctl.ShardStats() {
		violated += sh.Violated
	}
	return OverviewView{
		SnapshotID:      s.ctl.SnapshotID(),
		Switches:        len(s.ctl.SwitchSessions()),
		ActivePolls:     st.ActivePolls,
		PassiveEvents:   st.PassiveEvents,
		Resyncs:         st.Resyncs,
		QueriesServed:   st.QueriesServed,
		SubsActive:      es.Active,
		SubsViolated:    violated,
		Rechecks:        es.Rechecks,
		Evaluated:       es.Evaluated,
		Revalidated:     es.Revalidated,
		IndexDispatched: es.IndexDispatched,
		DeltaSkipped:    es.DeltaSkipped,
		Violations:      es.Violations,
		Recoveries:      es.Recoveries,
	}
}

// Kinds lists the filterable invariant kind names, sorted.
func Kinds() []string {
	out := []string{
		"reachable-destinations", "reaching-sources", "isolation",
		"geo-regions", "path-length", "waypoint-avoidance",
		"neutrality", "transfer-function",
	}
	sort.Strings(out)
	return out
}
