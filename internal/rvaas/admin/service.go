// Package admin is the operator-plane ops API over a running RVaaS
// controller, layered handler → service: Service exposes typed operations
// (list/filter/paginate subscriptions, per-shard engine stats, verdict
// history, forced resync, session listing, an overview), and Handler
// (http.go) maps them onto a local HTTP endpoint. `rvaasd` mounts the
// handler; `rvaasd ops` is the CLI client.
//
// Every read goes through the controller's lock-free admin surface
// (per-shard snapshots and atomic counters) so operating the service never
// contends with the verification engine's re-check passes.
package admin

import (
	"errors"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/rvaas"
	"repro/internal/topology"
	"repro/internal/wire"
)

// APIVersion is the admin API contract version, reported by /v1/version and
// the X-RVaaS-Api-Version header on every response.
const APIVersion = "1"

// Service is the operator-plane service layer.
type Service struct {
	ctl *rvaas.Controller
	// procs reports per-process health of a multi-process lab (nil for a
	// single-process deployment).
	procs func() []ProcHealth
	// faults is the fault-plane controller of a multi-process lab (nil
	// for a single-process deployment).
	faults FaultController
	// campaign reports live adversarial-campaign progress (nil when no
	// campaign engine is attached).
	campaign func() CampaignView
}

// NewService wraps a running controller.
func NewService(ctl *rvaas.Controller) *Service { return &Service{ctl: ctl} }

// WithProcs attaches a per-process health source (a multi-process lab's
// supervisor). Returns the service for chaining.
func (s *Service) WithProcs(fn func() []ProcHealth) *Service {
	s.procs = fn
	return s
}

// Subscription status filter values.
const (
	StatusAny      = ""
	StatusViolated = "violated"
	StatusOK       = "ok"
)

// SubFilter restricts a subscription listing. Zero values mean "any".
type SubFilter struct {
	// Status is "", "violated" or "ok".
	Status string
	// Client restricts to one client ID (0 = any).
	Client uint64
	// Kind restricts to one invariant kind by wire name ("" = any).
	Kind string
	// Session restricts to one session ID; meaningful only with HasSession
	// (session 0 is the v1/in-process group).
	Session    uint64
	HasSession bool
}

func (f SubFilter) validate() error {
	switch f.Status {
	case StatusAny, StatusViolated, StatusOK:
		return nil
	}
	return badRequest("unknown status filter %q (want %q or %q)", f.Status, StatusViolated, StatusOK)
}

func (f SubFilter) match(s rvaas.SubscriptionInfo) bool {
	if f.Status == StatusViolated && !s.Violated {
		return false
	}
	if f.Status == StatusOK && s.Violated {
		return false
	}
	if f.Client != 0 && s.ClientID != f.Client {
		return false
	}
	if f.Kind != "" && s.Kind.String() != f.Kind {
		return false
	}
	if f.HasSession && s.SessionID != f.Session {
		return false
	}
	return true
}

// SubView is the JSON shape of one standing invariant.
type SubView struct {
	ID            uint64 `json:"id"`
	Client        uint64 `json:"client"`
	Session       uint64 `json:"session"`
	Kind          string `json:"kind"`
	Param         string `json:"param,omitempty"`
	Status        string `json:"status"`
	Detail        string `json:"detail,omitempty"`
	Seq           uint64 `json:"seq"`
	FootprintSize int    `json:"footprintSize"`
}

func subView(s rvaas.SubscriptionInfo) SubView {
	status := StatusOK
	if s.Violated {
		status = StatusViolated
	}
	return SubView{
		ID: s.ID, Client: s.ClientID, Session: s.SessionID,
		Kind: s.Kind.String(), Param: s.Param,
		Status: status, Detail: s.Detail, Seq: s.Seq,
		FootprintSize: s.FootprintSize,
	}
}

// SubPage is one page of a filtered subscription listing, keyed by ID:
// request the next page with cursor = NextCursor until NextCursor is 0.
type SubPage struct {
	Subs []SubView `json:"subs"`
	// Total is the number of subscriptions matching the filter (all pages).
	Total int `json:"total"`
	// NextCursor resumes the listing on the next page (0 = exhausted).
	NextCursor uint64 `json:"nextCursor"`
}

// DefaultPageSize bounds listings when the caller does not choose one.
const DefaultPageSize = 100

// ListSubscriptions returns the page of filtered subscriptions with ID >
// cursor, in ID order, at most limit entries (0 = DefaultPageSize).
func (s *Service) ListSubscriptions(f SubFilter, cursor uint64, limit int) (SubPage, error) {
	if err := f.validate(); err != nil {
		return SubPage{}, err
	}
	if limit <= 0 {
		limit = DefaultPageSize
	}
	page := SubPage{Subs: []SubView{}}
	for _, sub := range s.ctl.Subscriptions() {
		if !f.match(sub) {
			continue
		}
		page.Total++
		if sub.ID <= cursor {
			continue
		}
		if len(page.Subs) < limit {
			page.Subs = append(page.Subs, subView(sub))
		} else if page.NextCursor == 0 {
			page.NextCursor = page.Subs[len(page.Subs)-1].ID
		}
	}
	return page, nil
}

// ShardView is the JSON shape of one engine shard snapshot.
type ShardView struct {
	Shard        int `json:"shard"`
	Active       int `json:"active"`
	Violated     int `json:"violated"`
	IndexBuckets int `json:"indexBuckets"`
	IndexEntries int `json:"indexEntries"`
}

// ShardStats snapshots the 32 engine shards.
func (s *Service) ShardStats() []ShardView {
	infos := s.ctl.ShardStats()
	out := make([]ShardView, len(infos))
	for i, in := range infos {
		out[i] = ShardView{
			Shard: in.Shard, Active: in.Active, Violated: in.Violated,
			IndexBuckets: in.IndexBuckets, IndexEntries: in.IndexEntries,
		}
	}
	return out
}

// VerifierView is the JSON shape of one verifier instance's counters.
type VerifierView struct {
	Instance int `json:"instance"`
	Active   int `json:"active"`
	Violated int `json:"violated"`
	// PendingRestore counts restored-but-not-yet-reevaluated invariants.
	PendingRestore int `json:"pendingRestore,omitempty"`
	IndexEntries   int `json:"indexEntries"`

	Registered      uint64 `json:"registered"`
	Removed         uint64 `json:"removed"`
	Evaluated       uint64 `json:"evaluated"`
	IndexDispatched uint64 `json:"indexDispatched"`
	DeltaSkipped    uint64 `json:"deltaSkipped"`
	Violations      uint64 `json:"violations"`
	Recoveries      uint64 `json:"recoveries"`
}

// VerifiersView is the verifier fleet: its shape and each instance's
// population and activity counters.
type VerifiersView struct {
	Instances int            `json:"instances"`
	Placement string         `json:"placement"`
	Verifiers []VerifierView `json:"verifiers"`
}

// Verifiers snapshots the verifier fleet: instance count, placement
// policy, and per-instance counters.
func (s *Service) Verifiers() VerifiersView {
	n, placement := s.ctl.VerifierFleetInfo()
	view := VerifiersView{Instances: n, Placement: placement, Verifiers: []VerifierView{}}
	for _, in := range s.ctl.VerifierStats() {
		view.Verifiers = append(view.Verifiers, VerifierView{
			Instance: in.Instance, Active: in.Active, Violated: in.Violated,
			PendingRestore: in.PendingRestore, IndexEntries: in.IndexEntries,
			Registered: in.Registered, Removed: in.Removed, Evaluated: in.Evaluated,
			IndexDispatched: in.IndexDispatched, DeltaSkipped: in.DeltaSkipped,
			Violations: in.Violations, Recoveries: in.Recoveries,
		})
	}
	return view
}

// RebalanceView reports the outcome of a fleet rebalance.
type RebalanceView struct {
	// Moved is the number of invariants that changed owning instance.
	Moved int `json:"moved"`
	VerifiersView
}

// RebalanceVerifiers re-runs placement over every standing invariant
// (after a placement policy change or a skewed registration order) and
// reports the resulting fleet shape.
func (s *Service) RebalanceVerifiers() RebalanceView {
	moved := s.ctl.RebalanceVerifiers()
	return RebalanceView{Moved: moved, VerifiersView: s.Verifiers()}
}

// VerdictView is one verdict transition of a subscription.
type VerdictView struct {
	At         time.Time `json:"at"`
	Event      string    `json:"event"`
	Client     uint64    `json:"client"`
	Kind       string    `json:"kind"`
	Detail     string    `json:"detail,omitempty"`
	SnapshotID uint64    `json:"snapshotId"`
}

// HistoryView is one page of the verdict history of one subscription,
// oldest first. Request the next page with cursor = NextCursor until
// NextCursor is 0 (the cursor is a position in the retained ring).
type HistoryView struct {
	SubID uint64 `json:"subId"`
	// Live reports whether the subscription is currently registered.
	Live     bool          `json:"live"`
	Verdicts []VerdictView `json:"verdicts"`
	// Total is the number of retained transitions (all pages).
	Total int `json:"total"`
	// NextCursor resumes the listing on the next page (0 = exhausted).
	NextCursor uint64 `json:"nextCursor"`
}

// VerdictHistory returns one page of the retained verdict transitions of a
// subscription, skipping cursor entries, at most limit per page (0 = all).
// An ID with no live registration and no history is a not_found error.
func (s *Service) VerdictHistory(subID, cursor uint64, limit int) (HistoryView, error) {
	records, live := s.ctl.SubscriptionHistory(subID)
	if !live && len(records) == 0 {
		return HistoryView{}, notFound("subscription %d: not registered and no retained history", subID)
	}
	view := HistoryView{SubID: subID, Live: live, Total: len(records), Verdicts: []VerdictView{}}
	if cursor > uint64(len(records)) {
		cursor = uint64(len(records))
	}
	records = records[cursor:]
	if limit > 0 && len(records) > limit {
		records = records[:limit]
		view.NextCursor = cursor + uint64(limit)
	}
	for _, r := range records {
		view.Verdicts = append(view.Verdicts, VerdictView{
			At: r.At, Event: r.Event.String(), Client: r.ClientID,
			Kind: r.Kind, Detail: r.Detail, SnapshotID: r.SnapshotID,
		})
	}
	return view, nil
}

// ForceResync triggers an authoritative re-sync of one switch's snapshot.
// An unknown switch is a not_found error; a known but currently detached
// switch is a conflict (the session must reattach first).
func (s *Service) ForceResync(sw uint32) error {
	err := s.ctl.ForceResync(topology.SwitchID(sw))
	switch {
	case err == nil:
		return nil
	case errors.Is(err, rvaas.ErrUnknownSwitch):
		return notFound("%v", err)
	case errors.Is(err, rvaas.ErrNotAttached):
		return conflict("%v", err)
	default:
		return err
	}
}

// SessionsView lists client sessions (one page) and switch sessions (all —
// bounded by topology size). Request the next client page with cursor =
// NextCursor until NextCursor is 0 (the cursor is a position in the
// client-ordered listing).
type SessionsView struct {
	Clients  []ClientSessionView `json:"clients"`
	Switches []SwitchSessionView `json:"switches"`
	// TotalClients is the number of client sessions (all pages).
	TotalClients int `json:"totalClients"`
	// NextCursor resumes the client listing on the next page (0 = exhausted).
	NextCursor uint64 `json:"nextCursor"`
}

// ClientSessionView is one client session group.
type ClientSessionView struct {
	Session       uint64 `json:"session"`
	Client        uint64 `json:"client"`
	Protocol      uint8  `json:"protocol"`
	Subscriptions int    `json:"subscriptions"`
	Violated      int    `json:"violated"`
}

// SwitchSessionView is one topology switch's control-channel state:
// attached / resyncing / detached / pending.
type SwitchSessionView struct {
	Switch    uint32 `json:"switch"`
	PeerName  string `json:"peerName,omitempty"`
	State     string `json:"state"`
	Resyncing bool   `json:"resyncing"`
}

// Sessions lists client session groups (paginated: skip cursor entries, at
// most limit per page, 0 = all) and switch control sessions.
func (s *Service) Sessions(cursor uint64, limit int) SessionsView {
	view := SessionsView{Clients: []ClientSessionView{}, Switches: []SwitchSessionView{}}
	clients := s.ctl.ClientSessions()
	view.TotalClients = len(clients)
	if cursor > uint64(len(clients)) {
		cursor = uint64(len(clients))
	}
	clients = clients[cursor:]
	if limit > 0 && len(clients) > limit {
		clients = clients[:limit]
		view.NextCursor = cursor + uint64(limit)
	}
	for _, cs := range clients {
		view.Clients = append(view.Clients, ClientSessionView{
			Session: cs.SessionID, Client: cs.ClientID, Protocol: cs.Protocol,
			Subscriptions: cs.Subscriptions, Violated: cs.Violated,
		})
	}
	for _, ss := range s.ctl.SwitchSessions() {
		view.Switches = append(view.Switches, SwitchSessionView{
			Switch: uint32(ss.Switch), PeerName: ss.PeerName,
			State: ss.State, Resyncing: ss.Resyncing,
		})
	}
	return view
}

// VersionView reports the admin API contract version and build provenance.
type VersionView struct {
	APIVersion string `json:"apiVersion"`
	GoVersion  string `json:"goVersion"`
	// Module and Revision come from the binary's embedded build info
	// (empty outside a module-aware build).
	Module   string `json:"module,omitempty"`
	Revision string `json:"revision,omitempty"`
	// EnvelopeProtocols lists the client wire-protocol versions the
	// controller speaks.
	EnvelopeProtocols []int `json:"envelopeProtocols"`
}

// Version reports API and build version information.
func (s *Service) Version() VersionView {
	v := VersionView{
		APIVersion:        APIVersion,
		GoVersion:         runtime.Version(),
		EnvelopeProtocols: []int{1, int(wire.EnvelopeVersion)},
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		v.Module = info.Main.Path
		for _, st := range info.Settings {
			if st.Key == "vcs.revision" {
				v.Revision = st.Value
			}
		}
	}
	return v
}

// Process roles and states reported by /v1/procs.
const (
	ProcRoleSwitchd = "switchd"
	ProcRoleAgentd  = "agentd"

	ProcStateRunning  = "running"
	ProcStateDegraded = "degraded"
	ProcStateExited   = "exited"
)

// ProcHealth is the controller-side view of one lab process: which group it
// hosts, how it was launched, and its liveness judged by trunk heartbeats
// and child-process state.
type ProcHealth struct {
	// Name is the placement group name.
	Name string `json:"name"`
	// Role is "switchd" or "agentd".
	Role string `json:"role"`
	// Proc is the placement kind ("local-exec" or "external").
	Proc string `json:"proc"`
	// PID is the OS process ID (0 when not yet joined or not local).
	PID int `json:"pid,omitempty"`
	// State is "running", "degraded" (missed heartbeats or lost switch
	// sessions) or "exited".
	State string `json:"state"`
	// Switches / Agents list what the process hosts.
	Switches []uint32 `json:"switches,omitempty"`
	Agents   []uint64 `json:"agents,omitempty"`
	// Detail carries the degradation or exit reason.
	Detail string `json:"detail,omitempty"`
	// Joins counts trunk join handshakes (>1 means the process rejoined
	// after losing its trunk).
	Joins int `json:"joins,omitempty"`
}

// ProcsView lists per-process health of a multi-process lab.
type ProcsView struct {
	Procs []ProcHealth `json:"procs"`
	Total int          `json:"total"`
}

// Procs reports per-process health. A single-process lab reports an empty
// list.
func (s *Service) Procs() ProcsView {
	view := ProcsView{Procs: []ProcHealth{}}
	if s.procs != nil {
		if ps := s.procs(); ps != nil {
			view.Procs = ps
		}
	}
	view.Total = len(view.Procs)
	return view
}

// OverviewView is the one-screen health summary.
type OverviewView struct {
	SnapshotID uint64 `json:"snapshotId"`
	Switches   int    `json:"switches"`
	// Controller activity counters.
	ActivePolls   uint64 `json:"activePolls"`
	PassiveEvents uint64 `json:"passiveEvents"`
	Resyncs       uint64 `json:"resyncs"`
	QueriesServed uint64 `json:"queriesServed"`
	// Subscription engine counters.
	SubsActive      uint64 `json:"subsActive"`
	SubsViolated    int    `json:"subsViolated"`
	Rechecks        uint64 `json:"rechecks"`
	Evaluated       uint64 `json:"evaluated"`
	Revalidated     uint64 `json:"revalidated"`
	IndexDispatched uint64 `json:"indexDispatched"`
	DeltaSkipped    uint64 `json:"deltaSkipped"`
	Violations      uint64 `json:"violations"`
	Recoveries      uint64 `json:"recoveries"`
	// Violation-log ring occupancy: retained/capacity, plus how many old
	// transitions the bounded ring has overwritten since boot.
	VlogRetained int    `json:"vlogRetained"`
	VlogCapacity int    `json:"vlogCapacity"`
	VlogDropped  uint64 `json:"vlogDropped"`
}

// Overview assembles the health summary from atomic and per-shard reads.
func (s *Service) Overview() OverviewView {
	st := s.ctl.Stats()
	es := s.ctl.SubscriptionStats()
	violated := 0
	for _, sh := range s.ctl.ShardStats() {
		violated += sh.Violated
	}
	attached := 0
	for _, ss := range s.ctl.SwitchSessions() {
		if ss.Attached() {
			attached++
		}
	}
	vlog := s.ctl.ViolationLog()
	return OverviewView{
		SnapshotID:      s.ctl.SnapshotID(),
		VlogRetained:    vlog.Len(),
		VlogCapacity:    vlog.Capacity(),
		VlogDropped:     vlog.Dropped(),
		Switches:        attached,
		ActivePolls:     st.ActivePolls,
		PassiveEvents:   st.PassiveEvents,
		Resyncs:         st.Resyncs,
		QueriesServed:   st.QueriesServed,
		SubsActive:      es.Active,
		SubsViolated:    violated,
		Rechecks:        es.Rechecks,
		Evaluated:       es.Evaluated,
		Revalidated:     es.Revalidated,
		IndexDispatched: es.IndexDispatched,
		DeltaSkipped:    es.DeltaSkipped,
		Violations:      es.Violations,
		Recoveries:      es.Recoveries,
	}
}

// Kinds lists the filterable invariant kind names, sorted.
func Kinds() []string {
	out := []string{
		"reachable-destinations", "reaching-sources", "isolation",
		"geo-regions", "path-length", "waypoint-avoidance",
		"neutrality", "transfer-function",
	}
	sort.Strings(out)
	return out
}
