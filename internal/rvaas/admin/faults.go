package admin

import "time"

// FaultController is the deploy layer's fault-plane surface: list the
// injector's state, open a runtime window, clear windows. A single-process
// deployment has none (the fault targets are the trunk, attach channels
// and placed processes).
type FaultController interface {
	Faults() FaultsView
	InjectFault(req FaultInjectRequest) (FaultWindowView, error)
	ClearFaults(id uint64, all bool) (int, error)
}

// FaultProfileView is one declared channel perturbation profile.
type FaultProfileView struct {
	Name      string  `json:"name"`
	Drop      float64 `json:"drop,omitempty"`
	Duplicate float64 `json:"duplicate,omitempty"`
	Reorder   float64 `json:"reorder,omitempty"`
	LatencyMS int64   `json:"latencyMs,omitempty"`
	JitterMS  int64   `json:"jitterMs,omitempty"`
}

// FaultWindowView is one scheduled or injected fault window.
type FaultWindowView struct {
	ID     uint64 `json:"id"`
	Target string `json:"target"`
	Group  string `json:"group,omitempty"`
	Switch uint32 `json:"switch,omitempty"`
	Kind   string `json:"kind,omitempty"`
	// Profile names the channel perturbation (channel windows only).
	Profile string    `json:"profile,omitempty"`
	Start   time.Time `json:"start"`
	// Until is zero for windows that stay open until cleared.
	Until time.Time `json:"until,omitempty"`
	// Active reports whether the window covers the present moment.
	Active bool `json:"active"`
}

// FaultCountersView is the injector's cumulative perturbation tally.
type FaultCountersView struct {
	ChannelDropped    uint64 `json:"channelDropped"`
	ChannelDelayed    uint64 `json:"channelDelayed"`
	ChannelDuplicated uint64 `json:"channelDuplicated"`
	ChannelReordered  uint64 `json:"channelReordered"`
	TrunkDropped      uint64 `json:"trunkDropped"`
	TrunkDelayed      uint64 `json:"trunkDelayed"`
	JoinsRefused      uint64 `json:"joinsRefused"`
}

// FaultsView is the fault plane's full state.
type FaultsView struct {
	Seed     int64              `json:"seed"`
	Profiles []FaultProfileView `json:"profiles"`
	Windows  []FaultWindowView  `json:"windows"`
	Counters FaultCountersView  `json:"counters"`
}

// FaultInjectRequest opens a runtime fault window. The window opens
// immediately and stays open for DurationMS (0 = until cleared).
type FaultInjectRequest struct {
	// Target is "trunk", "channel" or "proc".
	Target string `json:"target"`
	// Group selects the placement group (trunk and proc targets).
	Group string `json:"group,omitempty"`
	// Switch scopes a channel window to one switch (0 = every switch).
	Switch uint32 `json:"switch,omitempty"`
	// Kind names the trunk/proc fault (partition, stall, reset,
	// starve-beats, kill); channel windows use Profile instead.
	Kind string `json:"kind,omitempty"`
	// Profile names a declared channel perturbation profile.
	Profile string `json:"profile,omitempty"`
	// DurationMS bounds the window in milliseconds (0 = until cleared).
	DurationMS int64 `json:"durationMs,omitempty"`
}

// FaultClearResult reports how many windows a clear removed.
type FaultClearResult struct {
	Cleared int `json:"cleared"`
}

// WithFaults attaches a fault controller (a placed lab's supervisor).
// Returns the service for chaining.
func (s *Service) WithFaults(fc FaultController) *Service {
	s.faults = fc
	return s
}

// FaultsState reports the fault plane's state. Without a fault controller
// (single-process lab) the operation conflicts.
func (s *Service) FaultsState() (FaultsView, error) {
	if s.faults == nil {
		return FaultsView{}, conflict("no fault plane: not a multi-process lab")
	}
	return s.faults.Faults(), nil
}

// InjectFault opens a runtime fault window.
func (s *Service) InjectFault(req FaultInjectRequest) (FaultWindowView, error) {
	if s.faults == nil {
		return FaultWindowView{}, conflict("no fault plane: not a multi-process lab")
	}
	if req.DurationMS < 0 {
		return FaultWindowView{}, badRequest("durationMs must be >= 0, got %d", req.DurationMS)
	}
	w, err := s.faults.InjectFault(req)
	if err != nil {
		return FaultWindowView{}, badRequest("%v", err)
	}
	return w, nil
}

// ClearFaults removes one window by ID, or every window with all=true.
func (s *Service) ClearFaults(id uint64, all bool) (FaultClearResult, error) {
	if s.faults == nil {
		return FaultClearResult{}, conflict("no fault plane: not a multi-process lab")
	}
	if !all && id == 0 {
		return FaultClearResult{}, badRequest("clear needs a window id or all=true")
	}
	n, err := s.faults.ClearFaults(id, all)
	if err != nil {
		return FaultClearResult{}, err
	}
	if !all && n == 0 {
		return FaultClearResult{}, notFound("no fault window %d", id)
	}
	return FaultClearResult{Cleared: n}, nil
}
