package admin

import (
	"errors"
	"fmt"
	"net/http"
)

// Error is the typed error envelope every /v1/* endpoint returns on
// failure: a stable machine-readable code, a human message, and optional
// detail. `rvaasd ops` maps codes to distinct process exit codes.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	Detail  string    `json:"detail,omitempty"`
}

// ErrorCode enumerates the stable v1 error codes.
type ErrorCode string

const (
	// CodeBadRequest: malformed parameter or filter (HTTP 400).
	CodeBadRequest ErrorCode = "bad_request"
	// CodeNotFound: the referenced object does not exist (HTTP 404).
	CodeNotFound ErrorCode = "not_found"
	// CodeMethodNotAllowed: known path, wrong HTTP method (HTTP 405).
	CodeMethodNotAllowed ErrorCode = "method_not_allowed"
	// CodeConflict: the object exists but is in a state that rejects the
	// operation, e.g. resync of a detached switch (HTTP 409).
	CodeConflict ErrorCode = "conflict"
	// CodeInternal: unexpected server-side failure (HTTP 500).
	CodeInternal ErrorCode = "internal"
)

func (e *Error) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s: %s (%s)", e.Code, e.Message, e.Detail)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// HTTPStatus maps the code to its HTTP status.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeConflict:
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func badRequest(format string, args ...any) *Error {
	return &Error{Code: CodeBadRequest, Message: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) *Error {
	return &Error{Code: CodeNotFound, Message: fmt.Sprintf(format, args...)}
}

func conflict(format string, args ...any) *Error {
	return &Error{Code: CodeConflict, Message: fmt.Sprintf(format, args...)}
}

// AsError coerces any error to the typed envelope; non-typed errors become
// code "internal" so clients always see the same shape.
func AsError(err error) *Error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	return &Error{Code: CodeInternal, Message: err.Error()}
}
