package admin

// CampaignDivergenceView is one differential-oracle failure.
type CampaignDivergenceView struct {
	Step   int    `json:"step"`
	Action string `json:"action"`
	// Kind is "verdict", "transition" or "stale-green".
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// CampaignView is the live progress of an adversarial campaign run against
// this controller (attacksim run --admin). A deployment with no campaign
// engine attached reports a conflict on GET /v1/campaign.
type CampaignView struct {
	Running       bool                    `json:"running"`
	Seed          int64                   `json:"seed"`
	Oracle        string                  `json:"oracle"`
	Step          int                     `json:"step"`
	Steps         int                     `json:"steps"`
	LastAction    string                  `json:"lastAction,omitempty"`
	Events        int                     `json:"events"`
	Transitions   int                     `json:"transitions"`
	Diverged      bool                    `json:"diverged"`
	Divergence    *CampaignDivergenceView `json:"divergence,omitempty"`
	Fingerprint   string                  `json:"fingerprint,omitempty"`
	StaleGreenMax string                  `json:"staleGreenMax,omitempty"`
}

// WithCampaign attaches a campaign progress source (the campaign engine's
// status snapshot). Returns the service for chaining.
func (s *Service) WithCampaign(fn func() CampaignView) *Service {
	s.campaign = fn
	return s
}

// Campaign reports the attached campaign engine's progress. Without one the
// operation conflicts (this deployment runs no campaign).
func (s *Service) Campaign() (CampaignView, error) {
	if s.campaign == nil {
		return CampaignView{}, conflict("no campaign engine attached to this deployment")
	}
	return s.campaign(), nil
}
