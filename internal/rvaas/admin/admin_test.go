package admin_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/openflow"
	"repro/internal/rvaas/admin"
	"repro/internal/topology"
	"repro/internal/wire"
)

// lab brings up a linear deployment, subscribes every access point to
// reachability toward the last client's host, and returns the service plus
// the blackhole entry that (when installed on the victim switch) flips
// those subscriptions to violated.
func lab(t *testing.T, size int) (*deploy.Deployment, *admin.Service, topology.SwitchID, openflow.FlowEntry) {
	t.Helper()
	clients := make([]uint64, size)
	for i := range clients {
		clients[i] = uint64(i + 1)
	}
	topo, err := topology.Linear(size, clients)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	d, err := deploy.New(topo, deploy.Options{SkipAgents: true, ManualRecheck: true})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(d.Close)

	aps := topo.AccessPoints()
	dst := aps[len(aps)-1]
	for _, ap := range aps {
		// The destination client watches reachability toward client 1 instead
		// of itself (same-switch self-reachability never crosses the fabric),
		// so every subscription starts in the OK state.
		target := dst
		if ap.ClientID == dst.ClientID {
			target = aps[0]
		}
		if _, err := d.RVaaS.Subscribe(ap.ClientID, wire.QueryReachableDestinations, []wire.FieldConstraint{
			{Field: wire.FieldIPDst, Value: uint64(target.HostIP), Mask: 0xFFFFFFFF},
		}, "", ap.Endpoint); err != nil {
			t.Fatalf("subscribe client %d: %v", ap.ClientID, err)
		}
	}
	blackhole := openflow.FlowEntry{
		Priority: 3000,
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: uint64(dst.HostIP), Mask: 0xFFFFFFFF},
		}},
		Cookie: 0xB1AC_0001,
	}
	return d, admin.NewService(d.RVaaS), dst.Endpoint.Switch, blackhole
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// awaitViolated polls (re-checking manually — flow-mod events reach RVaaS
// asynchronously over the secure channel) until exactly want subscriptions
// are violated, and returns that listing.
func awaitViolated(t *testing.T, d *deploy.Deployment, svc *admin.Service, want int) admin.SubPage {
	t.Helper()
	var page admin.SubPage
	waitUntil(t, fmt.Sprintf("%d violated subscriptions", want), func() bool {
		d.RVaaS.RecheckNow()
		var err error
		page, err = svc.ListSubscriptions(admin.SubFilter{Status: admin.StatusViolated}, 0, 0)
		if err != nil {
			t.Fatalf("violated list: %v", err)
		}
		return page.Total == want
	})
	return page
}

func TestListSubscriptionsFilterAndPaginate(t *testing.T) {
	const size = 12
	d, svc, victim, blackhole := lab(t, size)

	all, err := svc.ListSubscriptions(admin.SubFilter{}, 0, 0)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if all.Total != size || len(all.Subs) != size || all.NextCursor != 0 {
		t.Fatalf("list all = total %d, %d subs, next %d; want %d, %d, 0",
			all.Total, len(all.Subs), all.NextCursor, size, size)
	}
	for i := 1; i < len(all.Subs); i++ {
		if all.Subs[i].ID <= all.Subs[i-1].ID {
			t.Fatalf("subs not in ID order at %d", i)
		}
	}

	// Paginate by 5: 12 subs = pages of 5, 5, 2.
	var got []uint64
	cursor, pages := uint64(0), 0
	for {
		page, err := svc.ListSubscriptions(admin.SubFilter{}, cursor, 5)
		if err != nil {
			t.Fatalf("page: %v", err)
		}
		pages++
		for _, s := range page.Subs {
			got = append(got, s.ID)
		}
		if page.NextCursor == 0 {
			break
		}
		cursor = page.NextCursor
	}
	if pages != 3 || len(got) != size {
		t.Fatalf("pagination: %d pages, %d subs; want 3 pages, %d subs", pages, len(got), size)
	}
	for i, s := range all.Subs {
		if got[i] != s.ID {
			t.Fatalf("paged walk diverges at %d: got %d want %d", i, got[i], s.ID)
		}
	}

	// No violations yet.
	viol, err := svc.ListSubscriptions(admin.SubFilter{Status: admin.StatusViolated}, 0, 0)
	if err != nil {
		t.Fatalf("violated list: %v", err)
	}
	if viol.Total != 0 {
		t.Fatalf("violated before blackhole: total %d, want 0", viol.Total)
	}

	// Blackhole the destination: every subscription watching it (all but the
	// destination client's own, which watches client 1) flips to violated.
	d.Fabric.Switch(victim).InstallDirect(blackhole)
	viol = awaitViolated(t, d, svc, size-1)
	for _, s := range viol.Subs {
		if s.Status != admin.StatusViolated {
			t.Fatalf("sub %d in violated listing has status %q", s.ID, s.Status)
		}
	}
	ok, err := svc.ListSubscriptions(admin.SubFilter{Status: admin.StatusOK}, 0, 0)
	if err != nil {
		t.Fatalf("ok list: %v", err)
	}
	if ok.Total+viol.Total != size {
		t.Fatalf("ok %d + violated %d != %d", ok.Total, viol.Total, size)
	}

	// Client filter.
	one, err := svc.ListSubscriptions(admin.SubFilter{Client: 3}, 0, 0)
	if err != nil {
		t.Fatalf("client list: %v", err)
	}
	if one.Total != 1 || one.Subs[0].Client != 3 {
		t.Fatalf("client=3 filter: %+v", one)
	}
	// Kind filter (all same kind here; a bogus kind matches nothing).
	none, err := svc.ListSubscriptions(admin.SubFilter{Kind: "isolation"}, 0, 0)
	if err != nil {
		t.Fatalf("kind list: %v", err)
	}
	if none.Total != 0 {
		t.Fatalf("kind=isolation: total %d, want 0", none.Total)
	}
	if _, err := svc.ListSubscriptions(admin.SubFilter{Status: "bogus"}, 0, 0); err == nil {
		t.Fatal("bogus status filter accepted")
	}
}

func TestShardStatsAndOverview(t *testing.T) {
	const size = 8
	d, svc, victim, blackhole := lab(t, size)

	shards := svc.ShardStats()
	active, entries := 0, 0
	for _, sh := range shards {
		active += sh.Active
		entries += sh.IndexEntries
	}
	if active != size {
		t.Fatalf("shard active sum %d, want %d", active, size)
	}
	if entries == 0 {
		t.Fatal("inverted index empty with standing invariants registered")
	}

	ov := svc.Overview()
	if ov.SubsActive != size || ov.SubsViolated != 0 || ov.Switches != size {
		t.Fatalf("overview before blackhole: %+v", ov)
	}

	d.Fabric.Switch(victim).InstallDirect(blackhole)
	awaitViolated(t, d, svc, size-1)
	ov = svc.Overview()
	if ov.SubsViolated != size-1 || ov.Violations == 0 {
		t.Fatalf("overview after blackhole: %+v", ov)
	}
	d.Fabric.Switch(victim).RemoveDirect(blackhole)
	awaitViolated(t, d, svc, 0)
	ov = svc.Overview()
	if ov.SubsViolated != 0 || ov.Recoveries == 0 {
		t.Fatalf("overview after recovery: %+v", ov)
	}
}

func TestVerdictHistoryAndSessions(t *testing.T) {
	d, svc, victim, blackhole := lab(t, 4)

	d.Fabric.Switch(victim).InstallDirect(blackhole)
	viol := awaitViolated(t, d, svc, 3)
	sub := viol.Subs[0]

	hist, err := svc.VerdictHistory(sub.ID, 0, 0)
	if err != nil {
		t.Fatalf("history: %v", err)
	}
	if !hist.Live || len(hist.Verdicts) == 0 || hist.Total != len(hist.Verdicts) {
		t.Fatalf("history: %+v", hist)
	}
	if hist.Verdicts[len(hist.Verdicts)-1].Event != "violation" {
		t.Fatalf("last verdict %q, want violation", hist.Verdicts[len(hist.Verdicts)-1].Event)
	}
	// History pagination: limit 1 walks the ring one verdict per page.
	var walked int
	for cursor := uint64(0); ; {
		page, err := svc.VerdictHistory(sub.ID, cursor, 1)
		if err != nil {
			t.Fatalf("history page: %v", err)
		}
		walked += len(page.Verdicts)
		if page.NextCursor == 0 {
			break
		}
		cursor = page.NextCursor
	}
	if walked != hist.Total {
		t.Fatalf("history pagination walked %d of %d", walked, hist.Total)
	}
	if _, err := svc.VerdictHistory(999999, 0, 0); err == nil {
		t.Fatal("history for unknown sub accepted")
	} else if admin.AsError(err).Code != admin.CodeNotFound {
		t.Fatalf("unknown sub error code = %q, want not_found", admin.AsError(err).Code)
	}

	sess := svc.Sessions(0, 0)
	if len(sess.Switches) != 4 {
		t.Fatalf("switch sessions: %d, want 4", len(sess.Switches))
	}
	if sess.Switches[0].PeerName != "switch-1" {
		t.Fatalf("peer name %q", sess.Switches[0].PeerName)
	}
	if len(sess.Clients) != 4 {
		t.Fatalf("client sessions: %d, want 4", len(sess.Clients))
	}
	for _, cs := range sess.Clients {
		if cs.Subscriptions != 1 {
			t.Fatalf("client %d session: %+v", cs.Client, cs)
		}
	}
	if sess.TotalClients != 4 {
		t.Fatalf("totalClients = %d, want 4", sess.TotalClients)
	}

	// Client-session pagination walks every session exactly once.
	var clients []uint64
	for cursor := uint64(0); ; {
		page := svc.Sessions(cursor, 3)
		for _, cs := range page.Clients {
			clients = append(clients, cs.Client)
		}
		if page.NextCursor == 0 {
			break
		}
		cursor = page.NextCursor
	}
	if len(clients) != 4 {
		t.Fatalf("paged client sessions = %v, want 4 entries", clients)
	}
}

func TestForceResync(t *testing.T) {
	d, svc, _, _ := lab(t, 3)
	if err := svc.ForceResync(2); err != nil {
		t.Fatalf("resync attached switch: %v", err)
	}
	waitUntil(t, "resync counted", func() bool { return d.RVaaS.Stats().Resyncs > 0 })
	err := svc.ForceResync(99)
	if err == nil {
		t.Fatal("resync of unknown switch accepted")
	}
	if admin.AsError(err).Code != admin.CodeNotFound {
		t.Fatalf("unknown switch error code = %q, want not_found", admin.AsError(err).Code)
	}
}

func TestVersionAndProcs(t *testing.T) {
	_, svc, _, _ := lab(t, 3)
	v := svc.Version()
	if v.APIVersion != admin.APIVersion || v.GoVersion == "" {
		t.Fatalf("version: %+v", v)
	}
	if len(v.EnvelopeProtocols) != 2 || v.EnvelopeProtocols[0] != 1 || v.EnvelopeProtocols[1] != 2 {
		t.Fatalf("envelope protocols: %v", v.EnvelopeProtocols)
	}

	// No proc source: empty but well-formed.
	procs := svc.Procs()
	if procs.Total != 0 || procs.Procs == nil {
		t.Fatalf("procs without source: %+v", procs)
	}
	svc.WithProcs(func() []admin.ProcHealth {
		return []admin.ProcHealth{{
			Name: "sw-left", Role: admin.ProcRoleSwitchd, Proc: "local-exec",
			PID: 4242, State: admin.ProcStateRunning, Switches: []uint32{1, 2},
		}}
	})
	procs = svc.Procs()
	if procs.Total != 1 || procs.Procs[0].Name != "sw-left" {
		t.Fatalf("procs with source: %+v", procs)
	}
}

// TestHTTPHandler exercises the full handler → service → controller path
// over httptest, including the ops-CLI flagship query:
// /v1/subs?status=violated&pageSize=50.
func TestHTTPHandler(t *testing.T) {
	const size = 10
	d, svc, victim, blackhole := lab(t, size)
	srv := httptest.NewServer(admin.Handler(svc))
	t.Cleanup(srv.Close)

	getJSON := func(path string, into any) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("GET %s: decode: %v", path, err)
			}
		}
		return resp
	}

	var ov admin.OverviewView
	resp := getJSON("/v1/overview", &ov)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("overview status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(admin.APIVersionHeader); got != admin.APIVersion {
		t.Fatalf("%s header = %q, want %q", admin.APIVersionHeader, got, admin.APIVersion)
	}
	if ov.SubsActive != size {
		t.Fatalf("overview subsActive %d, want %d", ov.SubsActive, size)
	}

	var ver admin.VersionView
	if resp := getJSON("/v1/version", &ver); resp.StatusCode != http.StatusOK {
		t.Fatalf("version status %d", resp.StatusCode)
	}
	if ver.APIVersion != admin.APIVersion || len(ver.EnvelopeProtocols) == 0 {
		t.Fatalf("version body: %+v", ver)
	}

	d.Fabric.Switch(victim).InstallDirect(blackhole)
	awaitViolated(t, d, svc, size-1)

	var page admin.SubPage
	if resp := getJSON("/v1/subs?status=violated&limit=50", &page); resp.StatusCode != http.StatusOK {
		t.Fatalf("subs status %d", resp.StatusCode)
	}
	if page.Total != size-1 || len(page.Subs) != page.Total || page.NextCursor != 0 {
		t.Fatalf("violated page: %+v", page)
	}

	// Pagination over HTTP: limit=3 cursor walk covers every sub once.
	seen := map[uint64]bool{}
	cursor := uint64(0)
	for {
		var p admin.SubPage
		getJSON(fmt.Sprintf("/v1/subs?limit=3&cursor=%d", cursor), &p)
		for _, s := range p.Subs {
			if seen[s.ID] {
				t.Fatalf("sub %d returned twice", s.ID)
			}
			seen[s.ID] = true
		}
		if p.NextCursor == 0 {
			break
		}
		cursor = p.NextCursor
	}
	if len(seen) != size {
		t.Fatalf("cursor walk covered %d of %d subs", len(seen), size)
	}

	var hist admin.HistoryView
	if resp := getJSON(fmt.Sprintf("/v1/subs/%d/history", page.Subs[0].ID), &hist); resp.StatusCode != http.StatusOK {
		t.Fatalf("history status %d", resp.StatusCode)
	}
	if len(hist.Verdicts) == 0 || hist.Verdicts[0].Event != "violation" {
		t.Fatalf("history over http: %+v", hist)
	}

	var shards []admin.ShardView
	getJSON("/v1/shards", &shards)
	if len(shards) != 32 {
		t.Fatalf("shards: %d, want 32", len(shards))
	}

	var sess admin.SessionsView
	getJSON("/v1/sessions", &sess)
	if len(sess.Switches) != size {
		t.Fatalf("sessions: %d switches, want %d", len(sess.Switches), size)
	}

	var procs admin.ProcsView
	if resp := getJSON("/v1/procs", &procs); resp.StatusCode != http.StatusOK {
		t.Fatalf("procs status %d", resp.StatusCode)
	}

	// Typed error envelope on every failure shape.
	wantError := func(resp *http.Response, apiErr admin.Error, status int, code admin.ErrorCode, msgSub string) {
		t.Helper()
		if resp.StatusCode != status {
			t.Fatalf("status %d, want %d (envelope %+v)", resp.StatusCode, status, apiErr)
		}
		if apiErr.Code != code {
			t.Fatalf("code %q, want %q (envelope %+v)", apiErr.Code, code, apiErr)
		}
		if msgSub != "" && !strings.Contains(apiErr.Message, msgSub) {
			t.Fatalf("message %q missing %q", apiErr.Message, msgSub)
		}
		if got := resp.Header.Get(admin.APIVersionHeader); got != admin.APIVersion {
			t.Fatalf("error response missing version header (got %q)", got)
		}
	}
	var apiErr admin.Error
	wantError(getJSON("/v1/subs?status=bogus", &apiErr), apiErr,
		http.StatusBadRequest, admin.CodeBadRequest, "unknown status filter")
	apiErr = admin.Error{}
	wantError(getJSON("/v1/subs/notanumber/history", &apiErr), apiErr,
		http.StatusBadRequest, admin.CodeBadRequest, "bad subscription id")
	apiErr = admin.Error{}
	wantError(getJSON("/v1/subs/424242/history", &apiErr), apiErr,
		http.StatusNotFound, admin.CodeNotFound, "no retained history")
	// Pre-v1 pagination names are rejected, not silently ignored.
	apiErr = admin.Error{}
	wantError(getJSON("/v1/subs?pageSize=3", &apiErr), apiErr,
		http.StatusBadRequest, admin.CodeBadRequest, "renamed")
	// Unknown endpoint: typed 404 instead of the mux's plain text.
	apiErr = admin.Error{}
	wantError(getJSON("/v1/nonsense", &apiErr), apiErr,
		http.StatusNotFound, admin.CodeNotFound, "no such endpoint")
	// Wrong method: typed 405.
	resp, err := http.Post(srv.URL+"/v1/overview", "", nil)
	if err != nil {
		t.Fatalf("post overview: %v", err)
	}
	apiErr = admin.Error{}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("decode 405 envelope: %v", err)
	}
	resp.Body.Close()
	wantError(resp, apiErr, http.StatusMethodNotAllowed, admin.CodeMethodNotAllowed, "not allowed")

	// Resync endpoint.
	resp, err = http.Post(srv.URL+"/v1/resync?switch=1", "", nil)
	if err != nil {
		t.Fatalf("resync: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resync -> %d, want 202", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/resync?switch=77", "", nil)
	if err != nil {
		t.Fatalf("resync: %v", err)
	}
	apiErr = admin.Error{}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("decode resync envelope: %v", err)
	}
	resp.Body.Close()
	wantError(resp, apiErr, http.StatusNotFound, admin.CodeNotFound, "not in the topology")
}

// fleetLab is lab() with a multi-instance verifier fleet.
func fleetLab(t *testing.T, size, verifiers int) (*deploy.Deployment, *admin.Service) {
	t.Helper()
	clients := make([]uint64, size)
	for i := range clients {
		clients[i] = uint64(i + 1)
	}
	topo, err := topology.Linear(size, clients)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	d, err := deploy.New(topo, deploy.Options{
		SkipAgents: true, ManualRecheck: true, Verifiers: verifiers,
	})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(d.Close)
	aps := topo.AccessPoints()
	for _, ap := range aps {
		target := aps[(len(aps)-1)%len(aps)]
		if ap.ClientID == target.ClientID {
			target = aps[0]
		}
		if _, err := d.RVaaS.Subscribe(ap.ClientID, wire.QueryReachableDestinations, []wire.FieldConstraint{
			{Field: wire.FieldIPDst, Value: uint64(target.HostIP), Mask: 0xFFFFFFFF},
		}, "", ap.Endpoint); err != nil {
			t.Fatalf("subscribe client %d: %v", ap.ClientID, err)
		}
	}
	return d, admin.NewService(d.RVaaS)
}

func TestVerifiersViewAndRebalance(t *testing.T) {
	const size, instances = 6, 3
	_, svc := fleetLab(t, size, instances)

	view := svc.Verifiers()
	if view.Instances != instances {
		t.Fatalf("instances = %d, want %d", view.Instances, instances)
	}
	if view.Placement != "footprint" {
		t.Fatalf("placement = %q, want footprint", view.Placement)
	}
	if len(view.Verifiers) != instances {
		t.Fatalf("per-instance views = %d, want %d", len(view.Verifiers), instances)
	}
	active := 0
	for _, v := range view.Verifiers {
		active += v.Active
	}
	if active != size {
		t.Fatalf("fleet holds %d invariants, want %d", active, size)
	}

	// Placement did not change, so re-running it moves nothing.
	res := svc.RebalanceVerifiers()
	if res.Moved != 0 {
		t.Fatalf("rebalance moved %d invariants under an unchanged policy", res.Moved)
	}
	if res.Instances != instances {
		t.Fatalf("rebalance view instances = %d", res.Instances)
	}
}

func TestHTTPVerifiers(t *testing.T) {
	_, svc := fleetLab(t, 4, 2)
	srv := httptest.NewServer(admin.Handler(svc))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/verifiers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/verifiers: %s", resp.Status)
	}
	var view admin.VerifiersView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Instances != 2 || len(view.Verifiers) != 2 {
		t.Fatalf("view = %+v", view)
	}

	post, err := http.Post(srv.URL+"/v1/verifiers/rebalance", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/verifiers/rebalance: %s", post.Status)
	}
	var res admin.RebalanceView
	if err := json.NewDecoder(post.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Moved != 0 || res.Instances != 2 {
		t.Fatalf("rebalance = %+v", res)
	}

	// Wrong method gets the typed envelope, not the mux default.
	bad, err := http.Get(srv.URL + "/v1/verifiers/rebalance")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	var envelope admin.Error
	if err := json.NewDecoder(bad.Body).Decode(&envelope); err != nil || envelope.Code != admin.CodeMethodNotAllowed {
		t.Fatalf("wrong-method envelope = %+v (err %v)", envelope, err)
	}
}

// TestCampaignEndpoint: GET /v1/campaign conflicts on a deployment with no
// campaign engine attached, and reflects the attached engine's snapshot
// (including a divergence) once one is wired in with WithCampaign.
func TestCampaignEndpoint(t *testing.T) {
	_, svc, _, _ := lab(t, 4)
	srv := httptest.NewServer(admin.Handler(svc))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/v1/campaign")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("no-engine status = %d, want %d", resp.StatusCode, http.StatusConflict)
	}
	var envelope admin.Error
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Code != admin.CodeConflict {
		t.Fatalf("no-engine envelope = %+v (err %v)", envelope, err)
	}

	want := admin.CampaignView{
		Running: true, Seed: 42, Oracle: "legacy", Step: 7, Steps: 40,
		LastAction: "churn sw=3 n=4", Events: 19, Transitions: 2,
		Diverged: true,
		Divergence: &admin.CampaignDivergenceView{
			Step: 7, Action: "lie key=0x1", Kind: "transition", Detail: "primary[0]=...",
		},
		Fingerprint:   "ev:1 verdicts:2 transitions:3",
		StaleGreenMax: "1ms",
	}
	svc.WithCampaign(func() admin.CampaignView { return want })

	ok, err := http.Get(srv.URL + "/v1/campaign")
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("campaign status = %d", ok.StatusCode)
	}
	var got admin.CampaignView
	if err := json.NewDecoder(ok.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("campaign view round-trip:\n  got  %+v\n  want %+v", got, want)
	}
}

// TestOverviewViolationLog: the bounded violation ring's occupancy and drop
// counter surface in the operator overview.
func TestOverviewViolationLog(t *testing.T) {
	d, svc, victim, blackhole := lab(t, 6)
	d.Fabric.Switch(victim).InstallDirect(blackhole)
	awaitViolated(t, d, svc, 5)

	ov := svc.Overview()
	if ov.VlogRetained == 0 || ov.VlogCapacity == 0 {
		t.Fatalf("violation-log fields not surfaced: %+v", ov)
	}
	if ov.VlogRetained > ov.VlogCapacity {
		t.Fatalf("retained %d exceeds capacity %d", ov.VlogRetained, ov.VlogCapacity)
	}
	if ov.VlogDropped != d.RVaaS.ViolationLog().Dropped() {
		t.Fatalf("dropped %d, controller reports %d", ov.VlogDropped, d.RVaaS.ViolationLog().Dropped())
	}
}
