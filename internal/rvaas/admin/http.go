package admin

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// APIVersionHeader is set on every response (including errors) so clients
// can detect the contract revision they are talking to.
const APIVersionHeader = "X-RVaaS-Api-Version"

// Handler maps the admin service onto a local HTTP API (contract v1):
//
//	GET  /v1/version                       API + build version info
//	GET  /v1/overview                      health summary
//	GET  /v1/subs?status=&client=&kind=&session=&cursor=&limit=
//	GET  /v1/subs/{id}/history?cursor=&limit=
//	GET  /v1/shards                        per-shard engine stats
//	GET  /v1/verifiers                     verifier fleet shape + per-instance stats
//	POST /v1/verifiers/rebalance           re-place every standing invariant
//	GET  /v1/sessions?cursor=&limit=       client + switch sessions
//	GET  /v1/procs                         per-process health (placed labs)
//	GET  /v1/campaign                      adversarial-campaign progress (attacksim)
//	POST /v1/resync?switch=N               force a switch resync
//	GET  /v1/faults                        fault-plane state (placed labs)
//	POST /v1/faults                        open a runtime fault window (JSON body)
//	POST /v1/faults/clear?id=N | ?all=1    clear fault windows
//
// Responses are JSON and carry the X-RVaaS-Api-Version header; failures are
// the typed envelope {code, message, detail} with a matching 4xx/5xx status.
// Listings paginate with cursor/limit uniformly. The endpoint is an operator
// plane, not a tenant plane: rvaasd binds it to loopback by default and it
// carries no authentication.
func Handler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	handle := func(method, pattern string, h http.HandlerFunc) {
		mux.HandleFunc(method+" "+pattern, h)
		// The bare pattern catches wrong-method requests so they get the
		// typed envelope instead of the mux's plain-text 405.
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			writeError(w, &Error{
				Code:    CodeMethodNotAllowed,
				Message: "method " + r.Method + " not allowed",
				Detail:  "use " + method + " " + pattern,
			})
		})
	}
	handle("GET", "/v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Version())
	})
	handle("GET", "/v1/overview", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Overview())
	})
	handle("GET", "/v1/subs", func(w http.ResponseWriter, r *http.Request) {
		filter, cursor, limit, err := parseSubsQuery(r)
		if err != nil {
			writeError(w, err)
			return
		}
		page, err := svc.ListSubscriptions(filter, cursor, limit)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, page)
	})
	handle("GET", "/v1/subs/{id}/history", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			writeError(w, badRequest("bad subscription id %q", r.PathValue("id")))
			return
		}
		cursor, limit, perr := parsePageQuery(r)
		if perr != nil {
			writeError(w, perr)
			return
		}
		view, verr := svc.VerdictHistory(id, cursor, limit)
		if verr != nil {
			writeError(w, verr)
			return
		}
		writeJSON(w, http.StatusOK, view)
	})
	handle("GET", "/v1/shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.ShardStats())
	})
	handle("GET", "/v1/verifiers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Verifiers())
	})
	handle("POST", "/v1/verifiers/rebalance", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.RebalanceVerifiers())
	})
	handle("GET", "/v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		cursor, limit, err := parsePageQuery(r)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, svc.Sessions(cursor, limit))
	})
	handle("GET", "/v1/procs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Procs())
	})
	handle("GET", "/v1/campaign", func(w http.ResponseWriter, r *http.Request) {
		view, err := svc.Campaign()
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	})
	handle("POST", "/v1/resync", func(w http.ResponseWriter, r *http.Request) {
		raw := r.URL.Query().Get("switch")
		sw, err := strconv.ParseUint(raw, 10, 32)
		if err != nil {
			writeError(w, badRequest("bad or missing switch parameter %q", raw))
			return
		}
		if err := svc.ForceResync(uint32(sw)); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"resync": sw})
	})
	// /v1/faults serves two methods, so the wrong-method catch-all is
	// registered once by hand instead of through handle().
	mux.HandleFunc("/v1/faults", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &Error{
			Code:    CodeMethodNotAllowed,
			Message: "method " + r.Method + " not allowed",
			Detail:  "use GET /v1/faults or POST /v1/faults",
		})
	})
	mux.HandleFunc("GET /v1/faults", func(w http.ResponseWriter, r *http.Request) {
		view, err := svc.FaultsState()
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	})
	mux.HandleFunc("POST /v1/faults", func(w http.ResponseWriter, r *http.Request) {
		var req FaultInjectRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, badRequest("bad fault request body: %v", err))
			return
		}
		win, err := svc.InjectFault(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, win)
	})
	handle("POST", "/v1/faults/clear", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		all := q.Get("all") == "1" || q.Get("all") == "true"
		var id uint64
		if raw := q.Get("id"); raw != "" {
			var err error
			if id, err = strconv.ParseUint(raw, 10, 64); err != nil {
				writeError(w, badRequest("bad window id %q", raw))
				return
			}
		}
		res, err := svc.ClearFaults(id, all)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	// Anything else under the mux is a typed not_found instead of the
	// default plain-text 404.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, notFound("no such endpoint %s", r.URL.Path))
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(APIVersionHeader, APIVersion)
		mux.ServeHTTP(w, r)
	})
}

func parseSubsQuery(r *http.Request) (SubFilter, uint64, int, error) {
	q := r.URL.Query()
	filter := SubFilter{Status: q.Get("status"), Kind: q.Get("kind")}
	var err error
	if raw := q.Get("client"); raw != "" {
		if filter.Client, err = strconv.ParseUint(raw, 10, 64); err != nil {
			return filter, 0, 0, badRequest("bad client %q", raw)
		}
	}
	if raw := q.Get("session"); raw != "" {
		if filter.Session, err = strconv.ParseUint(raw, 10, 64); err != nil {
			return filter, 0, 0, badRequest("bad session %q", raw)
		}
		filter.HasSession = true
	}
	cursor, limit, perr := parsePageQuery(r)
	if perr != nil {
		return filter, 0, 0, perr
	}
	return filter, cursor, limit, nil
}

// parsePageQuery reads the uniform cursor/limit pagination parameters. The
// pre-v1 names (after, pageSize) are rejected with a pointer to the rename
// rather than silently ignored.
func parsePageQuery(r *http.Request) (uint64, int, error) {
	q := r.URL.Query()
	for old, now := range map[string]string{"after": "cursor", "pageSize": "limit"} {
		if q.Has(old) {
			return 0, 0, badRequest("unknown parameter %q (renamed to %q in API v1)", old, now)
		}
	}
	var cursor uint64
	limit := 0
	var err error
	if raw := q.Get("cursor"); raw != "" {
		if cursor, err = strconv.ParseUint(raw, 10, 64); err != nil {
			return 0, 0, badRequest("bad cursor %q", raw)
		}
	}
	if raw := q.Get("limit"); raw != "" {
		if limit, err = strconv.Atoi(raw); err != nil || limit < 0 {
			return 0, 0, badRequest("bad limit %q", raw)
		}
	}
	return cursor, limit, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	e := AsError(err)
	writeJSON(w, e.HTTPStatus(), e)
}
