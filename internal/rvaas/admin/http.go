package admin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler maps the admin service onto a local HTTP API:
//
//	GET  /v1/overview                      health summary
//	GET  /v1/subs?status=&client=&kind=&session=&after=&pageSize=
//	GET  /v1/subs/{id}/history             verdict transitions
//	GET  /v1/shards                        per-shard engine stats
//	GET  /v1/sessions                      client + switch sessions
//	POST /v1/resync?switch=N               force a switch resync
//
// Responses are JSON; errors are {"error": "..."} with a 4xx/5xx status.
// The endpoint is an operator plane, not a tenant plane: rvaasd binds it to
// loopback and it carries no authentication.
func Handler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/overview", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Overview())
	})
	mux.HandleFunc("GET /v1/subs", func(w http.ResponseWriter, r *http.Request) {
		filter, after, pageSize, err := parseSubsQuery(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		page, err := svc.ListSubscriptions(filter, after, pageSize)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, page)
	})
	mux.HandleFunc("GET /v1/subs/{id}/history", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("admin: bad subscription id %q", r.PathValue("id")))
			return
		}
		view, err := svc.VerdictHistory(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	})
	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.ShardStats())
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Sessions())
	})
	mux.HandleFunc("POST /v1/resync", func(w http.ResponseWriter, r *http.Request) {
		raw := r.URL.Query().Get("switch")
		sw, err := strconv.ParseUint(raw, 10, 32)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("admin: bad or missing switch parameter %q", raw))
			return
		}
		if err := svc.ForceResync(uint32(sw)); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"resync": sw})
	})
	return mux
}

func parseSubsQuery(r *http.Request) (SubFilter, uint64, int, error) {
	q := r.URL.Query()
	filter := SubFilter{Status: q.Get("status"), Kind: q.Get("kind")}
	var after uint64
	pageSize := 0
	var err error
	if raw := q.Get("client"); raw != "" {
		if filter.Client, err = strconv.ParseUint(raw, 10, 64); err != nil {
			return filter, 0, 0, fmt.Errorf("admin: bad client %q", raw)
		}
	}
	if raw := q.Get("session"); raw != "" {
		if filter.Session, err = strconv.ParseUint(raw, 10, 64); err != nil {
			return filter, 0, 0, fmt.Errorf("admin: bad session %q", raw)
		}
		filter.HasSession = true
	}
	if raw := q.Get("after"); raw != "" {
		if after, err = strconv.ParseUint(raw, 10, 64); err != nil {
			return filter, 0, 0, fmt.Errorf("admin: bad after cursor %q", raw)
		}
	}
	if raw := q.Get("pageSize"); raw != "" {
		if pageSize, err = strconv.Atoi(raw); err != nil || pageSize < 0 {
			return filter, 0, 0, fmt.Errorf("admin: bad pageSize %q", raw)
		}
	}
	return filter, after, pageSize, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
