package rvaas

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/wire"
)

func testRecord(id uint64) SubscriptionRecord {
	return SubscriptionRecord{
		ID:           id,
		ClientID:     7,
		SessionID:    0x57E0 + id,
		Nonce:        100 + id,
		Proto:        2,
		Kind:         wire.QueryIsolation,
		AnchorSwitch: 3,
		AnchorPort:   1,
		MAC:          0x020000000007,
		IP:           0x0A000007,
		Constraints:  []wire.FieldConstraint{{Field: wire.FieldIPDst, Value: 9, Mask: 0xFF}},
		Param:        "",
		Violated:     id%2 == 0,
		Detail:       "detail",
		Seq:          id,
		ClientKey:    []byte{1, 2, 3},
	}
}

func TestRecordCodecRoundtrip(t *testing.T) {
	rec := testRecord(5)
	back, op, err := unmarshalRecord(rec.marshal())
	if err != nil || op != recUpsert {
		t.Fatalf("decode: op=%d err=%v", op, err)
	}
	if !reflect.DeepEqual(&rec, back) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", rec, back)
	}
}

func TestFileStoreRoundtripAndRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subs.log")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Remove(3); err != nil {
		t.Fatal(err)
	}
	// Upsert overwrites.
	r2 := testRecord(2)
	r2.Violated = true
	r2.Seq = 99
	if err := s.Append(r2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("want 4 live records, got %d", len(recs))
	}
	for _, rec := range recs {
		if rec.ID == 3 {
			t.Fatal("removed record resurrected")
		}
		if rec.ID == 2 && rec.Seq != 99 {
			t.Fatalf("upsert not applied on replay: %+v", rec)
		}
	}
}

func TestFileStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subs.log")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	// Churn one record far past the compaction threshold: the log must
	// stay bounded by the live set, not the op count.
	for i := 0; i < 10*fileCompactSlack; i++ {
		rec := testRecord(1)
		rec.Seq = uint64(i)
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	rec1 := testRecord(1)
	one := int64(len(rec1.marshal()) + 4)
	if fi.Size() > one*int64(2*fileCompactSlack) {
		t.Fatalf("log not compacted: %d bytes for one live record", fi.Size())
	}
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != uint64(10*fileCompactSlack-1) {
		t.Fatalf("compacted state wrong: %+v", recs)
	}
}

func TestFileStoreTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subs.log")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a length header promising more bytes
	// than exist.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1000)
	f.Write(hdr[:])
	f.Write([]byte{recUpsert, 1, 2})
	f.Close()

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("torn tail should not fail open: %v", err)
	}
	defer s2.Close()
	recs, err := s2.Load()
	if err != nil || len(recs) != 1 || recs[0].ID != 1 {
		t.Fatalf("torn tail corrupted replay: %v %+v", err, recs)
	}
	// And the truncated file must accept clean appends again.
	if err := s2.Append(testRecord(2)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	recs, _ = s3.Load()
	if len(recs) != 2 {
		t.Fatalf("append after torn-tail truncation lost: %+v", recs)
	}
}
