package rvaas

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/enclave"
	"repro/internal/history"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

// This file stress-tests the sharded recheck engine under -race:
// concurrent Subscribe/Unsubscribe, snapshot churn, and overlapping
// RecheckNow/RevalidateAll triggers with the parallel worker pool. The
// invariants checked afterwards:
//
//   - the inverted switch → subscriptions index matches every live
//     subscription's recorded footprint exactly (no stale or missing
//     entries);
//   - per subscription, the violation log alternates strictly
//     violation/recovery starting with a violation (no duplicated, missing
//     or out-of-order transitions), and the notification sequence counter
//     equals the number of logged transitions.

// raceRoutingTable programs linear all-pairs routing for switch sw of an
// n-switch chain: traffic for host k leaves on port 3 at switch k, port 2
// rightwards below k, port 1 leftwards above k.
func raceRoutingTable(topo *topology.Topology, sw topology.SwitchID, n int) []openflow.FlowEntry {
	var out []openflow.FlowEntry
	for k := 1; k <= n; k++ {
		_, ip := topology.HostAddr(topology.SwitchID(k), 0)
		var port uint32
		switch {
		case topology.SwitchID(k) == sw:
			port = 3
		case topology.SwitchID(k) > sw:
			port = 2
		default:
			port = 1
		}
		out = append(out, openflow.FlowEntry{
			Priority: 100,
			Match: openflow.Match{Fields: []openflow.FieldMatch{
				{Field: wire.FieldIPDst, Value: uint64(ip), Mask: 0xFFFFFFFF},
			}},
			Actions: []openflow.Action{openflow.Output(port)},
			Cookie:  0xCACE_0000 + uint64(k),
		})
	}
	return out
}

// checkEngineConsistency cross-checks every fleet instance's inverted
// index against its live subscriptions' footprints and the fleet's owner
// map. Called quiescent (no concurrent engine activity).
func checkEngineConsistency(t *testing.T, c *Controller) {
	t.Helper()
	if err := c.fleet.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestEngineConcurrencyAndIndexConsistency(t *testing.T) {
	const nSwitches = 12
	topo, err := topology.Linear(nSwitches, nil)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Topology:      topo,
		Platform:      platform,
		ManualRecheck: true,
		HistoryDepth:  4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()

	// Prime the snapshot with working linear routing on every switch.
	seqs := make([]uint64, nSwitches+1)
	for i := 1; i <= nSwitches; i++ {
		seqs[i]++
		c.snap.replaceState(topology.SwitchID(i), raceRoutingTable(topo, topology.SwitchID(i), nSwitches), nil, nil, seqs[i], false)
	}

	aps := topo.AccessPoints()
	// A standing population that survives the whole test: neighbor
	// reachability pairs, one isolation invariant, one path-length and one
	// waypoint invariant.
	var keep []uint64
	for i := 0; i+1 < len(aps); i++ {
		id, err := c.Subscribe(aps[i].ClientID, wire.QueryReachableDestinations,
			[]wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(aps[i+1].HostIP), Mask: 0xFFFFFFFF}},
			"", aps[i].Endpoint)
		if err != nil {
			t.Fatal(err)
		}
		keep = append(keep, id)
	}
	if _, err := c.Subscribe(aps[0].ClientID, wire.QueryIsolation,
		[]wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(aps[0].HostIP), Mask: 0xFFFFFFFF}},
		"", aps[0].Endpoint); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe(aps[1].ClientID, wire.QueryPathLength,
		[]wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(aps[len(aps)-1].HostIP), Mask: 0xFFFFFFFF}},
		"64", aps[1].Endpoint); err != nil {
		t.Fatal(err)
	}

	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		seqMu   sync.Mutex // guards seqs across churners
		subErrs atomic.Int64
	)

	// Churner: flips a middle switch between full routing and a table with
	// a drop rule for one destination, forcing verdict transitions for the
	// invariants whose footprint crosses it.
	churn := func(victim int, dropDst uint32) {
		defer wg.Done()
		dropping := false
		for !stop.Load() {
			table := raceRoutingTable(topo, topology.SwitchID(victim), nSwitches)
			if !dropping {
				table = append([]openflow.FlowEntry{{
					Priority: 3000,
					Match: openflow.Match{Fields: []openflow.FieldMatch{
						{Field: wire.FieldIPDst, Value: uint64(dropDst), Mask: 0xFFFFFFFF},
					}},
					Cookie: 0xD40D,
				}}, table...)
			}
			dropping = !dropping
			seqMu.Lock()
			seqs[victim]++
			seq := seqs[victim]
			seqMu.Unlock()
			c.snap.replaceState(topology.SwitchID(victim), table, nil, nil, seq, false)
			c.RecheckNow()
		}
	}
	wg.Add(2)
	go churn(4, aps[4].HostIP)
	go churn(9, aps[9].HostIP)

	// Subscriber churn: register and remove short-lived invariants.
	wg.Add(2)
	for g := 0; g < 2; g++ {
		go func(g int) {
			defer wg.Done()
			for !stop.Load() {
				i := g * 5
				id, err := c.Subscribe(aps[i].ClientID, wire.QueryReachableDestinations,
					[]wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(aps[i+1].HostIP), Mask: 0xFFFFFFFF}},
					"", aps[i].Endpoint)
				if err != nil {
					subErrs.Add(1)
					continue
				}
				if !c.Unsubscribe(aps[i].ClientID, id) {
					subErrs.Add(1)
				}
			}
		}(g)
	}

	// Recheck triggers racing the churners' own passes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for !stop.Load() {
			n++
			if n%7 == 0 {
				c.RevalidateAll()
			} else {
				c.RecheckNow()
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	c.RecheckNow()

	if n := subErrs.Load(); n > 0 {
		t.Fatalf("%d subscribe/unsubscribe operations failed", n)
	}
	checkEngineConsistency(t, c)

	// Per-subscription transition discipline: strictly alternating
	// violation/recovery starting with a violation, and the notification
	// sequence counter equal to the number of logged transitions.
	for _, id := range keep {
		recs := c.vlog.PerSub(id)
		for i, r := range recs {
			wantEvent := history.EventViolation
			if i%2 == 1 {
				wantEvent = history.EventRecovery
			}
			if r.Event != wantEvent {
				t.Fatalf("sub %d transition %d = %v, want %v (records: %s)", id, i, r.Event, wantEvent, fmtRecords(recs))
			}
		}
		st, ok := c.fleet.View(id)
		if !ok {
			t.Fatalf("standing subscription %d disappeared", id)
		}
		if !st.Evaluated {
			t.Fatalf("standing subscription %d never evaluated", id)
		}
		if st.Seq != uint64(len(recs)) {
			t.Fatalf("sub %d seq %d != %d logged transitions", id, st.Seq, len(recs))
		}
		wantViolated := len(recs)%2 == 1
		if st.Violated != wantViolated {
			t.Fatalf("sub %d violated=%v inconsistent with %d transitions", id, st.Violated, len(recs))
		}
	}

	// The engine's accounting must balance: every pass either evaluated or
	// revalidated each active subscription it inspected.
	st := c.SubscriptionStats()
	if st.Rechecks == 0 || st.Evaluated == 0 {
		t.Fatalf("stress ran no rechecks: %+v", st)
	}
}

func fmtRecords(recs []history.Violation) string {
	out := ""
	for _, r := range recs {
		out += fmt.Sprintf("%v ", r.Event)
	}
	return out
}
