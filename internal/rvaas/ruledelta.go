package rvaas

import (
	"sort"

	"repro/internal/headerspace"
	"repro/internal/openflow"
	"repro/internal/wire"
)

// Rule-delta extraction: when a switch's flow table changes, the set of
// packets whose forwarding behavior can differ between the old and the new
// table is bounded by the union of the changed rules' match spaces, minus
// everything shadowed by higher-priority rules present identically in both
// tables (a packet handled by an unchanged higher-priority rule never
// reaches a changed rule in either table, so its behavior is identical).
// The subscription engine dispatches re-verification only to invariants
// whose recorded traversal slice overlaps this delta — the
// Veriflow/NetPlumber-style refinement of per-switch dirty dispatch. A
// fully shadowed change yields an empty delta and dispatches nothing.
//
// Deltas carry a port refinement (headerspace.Delta.Ports): when EVERY
// changed rule restricts its ingress port, only packets arriving on the
// union of those ports can behave differently, and an invariant whose
// recorded traversal entered the switch on other ports is revalidated for
// free. A single unrestricted changed rule widens the delta to any-port
// (nil Ports).
//
// Conservative approximations (all widen the delta, never narrow it):
//   - shadowing rules with an in-port restriction are ignored (they only
//     shadow on one port);
//   - a port-set change or a first-ever snapshot widens to the full header
//     space on any port.
//
// Controller-only (data-plane transparent) entries are excluded from both
// sides: they are omitted from the compiled transfer function, so churning
// them — e.g. RVaaS's own interception rules — cannot change any
// evaluation and must not dispatch anything.

// defaultDeltaTermCap bounds the union-term count of one switch's
// accumulated delta; past it the delta collapses to the full header space
// (conservative, equivalent to per-switch dispatch for that switch).
// Runtime-tunable per store (snapshotStore.deltaCap, RecheckTuning).
const defaultDeltaTermCap = 48

// shadowSet is the precomputed shadow geometry of a table's unchanged
// rules: the match headers of modeled, port-unrestricted entries, sorted
// by descending priority so a shadow scan can stop early.
type shadowSet struct {
	prios   []int
	matches []headerspace.Header
}

// newShadowSet extracts the shadowing rules from the common entries.
func newShadowSet(common []openflow.FlowEntry) shadowSet {
	var ss shadowSet
	for _, e := range common {
		if e.DataPlaneTransparent() || e.Match.HasInPort() {
			continue
		}
		ss.prios = append(ss.prios, int(e.Priority))
		ss.matches = append(ss.matches, e.Match.ToHeader())
	}
	sort.Sort(&ss)
	return ss
}

func (ss *shadowSet) Len() int { return len(ss.prios) }
func (ss *shadowSet) Swap(i, j int) {
	ss.prios[i], ss.prios[j] = ss.prios[j], ss.prios[i]
	ss.matches[i], ss.matches[j] = ss.matches[j], ss.matches[i]
}
func (ss *shadowSet) Less(i, j int) bool { return ss.prios[i] > ss.prios[j] }

// residual returns the slice of e's match space not shadowed by common
// rules of strictly higher priority. Strictly higher only: among equal
// priorities OpenFlow match order is arrival order, which the diff cannot
// reconstruct, so equal-priority overlap conservatively stays in the
// delta.
//
// The subtraction chain is capped: each SubtractHeader can split a
// wildcard term into up to header-width pieces, so a broad changed rule
// under many exact-match shadowers would otherwise blow up quadratically
// — and this runs on the commit path while snapshotStore.mu is held. Past
// cap intermediate terms the chain stops and the UN-shadowED match space
// is returned (wider, never narrower: strictly conservative).
func (ss *shadowSet) residual(e openflow.FlowEntry, cap int) headerspace.Space {
	full := headerspace.NewSpace(wire.HeaderWidth, e.Match.ToHeader())
	out := full
	for i := range ss.prios {
		if ss.prios[i] <= int(e.Priority) {
			break // sorted descending: no further shadowers
		}
		out = out.SubtractHeader(ss.matches[i])
		if out.IsEmpty() {
			break
		}
		if out.Size() > cap {
			return full
		}
	}
	return out
}

// deltaOf computes the header-space delta of a set of changed entries
// against the table's unchanged (common) entries. The delta's port
// refinement is sound exactly because the transfer-function compiler maps
// Match.HasInPort() onto the rule's InPorts (openflow/hsa.go): a packet
// arriving on another port is handled by the same non-changed rules in
// both tables.
func deltaOf(changed, common []openflow.FlowEntry, cap int) headerspace.Delta {
	out := headerspace.Delta{Space: headerspace.EmptySpace(wire.HeaderWidth)}
	if len(changed) == 0 {
		return out
	}
	ss := newShadowSet(common)
	// Ports narrows to the union of the changed rules' in-port restrictions
	// — valid only while EVERY contributing rule carries one. A single
	// unrestricted changed rule collapses the refinement to any-port (nil)
	// for good; so does exceeding the port cap inside MergeDeltaPorts.
	allRestricted := true
	var ports []headerspace.PortID
	spaceCapped := false
	for _, e := range changed {
		if e.DataPlaneTransparent() {
			continue
		}
		if !spaceCapped {
			out.Space = out.Space.Union(ss.residual(e, cap))
			if out.Space.Size() > cap {
				// Term-cap collapse widens the SPACE only; the port scan must
				// still cover every remaining changed rule or the refinement
				// would be unsoundly narrow.
				out.Space = headerspace.FullSpace(wire.HeaderWidth)
				spaceCapped = true
			}
		}
		if !allRestricted {
			continue
		}
		if !e.Match.HasInPort() {
			allRestricted = false
		} else if p := []headerspace.PortID{headerspace.PortID(e.Match.InPort)}; ports == nil {
			ports = p
		} else if merged := headerspace.MergeDeltaPorts(ports, p); merged == nil {
			allRestricted = false // port-cap collapse: conservative any-port
		} else {
			ports = merged
		}
	}
	if allRestricted {
		out.Ports = ports
	}
	return out
}

// tableDelta diffs a full table replacement. Entries are bucketed by
// priority and compared positionally within each bucket — exactly the
// order the transfer-function compiler preserves (priority descending,
// stable among equals) — so a pure reorder of equal-priority rules is
// correctly treated as a change, while identical tables yield an empty
// delta.
func tableDelta(oldT, newT []openflow.FlowEntry, cap int) headerspace.Delta {
	byPrio := func(t []openflow.FlowEntry) map[uint16][]openflow.FlowEntry {
		m := make(map[uint16][]openflow.FlowEntry)
		for _, e := range t {
			m[e.Priority] = append(m[e.Priority], e)
		}
		return m
	}
	om, nm := byPrio(oldT), byPrio(newT)
	var changed, common []openflow.FlowEntry
	seen := make(map[uint16]bool, len(om))
	diffBucket := func(ob, nb []openflow.FlowEntry) {
		n := len(ob)
		if len(nb) < n {
			n = len(nb)
		}
		for i := 0; i < n; i++ {
			if sameEntry(ob[i], nb[i]) {
				common = append(common, ob[i])
			} else {
				changed = append(changed, ob[i], nb[i])
			}
		}
		changed = append(changed, ob[n:]...)
		changed = append(changed, nb[n:]...)
	}
	for p, ob := range om {
		seen[p] = true
		diffBucket(ob, nm[p])
	}
	for p, nb := range nm {
		if !seen[p] {
			diffBucket(nil, nb)
		}
	}
	return deltaOf(changed, common, cap)
}

// eventDelta computes the delta of one applied flow-monitor event against
// the table state BEFORE the event was folded in.
func eventDelta(before []openflow.FlowEntry, ev *openflow.FlowMonitorReply, cap int) headerspace.Delta {
	switch ev.Kind {
	case openflow.FlowEventAdded:
		// Everything already in the table is unchanged and shadows.
		return deltaOf([]openflow.FlowEntry{ev.Entry}, before, cap)
	case openflow.FlowEventRemoved:
		var removed, kept []openflow.FlowEntry
		for _, e := range before {
			if sameEntry(e, ev.Entry) {
				removed = append(removed, e)
			} else {
				kept = append(kept, e)
			}
		}
		return deltaOf(removed, kept, cap)
	case openflow.FlowEventModified:
		var replaced, rest []openflow.FlowEntry
		for _, e := range before {
			if e.Priority == ev.Entry.Priority && sameMatch(e.Match, ev.Entry.Match) {
				replaced = append(replaced, e)
			} else {
				rest = append(rest, e)
			}
		}
		if len(replaced) == 0 {
			// Unmatched modify appends (see applyEvent): behaves as an add.
			return deltaOf([]openflow.FlowEntry{ev.Entry}, before, cap)
		}
		// Old and new versions share priority+match, so the changed set's
		// match union is just the replaced entries' (the new actions only
		// alter behavior inside the same match space).
		return deltaOf(append(replaced, ev.Entry), rest, cap)
	}
	return headerspace.Delta{Space: headerspace.EmptySpace(wire.HeaderWidth)}
}
