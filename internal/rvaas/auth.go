package rvaas

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"time"

	"repro/internal/enclave"
	"repro/internal/topology"
	"repro/internal/wire"
)

// pendingQuery tracks one in-flight authentication round: the paper's
// active phase where "these packets trigger destination clients to respond
// to the querying clients, in an authenticated manner" (§IV-A3).
type pendingQuery struct {
	nonce uint64
	resp  *wire.QueryResponse
	// deliver hands the finalized signed response back to the transport
	// (or the in-process caller) that issued the query.
	deliver func(*wire.QueryResponse)

	mu       sync.Mutex
	expected map[uint64]*authTarget // challenge -> target
	received int
	timer    *time.Timer
	finished bool
}

type authTarget struct {
	endpointIdx int // index into resp.Endpoints
	clientID    uint64
	ok          bool
}

func (p *pendingQuery) cancel() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.finished = true
	if p.timer != nil {
		p.timer.Stop()
	}
}

// startAuthRound dispatches authentication requests to every discovered,
// registered endpoint and arranges for the response to be finalized when
// all replies arrive or the deadline passes. The response reports both how
// many requests were made and how many replies came back, "such that it can
// detect cases where some access points did not respond".
func (c *Controller) startAuthRound(req requesterInfo, q *wire.QueryRequest, resp *wire.QueryResponse, targets []discoveredEndpoint, deliver func(*wire.QueryResponse)) {
	p := &pendingQuery{
		nonce:    q.Nonce,
		resp:     resp,
		deliver:  deliver,
		expected: make(map[uint64]*authTarget, len(targets)),
	}
	// Derive per-target challenges deterministically from the enclave
	// signature of (nonce, endpoint) so they are unforgeable by observers.
	for _, de := range targets {
		challenge := c.challengeFor(q.Nonce, de.ep)
		idx := endpointIndex(resp, de.ep)
		if idx < 0 {
			continue
		}
		p.expected[challenge] = &authTarget{endpointIdx: idx, clientID: de.ap.ClientID}
	}
	resp.AuthRequested = uint32(len(p.expected))
	c.mu.Lock()
	c.stats.AuthRequested += uint64(len(p.expected))
	c.pending[q.Nonce] = p
	c.mu.Unlock()

	timeout := c.cfg.AuthTimeout
	if q.DeadlineMillis > 0 {
		if d := time.Duration(q.DeadlineMillis) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	p.timer = time.AfterFunc(timeout, func() { c.finishAuthRound(p) })

	// Inject one auth request per target at its egress port.
	for challenge, tgt := range p.expected {
		ep := topology.Endpoint{
			Switch: topology.SwitchID(resp.Endpoints[tgt.endpointIdx].SwitchID),
			Port:   topology.PortNo(resp.Endpoints[tgt.endpointIdx].Port),
		}
		ap, ok := c.topo.AccessPointAt(ep)
		if !ok {
			continue
		}
		ar := &wire.AuthRequest{
			QueryNonce: q.Nonce,
			Challenge:  challenge,
			ServerKey:  c.enclave.PublicKey(),
		}
		_ = c.sendPacketOut(ep.Switch, ep.Port, wire.NewAuthRequestPacket(ap.HostMAC, ap.HostIP, ar))
	}
}

// challengeFor derives an unforgeable 64-bit challenge for (nonce, ep).
func (c *Controller) challengeFor(nonce uint64, ep topology.Endpoint) uint64 {
	var buf [20]byte
	binary.BigEndian.PutUint64(buf[0:], nonce)
	binary.BigEndian.PutUint32(buf[8:], uint32(ep.Switch))
	binary.BigEndian.PutUint32(buf[12:], uint32(ep.Port))
	sig := c.enclave.Sign(buf[:])
	sum := sha256.Sum256(sig)
	return binary.BigEndian.Uint64(sum[:8])
}

func endpointIndex(resp *wire.QueryResponse, ep topology.Endpoint) int {
	for i, e := range resp.Endpoints {
		if e.SwitchID == uint32(ep.Switch) && e.Port == uint32(ep.Port) {
			return i
		}
	}
	return -1
}

// handleAuthReply verifies one intercepted authentication reply against the
// client registry and the expected challenge.
func (c *Controller) handleAuthReply(rep *wire.AuthReply) {
	c.mu.Lock()
	p := c.pending[rep.QueryNonce]
	pub, registered := c.clients[rep.ClientID]
	c.mu.Unlock()
	if p == nil || !registered {
		return
	}
	p.mu.Lock()
	tgt, expected := p.expected[rep.Challenge]
	if !expected || tgt.ok || p.finished {
		p.mu.Unlock()
		return
	}
	// The reply must come from the client the endpoint belongs to and be
	// signed by that client's registered key.
	if tgt.clientID != rep.ClientID || !enclave.VerifyFrom(pub, rep.SigningBytes(), rep.Signature) {
		p.mu.Unlock()
		return
	}
	tgt.ok = true
	p.received++
	p.resp.Endpoints[tgt.endpointIdx].Authenticated = true
	all := p.received == len(p.expected)
	p.mu.Unlock()

	c.mu.Lock()
	c.stats.AuthReceived++
	c.mu.Unlock()

	if all {
		if p.timer != nil {
			p.timer.Stop()
		}
		c.finishAuthRound(p)
	}
}

// finishAuthRound finalizes and sends the response exactly once.
func (c *Controller) finishAuthRound(p *pendingQuery) {
	p.mu.Lock()
	if p.finished {
		p.mu.Unlock()
		return
	}
	p.finished = true
	p.resp.AuthReplied = uint32(p.received)
	p.mu.Unlock()

	c.mu.Lock()
	delete(c.pending, p.nonce)
	c.mu.Unlock()
	c.finalizeQuery(p.resp, p.deliver)
}

// finalizeQuery signs the response inside the enclave, attaches the
// attestation quote and hands it to the transport's deliver callback
// (which, for in-band requesters, injects it via Packet-Out at the
// client's ingress port).
func (c *Controller) finalizeQuery(resp *wire.QueryResponse, deliver func(*wire.QueryResponse)) {
	resp.Signature = c.enclave.Sign(resp.SigningBytes())
	resp.Quote = c.enclave.KeyQuote().Marshal()
	c.mu.Lock()
	c.stats.ResponsesSigned++
	c.mu.Unlock()
	if deliver != nil {
		deliver(resp)
	}
}
