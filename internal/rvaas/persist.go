package rvaas

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/headerspace"
	"repro/internal/topology"
	"repro/internal/verifier"
	"repro/internal/wire"
)

// Durable sessions: the subscription engine is the controller's most
// valuable state — 10⁵ standing invariants a tenant fleet registered, each
// with an authenticated anchor and a signed verdict history — and before
// this layer a controller restart silently dropped all of it (clients only
// noticed via gap detection and had to blind re-subscribe). The store below
// persists each subscription's durable core (client key, invariant spec,
// anchor binding, session, last verdict/seq) on every registration and
// verdict transition; a restarting controller rebuilds the set, re-verifies
// every invariant against the freshly monitored network, and pushes signed
// notifications for whatever changed while it was down. Clients then
// resynchronize with one OpSessionResume exchange instead of re-registering
// the world.
//
// Deliberately NOT persisted: footprints, isolation cones and the inverted
// index (cheap to recompute, expensive to keep consistent on disk), and the
// monitoring snapshot (the switches are the authority; a restart re-syncs).

// SubscriptionRecord is the durable form of one standing invariant.
type SubscriptionRecord struct {
	ID        uint64
	ClientID  uint64
	SessionID uint64
	Nonce     uint64
	Proto     uint8
	Kind      wire.QueryKind
	// Anchor binding: the access point the invariant is pinned to and the
	// L2/L3 addresses notifications are injected toward.
	AnchorSwitch uint32
	AnchorPort   uint32
	MAC          uint64
	IP           uint32
	Constraints  []wire.FieldConstraint
	Param        string
	// Last committed verdict.
	Violated bool
	Detail   string
	Seq      uint64
	// ClientKey is the client's registered Ed25519 verification key, so a
	// restored controller can authenticate the client's operations before
	// any out-of-band re-registration.
	ClientKey []byte
}

// SubscriptionStore persists the standing-invariant set across controller
// restarts. Append upserts one record (keyed by ID), Remove deletes one,
// Load returns the live set. Implementations must be safe for concurrent
// use; errors are reported but the engine treats persistence as
// best-effort (a failing store degrades durability, never correctness of
// the live engine).
type SubscriptionStore interface {
	Append(rec SubscriptionRecord) error
	Remove(id uint64) error
	Load() ([]SubscriptionRecord, error)
	Close() error
}

// ------------------------------------------------------------- codec -----

const (
	recUpsert byte = 1
	recRemove byte = 2
)

func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

func appendStr(b []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

func (r *SubscriptionRecord) marshal() []byte {
	b := []byte{recUpsert}
	b = appendU64(b, r.ID)
	b = appendU64(b, r.ClientID)
	b = appendU64(b, r.SessionID)
	b = appendU64(b, r.Nonce)
	b = append(b, r.Proto, byte(r.Kind))
	b = appendU32(b, r.AnchorSwitch)
	b = appendU32(b, r.AnchorPort)
	b = appendU64(b, r.MAC)
	b = appendU32(b, r.IP)
	nc := len(r.Constraints)
	if nc > 0xffff {
		nc = 0xffff
	}
	b = appendU16(b, uint16(nc))
	for _, c := range r.Constraints[:nc] {
		b = append(b, byte(c.Field))
		b = appendU64(b, c.Value)
		b = appendU64(b, c.Mask)
	}
	b = appendStr(b, r.Param)
	if r.Violated {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendStr(b, r.Detail)
	b = appendU64(b, r.Seq)
	b = appendStr(b, string(r.ClientKey))
	return b
}

// recReader is a minimal bounds-checked decoder for store records.
type recReader struct {
	buf []byte
	off int
	bad bool
}

func (r *recReader) need(n int) bool {
	if r.bad || r.off+n > len(r.buf) {
		r.bad = true
		return false
	}
	return true
}

func (r *recReader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *recReader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *recReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *recReader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *recReader) str() string {
	n := int(r.u16())
	if !r.need(n) {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func unmarshalRecord(b []byte) (*SubscriptionRecord, byte, error) {
	r := recReader{buf: b}
	op := r.u8()
	switch op {
	case recRemove:
		rec := &SubscriptionRecord{ID: r.u64()}
		if r.bad {
			return nil, 0, fmt.Errorf("rvaas: truncated remove record")
		}
		return rec, op, nil
	case recUpsert:
		rec := &SubscriptionRecord{
			ID:        r.u64(),
			ClientID:  r.u64(),
			SessionID: r.u64(),
			Nonce:     r.u64(),
			Proto:     r.u8(),
		}
		rec.Kind = wire.QueryKind(r.u8())
		rec.AnchorSwitch = r.u32()
		rec.AnchorPort = r.u32()
		rec.MAC = r.u64()
		rec.IP = r.u32()
		nc := int(r.u16())
		for i := 0; i < nc && !r.bad; i++ {
			rec.Constraints = append(rec.Constraints, wire.FieldConstraint{
				Field: wire.Field(r.u8()),
				Value: r.u64(),
				Mask:  r.u64(),
			})
		}
		rec.Param = r.str()
		rec.Violated = r.u8() == 1
		rec.Detail = r.str()
		rec.Seq = r.u64()
		rec.ClientKey = []byte(r.str())
		if r.bad {
			return nil, 0, fmt.Errorf("rvaas: truncated subscription record")
		}
		return rec, op, nil
	}
	return nil, 0, fmt.Errorf("rvaas: unknown record op %d", op)
}

// ------------------------------------------------------------ MemStore ---

// MemStore is an in-memory SubscriptionStore for tests and experiments
// that exercise restore without touching disk.
type MemStore struct {
	mu   sync.Mutex
	live map[uint64]SubscriptionRecord
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{live: make(map[uint64]SubscriptionRecord)}
}

// Append upserts a record.
func (m *MemStore) Append(rec SubscriptionRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live[rec.ID] = rec
	return nil
}

// Remove deletes a record.
func (m *MemStore) Remove(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.live, id)
	return nil
}

// Load returns the live set in id order.
func (m *MemStore) Load() ([]SubscriptionRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SubscriptionRecord, 0, len(m.live))
	for _, rec := range m.live {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Close is a no-op.
func (m *MemStore) Close() error { return nil }

// ----------------------------------------------------------- FileStore ---

// fileCompactSlack bounds log growth: when the op count since the last
// rewrite exceeds 2×live + slack, the log is rewritten to exactly the live
// set (write-temp + rename, so a crash mid-compaction leaves either the
// old or the new log, never a mix).
const fileCompactSlack = 128

// FileStore is an append-compacted on-disk SubscriptionStore: operations
// append length-prefixed records to a single log file; when dead records
// dominate, the log is compacted to the live set. A torn final record
// (crash mid-append) is truncated away on load.
type FileStore struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	live    map[uint64]SubscriptionRecord
	appends int
}

// OpenFileStore opens (or creates) the log at path and replays it.
func OpenFileStore(path string) (*FileStore, error) {
	s := &FileStore{path: path, live: make(map[uint64]SubscriptionRecord)}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	valid := 0
	for off := 0; off+4 <= len(data); {
		n := int(binary.BigEndian.Uint32(data[off:]))
		if n <= 0 || off+4+n > len(data) {
			break // torn tail
		}
		rec, op, err := unmarshalRecord(data[off+4 : off+4+n])
		if err != nil {
			break
		}
		if op == recRemove {
			delete(s.live, rec.ID)
		} else {
			s.live[rec.ID] = *rec
		}
		off += 4 + n
		valid = off
		s.appends++
	}
	// Drop any torn tail so the next append starts at a record boundary.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, os.SEEK_END); err != nil {
		f.Close()
		return nil, err
	}
	s.f = f
	return s, nil
}

func (s *FileStore) writeLocked(payload []byte) error {
	if s.f == nil {
		// A previous compaction renamed the log but failed to reopen it
		// (e.g. fd exhaustion): retry here so appends never silently land
		// in an unlinked inode.
		f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		s.f = f
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	if _, err := s.f.Write(buf); err != nil {
		return err
	}
	s.appends++
	if s.appends > 2*len(s.live)+fileCompactSlack {
		return s.compactLocked()
	}
	return nil
}

// compactLocked rewrites the log to exactly the live set.
func (s *FileStore) compactLocked() error {
	tmp := s.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	ids := make([]uint64, 0, len(s.live))
	for id := range s.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rec := s.live[id]
		payload := rec.marshal()
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(payload); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return err
	}
	// The rename unlinked the inode s.f points at: close it NOW and only
	// install the reopened handle on success — otherwise writeLocked would
	// keep "successfully" appending into the orphaned file and every later
	// update would vanish. On reopen failure s.f stays nil and the next
	// write retries the open.
	s.f.Close()
	s.f = nil
	nf, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.f = nf
	s.appends = len(s.live)
	return nil
}

// Append upserts a record.
func (s *FileStore) Append(rec SubscriptionRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live[rec.ID] = rec
	return s.writeLocked(rec.marshal())
}

// Remove deletes a record.
func (s *FileStore) Remove(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.live, id)
	payload := append([]byte{recRemove}, make([]byte, 8)...)
	binary.BigEndian.PutUint64(payload[1:], id)
	return s.writeLocked(payload)
}

// Load returns the live set in id order.
func (s *FileStore) Load() ([]SubscriptionRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SubscriptionRecord, 0, len(s.live))
	for _, rec := range s.live {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Path returns the log file's path (e.g. for reopening after a simulated
// crash).
func (s *FileStore) Path() string { return s.path }

// Close syncs and closes the log.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// DefaultStorePath joins a state directory with the canonical log name.
func DefaultStorePath(dir string) string {
	return filepath.Join(dir, "subscriptions.log")
}

// ------------------------------------------------- controller plumbing ---

// recordOfTransition captures one subscription's durable state from a
// committed verdict transition. The verdict fields (Violated/Detail/Seq)
// ride in the Transition — captured under the owning shard's mutex — so a
// record can never mix two commits; the identity fields are immutable
// after registration. The client key is filled in later (persistUpsert).
func recordOfTransition(t verifier.Transition) *SubscriptionRecord {
	sub := t.Sub
	return &SubscriptionRecord{
		ID:           sub.ID,
		ClientID:     sub.ClientID,
		SessionID:    sub.SessionID,
		Nonce:        sub.Nonce,
		Proto:        sub.Proto,
		Kind:         sub.Kind,
		AnchorSwitch: uint32(sub.Anchor.Switch),
		AnchorPort:   uint32(sub.Anchor.Port),
		MAC:          sub.Anchor.MAC,
		IP:           sub.Anchor.IP,
		Constraints:  append([]wire.FieldConstraint(nil), sub.Constraints...),
		Param:        sub.Param,
		Violated:     t.Violated,
		Detail:       t.Detail,
		Seq:          t.Seq,
	}
}

// persistUpsert appends one subscription record to the store. Best-effort:
// a failing store costs durability of this update, never live correctness.
func (c *Controller) persistUpsert(rec *SubscriptionRecord) {
	if c.persist == nil {
		return
	}
	if pub, ok := c.clientKeyOf(rec.ClientID); ok {
		rec.ClientKey = append([]byte(nil), pub...)
	}
	_ = c.persist.Append(*rec)
}

// persistRemove deletes one subscription record from the store.
func (c *Controller) persistRemove(id uint64) {
	if c.persist == nil {
		return
	}
	_ = c.persist.Remove(id)
}

// restoreSubscriptions rebuilds the standing-invariant set from the
// persistence store at startup. Restored subscriptions keep their id,
// session, anchor, verdict and sequence number — so resumed clients see
// continuous seq streams — and are queued for a full re-verification on
// the next recheck pass (the network may have changed arbitrarily while
// the controller was down; transitions found then are pushed with the next
// seq). Client keys ride along so restored clients authenticate
// immediately.
func (c *Controller) restoreSubscriptions() error {
	recs, err := c.persist.Load()
	if err != nil {
		return err
	}
	var maxID uint64
	for i := range recs {
		rec := &recs[i]
		anchor := verifier.Anchor{
			Switch: topology.SwitchID(rec.AnchorSwitch),
			Port:   topology.PortNo(rec.AnchorPort),
			MAC:    rec.MAC,
			IP:     rec.IP,
		}
		src := verifier.Source{Nonce: rec.Nonce, SessionID: rec.SessionID, Proto: rec.Proto}
		sub, err := verifier.NewSubscription(rec.ClientID, src, rec.Kind, rec.Constraints, rec.Param, anchor)
		if err != nil {
			// A record written by a newer engine with a kind this build
			// does not know: skip it rather than refuse to start.
			continue
		}
		sub.ID = rec.ID
		sub.Violated = rec.Violated
		sub.Detail = rec.Detail
		sub.Seq = rec.Seq
		sub.Evaluated = true
		sub.NeedsFullEval = true
		sub.FP = headerspace.NewFootprint()
		if rec.ID > maxID {
			maxID = rec.ID
		}
		if rec.Nonce != 0 {
			// Re-seed replay protection: a captured pre-restart subscribe
			// frame must stay unreplayable after the restart.
			c.fleet.SeedNonce(rec.ClientID, rec.Nonce)
		}
		if len(rec.ClientKey) == ed25519.PublicKeySize {
			c.mu.Lock()
			c.clients[rec.ClientID] = append(ed25519.PublicKey(nil), rec.ClientKey...)
			c.mu.Unlock()
		}
		c.fleet.Restore(sub)
	}
	// Fresh registrations must never collide with a restored id.
	c.fleet.EnsureNextID(maxID)
	return nil
}
