package rvaas

import (
	"crypto/ed25519"
	crand "crypto/rand"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/enclave"
	"repro/internal/headerspace"
	"repro/internal/history"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

func fwdEntry(prio uint16, dstIP uint32, port uint32) openflow.FlowEntry {
	return openflow.FlowEntry{
		Priority: prio,
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: uint64(dstIP), Mask: 0xFFFFFFFF},
		}},
		Actions: []openflow.Action{openflow.Output(port)},
		Cookie:  uint64(dstIP),
	}
}

func ipSpace(dstIP uint32) headerspace.Space {
	return headerspace.NewSpace(wire.HeaderWidth,
		wire.FieldHeader(wire.FieldIPDst, uint64(dstIP), 0xFFFFFFFF))
}

// ------------------------------------------------ snapshot bugfixes -----

// TestReplaceStateNilMetersKeepsStored is the meter-wipe regression test:
// a table-only resync (replaceTable passes meters=nil) must neither delete
// the stored meter table nor count as a change — the old code did both,
// so an ordinary active poll silently destroyed meter state and forced a
// spurious snapshot-id bump plus compile-cache invalidation.
func TestReplaceStateNilMetersKeepsStored(t *testing.T) {
	s := newSnapshotStore()
	sw := topology.SwitchID(3)
	table := []openflow.FlowEntry{fwdEntry(100, 0x0A000001, 2)}
	meters := []openflow.MeterConfig{{MeterID: 7, RateKbps: 1000, BurstKB: 64}}

	_, changed, _ := s.replaceState(sw, table, []uint32{1, 2}, meters, 1, false)
	if !changed {
		t.Fatal("initial snapshot not recorded as a change")
	}
	idAfterFull := s.snapshotID()

	// Table-only resync of identical state: meters must survive, nothing
	// must change.
	s.replaceTable(sw, table, []uint32{1, 2}, 2)
	if got := s.metersOf(sw); len(got) != 1 || got[0] != meters[0] {
		t.Fatalf("table-only resync wiped the meter table: %+v", got)
	}
	if s.snapshotID() != idAfterFull {
		t.Fatalf("identical table-only resync bumped snapshot id %d -> %d", idAfterFull, s.snapshotID())
	}

	// A genuinely changed table via replaceTable still must not touch
	// meters.
	table2 := append(table, fwdEntry(90, 0x0A000002, 1))
	s.replaceTable(sw, table2, []uint32{1, 2}, 3)
	if got := s.metersOf(sw); len(got) != 1 || got[0] != meters[0] {
		t.Fatalf("changed table-only resync wiped the meter table: %+v", got)
	}
	if s.snapshotID() != idAfterFull+1 {
		t.Fatalf("changed resync id delta = %d, want 1", s.snapshotID()-idAfterFull)
	}

	// An explicit empty (non-nil) meter section DOES clear the meters.
	_, changed, _ = s.replaceState(sw, table2, nil, []openflow.MeterConfig{}, 4, false)
	if !changed {
		t.Fatal("meter clear not recorded as a change")
	}
	if got := s.metersOf(sw); len(got) != 0 {
		t.Fatalf("explicit empty meter section kept meters: %+v", got)
	}
}

// TestSameEntryIncludesMeterID: MeterID is part of rule identity, so
// tablesEqual and applyEvent's entry matching agree.
func TestSameEntryIncludesMeterID(t *testing.T) {
	a := fwdEntry(100, 0x0A000001, 2)
	b := a
	b.MeterID = 9
	if sameEntry(a, b) {
		t.Fatal("entries differing only in MeterID compare as the same rule")
	}
	if tablesEqual([]openflow.FlowEntry{a}, []openflow.FlowEntry{b}) {
		t.Fatal("tables differing only in MeterID compare equal")
	}

	// A removal event naming the metered variant must not delete the
	// unmetered rule.
	s := newSnapshotStore()
	sw := topology.SwitchID(1)
	s.replaceState(sw, []openflow.FlowEntry{a}, nil, nil, 1, false)
	_, ok, _ := s.applyEvent(sw, &openflow.FlowMonitorReply{Kind: openflow.FlowEventRemoved, Entry: b, Seq: 2})
	if !ok {
		t.Fatal("event not applied")
	}
	if got := s.table(sw); len(got) != 1 {
		t.Fatalf("removal of metered variant deleted the unmetered rule: %+v", got)
	}
}

// TestPollClearsDeletedMeters: the wire codec decodes an empty meter
// section to a nil slice, but a StatsReply is a FULL state snapshot —
// applyStats must normalize nil to "zero meters" so a meter deletion on
// the switch is visible to the next poll (nil-means-keep is only for
// table-only resyncs that genuinely carry no meter section).
func TestPollClearsDeletedMeters(t *testing.T) {
	c, _, _ := deltaTestController(t, 3)
	sw := topology.SwitchID(2)
	table := c.snap.table(sw)
	meters := []openflow.MeterConfig{{MeterID: 7, RateKbps: 1000, BurstKB: 64}}
	c.applyStats(sw, &openflow.StatsReply{Entries: table, Ports: []uint32{1, 2, 3}, Meters: meters, TableSeq: 2}, history.SourceActivePoll, false)
	if got := c.snap.metersOf(sw); len(got) != 1 {
		t.Fatalf("meters not stored: %+v", got)
	}
	// The switch deletes its meter; the next full poll decodes Meters=nil.
	c.applyStats(sw, &openflow.StatsReply{Entries: table, Ports: []uint32{1, 2, 3}, Meters: nil, TableSeq: 3}, history.SourceActivePoll, false)
	if got := c.snap.metersOf(sw); len(got) != 0 {
		t.Fatalf("poll with empty meter section did not clear deleted meters: %+v", got)
	}
}

// TestVerdictQueryRejectsWrongIngress: an authentically signed
// SubOpQueryVerdict replayed from a different port must be rejected — the
// ingress has to match the subscription's anchor, as for SubOpAdd —
// otherwise the signed verdict would be delivered to the replayer.
func TestVerdictQueryRejectsWrongIngress(t *testing.T) {
	c, aps, ids := deltaTestController(t, 3)
	pub, priv, err := ed25519.GenerateKey(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c.RegisterClient(aps[0].ClientID, pub)
	mkQuery := func() (*wire.SubscribeRequest, *wire.Packet) {
		sr := &wire.SubscribeRequest{
			Version:  wire.CurrentVersion,
			Op:       wire.SubOpQueryVerdict,
			ClientID: aps[0].ClientID,
			Nonce:    0x51,
			SubID:    ids[0],
		}
		sr.Signature = ed25519.Sign(priv, sr.SigningBytes())
		return sr, wire.NewSubscribePacket(aps[0].HostMAC, aps[0].HostIP, sr)
	}
	// Drive the frames through the production dispatch path (compat shim
	// + service stack), exactly as handlePacketIn would.
	serve := func(ep topology.Endpoint, pkt *wire.Packet) {
		env, err := wire.EnvelopeFromPacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		c.serveEnvelope(ep.Switch, ep.Port, pkt, env)
	}

	// Replay from the wrong ingress: rejected, no verdict served.
	_, pkt := mkQuery()
	serve(aps[1].Endpoint, pkt)
	if st := c.SubscriptionStats(); st.VerdictQueries != 0 {
		t.Fatalf("verdict served to a replayed frame from foreign ingress: %+v", st)
	}

	// The genuine anchor is answered.
	_, pkt = mkQuery()
	serve(aps[0].Endpoint, pkt)
	if st := c.SubscriptionStats(); st.VerdictQueries != 1 {
		t.Fatalf("verdict query from the anchored ingress not served: %+v", st)
	}
}

// ------------------------------------------------ rule-delta diffs ------

func TestTableDeltaIdenticalEmpty(t *testing.T) {
	tab := []openflow.FlowEntry{fwdEntry(100, 0x0A000001, 2), fwdEntry(90, 0x0A000002, 1)}
	if d := tableDelta(tab, append([]openflow.FlowEntry(nil), tab...), defaultDeltaTermCap); !d.Space.IsEmpty() {
		t.Fatalf("identical tables produced delta %v", d)
	}
}

func TestTableDeltaAddRemoveModify(t *testing.T) {
	base := []openflow.FlowEntry{fwdEntry(100, 0x0A000001, 2)}
	added := append([]openflow.FlowEntry{fwdEntry(50, 0x0A000009, 1)}, base...)

	d := tableDelta(base, added, defaultDeltaTermCap)
	if !d.Space.Overlaps(ipSpace(0x0A000009)) {
		t.Fatalf("added rule's space missing from delta %v", d)
	}
	if d.Space.Overlaps(ipSpace(0x0A000001)) {
		t.Fatalf("unchanged rule's space leaked into delta %v", d)
	}
	// Removal is symmetric.
	if d := tableDelta(added, base, defaultDeltaTermCap); !d.Space.Overlaps(ipSpace(0x0A000009)) {
		t.Fatalf("removed rule's space missing from delta %v", d)
	}
	// An action rewrite of an existing rule is a change inside its match.
	mod := []openflow.FlowEntry{fwdEntry(100, 0x0A000001, 3)}
	mod[0].Cookie = base[0].Cookie
	if d := tableDelta(base, mod, defaultDeltaTermCap); !d.Space.Overlaps(ipSpace(0x0A000001)) {
		t.Fatalf("modified rule's space missing from delta %v", d)
	}
}

// TestTableDeltaShadowing: a change fully covered by an unchanged
// higher-priority rule produces an EMPTY delta (no packet's behavior can
// differ), and a partially covered change produces only the unshadowed
// residual.
func TestTableDeltaShadowing(t *testing.T) {
	shadow := fwdEntry(200, 0x0A000009, 2) // exact-match high priority
	base := []openflow.FlowEntry{shadow, fwdEntry(100, 0x0A000001, 2)}

	// Insert a low-priority rule for the same destination: fully shadowed.
	ins := append(append([]openflow.FlowEntry(nil), base...), fwdEntry(10, 0x0A000009, 1))
	if d := tableDelta(base, ins, defaultDeltaTermCap); !d.Space.IsEmpty() {
		t.Fatalf("fully shadowed insert produced delta %v", d)
	}

	// Insert a low-priority /24-wide rule: only the shadowed /32 is carved
	// out of the delta.
	wide := openflow.FlowEntry{
		Priority: 10,
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: 0x0A000000, Mask: 0xFFFFFF00},
		}},
		Actions: []openflow.Action{openflow.Output(1)},
	}
	d := tableDelta(base, append(append([]openflow.FlowEntry(nil), base...), wide), defaultDeltaTermCap)
	if d.Space.Overlaps(ipSpace(0x0A000009)) {
		t.Fatalf("shadowed slice leaked into delta %v", d)
	}
	if !d.Space.Overlaps(ipSpace(0x0A000055)) {
		t.Fatalf("unshadowed slice missing from delta %v", d)
	}
	// Equal priority never shadows (arrival order is unknown).
	eq := append(append([]openflow.FlowEntry(nil), base...), fwdEntry(200, 0x0A000009, 1))
	if d := tableDelta(base, eq, defaultDeltaTermCap); !d.Space.Overlaps(ipSpace(0x0A000009)) {
		t.Fatalf("equal-priority insert wrongly shadowed: %v", d)
	}
}

// TestTableDeltaTransparentChurn: controller-only entries (e.g. RVaaS's
// interception rules) are omitted from the compiled model, so churning
// them yields no delta — and they never act as shadowers either.
func TestTableDeltaTransparentChurn(t *testing.T) {
	intercept := openflow.FlowEntry{
		Priority: 0xFFF0,
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPProto, Value: uint64(wire.IPProtoUDP), Mask: 0xFF},
		}},
		Actions: []openflow.Action{openflow.Output(openflow.ControllerPort)},
	}
	base := []openflow.FlowEntry{fwdEntry(100, 0x0A000001, 2)}
	if d := tableDelta(base, append([]openflow.FlowEntry{intercept}, base...), defaultDeltaTermCap); !d.Space.IsEmpty() {
		t.Fatalf("transparent entry churn produced delta %v", d)
	}
	// Not a shadower: an insert below the interception rule still deltas.
	withIntercept := append([]openflow.FlowEntry{intercept}, base...)
	ins := append(append([]openflow.FlowEntry(nil), withIntercept...), fwdEntry(10, 0x0A000009, 1))
	if d := tableDelta(withIntercept, ins, defaultDeltaTermCap); !d.Space.Overlaps(ipSpace(0x0A000009)) {
		t.Fatalf("transparent entry wrongly shadowed the delta: %v", d)
	}
}

// TestTableDeltaEqualPriorityReorder: swapping two overlapping
// equal-priority rules changes which one wins (stable order is arrival
// order), so a pure reorder must produce a non-empty delta.
func TestTableDeltaEqualPriorityReorder(t *testing.T) {
	r1 := fwdEntry(100, 0x0A000009, 1)
	r2 := fwdEntry(100, 0x0A000009, 2)
	d := tableDelta(
		[]openflow.FlowEntry{r1, r2},
		[]openflow.FlowEntry{r2, r1}, defaultDeltaTermCap)
	if !d.Space.Overlaps(ipSpace(0x0A000009)) {
		t.Fatalf("equal-priority reorder produced no delta: %v", d)
	}
}

func TestEventDelta(t *testing.T) {
	base := []openflow.FlowEntry{fwdEntry(200, 0x0A000009, 2), fwdEntry(100, 0x0A000001, 2)}
	// Added, fully shadowed.
	d := eventDelta(base, &openflow.FlowMonitorReply{
		Kind: openflow.FlowEventAdded, Entry: fwdEntry(10, 0x0A000009, 1)}, defaultDeltaTermCap)
	if !d.Space.IsEmpty() {
		t.Fatalf("shadowed add event produced delta %v", d)
	}
	// Added, unshadowed.
	d = eventDelta(base, &openflow.FlowMonitorReply{
		Kind: openflow.FlowEventAdded, Entry: fwdEntry(10, 0x0A000077, 1)}, defaultDeltaTermCap)
	if !d.Space.Overlaps(ipSpace(0x0A000077)) {
		t.Fatalf("add event delta %v misses the new rule", d)
	}
	// Removed.
	d = eventDelta(base, &openflow.FlowMonitorReply{
		Kind: openflow.FlowEventRemoved, Entry: base[1]}, defaultDeltaTermCap)
	if !d.Space.Overlaps(ipSpace(0x0A000001)) {
		t.Fatalf("remove event delta %v misses the removed rule", d)
	}
	// Modified in place (same priority+match, new actions).
	mod := fwdEntry(100, 0x0A000001, 3)
	d = eventDelta(base, &openflow.FlowMonitorReply{
		Kind: openflow.FlowEventModified, Entry: mod}, defaultDeltaTermCap)
	if !d.Space.Overlaps(ipSpace(0x0A000001)) {
		t.Fatalf("modify event delta %v misses the modified rule", d)
	}
}

// ------------------------------------- differential & race coverage -----

// deltaTestController builds a manual-recheck controller on a linear chain
// with primed routing and one standing invariant per adjacent access-point
// pair, plus one isolation invariant.
func deltaTestController(t *testing.T, nSwitches int) (*Controller, []topology.AccessPoint, []uint64) {
	t.Helper()
	topo, err := topology.Linear(nSwitches, nil)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Topology: topo, Platform: platform, ManualRecheck: true, HistoryDepth: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.Start()
	for i := 1; i <= nSwitches; i++ {
		c.snap.replaceState(topology.SwitchID(i), raceRoutingTable(topo, topology.SwitchID(i), nSwitches), nil, nil, 1, false)
	}
	aps := topo.AccessPoints()
	var ids []uint64
	for i := 0; i+1 < len(aps); i++ {
		id, err := c.Subscribe(aps[i].ClientID, wire.QueryReachableDestinations,
			[]wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(aps[i+1].HostIP), Mask: 0xFFFFFFFF}},
			"", aps[i].Endpoint)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	id, err := c.Subscribe(aps[0].ClientID, wire.QueryIsolation,
		[]wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(aps[0].HostIP), Mask: 0xFFFFFFFF}},
		"", aps[0].Endpoint)
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, id)
	c.RecheckNow()
	return c, aps, ids
}

// verdictVector snapshots (Violated, Detail) per subscription in id order.
func verdictVector(c *Controller) []string {
	subs := c.Subscriptions()
	out := make([]string, len(subs))
	for i, s := range subs {
		out[i] = fmt.Sprintf("%d:%v:%s", s.ID, s.Violated, s.Detail)
	}
	return out
}

// TestDeltaDispatchDifferential replays one deterministic event script on
// two identically configured controllers — one dispatching at rule-delta
// granularity (the default), one forced to per-switch granularity (the
// PR 3 reference) — and asserts the full verdict vector (violated bit AND
// detail string) is identical after every step: the overlap filter only
// ever skips evaluations whose outcome provably cannot change.
func TestDeltaDispatchDifferential(t *testing.T) {
	const n = 8
	cDelta, aps, _ := deltaTestController(t, n)
	cRef, _, _ := deltaTestController(t, n)
	cRef.SetRecheckTuning(RecheckTuning{PerSwitchDispatch: true})

	topo := cDelta.topo
	mkTable := func(sw int, extra ...openflow.FlowEntry) []openflow.FlowEntry {
		return append(append([]openflow.FlowEntry(nil), extra...),
			raceRoutingTable(topo, topology.SwitchID(sw), n)...)
	}
	drop := func(dst uint32) openflow.FlowEntry {
		return openflow.FlowEntry{
			Priority: 3000,
			Match: openflow.Match{Fields: []openflow.FieldMatch{
				{Field: wire.FieldIPDst, Value: uint64(dst), Mask: 0xFFFFFFFF},
			}},
			Cookie: 0xD40D,
		}
	}
	// The script mixes verdict-flipping changes (drops on path switches),
	// delta-invisible churn (unused destinations, fully shadowed inserts,
	// meter-only changes) and restores.
	steps := []struct {
		sw    int
		table []openflow.FlowEntry
	}{
		{4, mkTable(4, drop(aps[4].HostIP))},                   // violates sub 3->4... (footprint crossing 4)
		{4, mkTable(4, drop(aps[4].HostIP), drop(0xCB007101))}, // irrelevant extra churn
		{6, mkTable(6, fwdEntry(1, 0xCB007199, 1))},            // unused dst, low prio
		{4, mkTable(4)},                      // restore
		{2, mkTable(2, drop(aps[2].HostIP))}, // violate around 2
		{2, mkTable(2, drop(aps[2].HostIP), fwdEntry(1, aps[2].HostIP, 1))}, // fully shadowed by the drop
		{2, mkTable(2)},                      // restore
		{7, mkTable(7, drop(aps[0].HostIP))}, // hits the isolation invariant's cones
		{7, mkTable(7)},                      // restore
	}
	seqs := map[int]uint64{}
	for si, st := range steps {
		seqs[st.sw]++
		seq := seqs[st.sw] + 1 // initial prime used seq 1
		for _, c := range []*Controller{cDelta, cRef} {
			c.snap.replaceState(topology.SwitchID(st.sw), st.table, nil, nil, seq, false)
			c.RecheckNow()
		}
		dv, rv := verdictVector(cDelta), verdictVector(cRef)
		if len(dv) != len(rv) {
			t.Fatalf("step %d: vector sizes %d vs %d", si, len(dv), len(rv))
		}
		for i := range dv {
			if dv[i] != rv[i] {
				t.Fatalf("step %d: verdict diverged\n  delta:      %s\n  per-switch: %s", si, dv[i], rv[i])
			}
		}
	}
	// The delta engine must actually have skipped work the per-switch
	// engine did, or the experiment is vacuous.
	dst, rst := cDelta.SubscriptionStats(), cRef.SubscriptionStats()
	if dst.DeltaSkipped == 0 {
		t.Errorf("delta engine skipped nothing: %+v", dst)
	}
	if dst.Evaluated >= rst.Evaluated {
		t.Errorf("delta engine evaluated %d >= per-switch %d", dst.Evaluated, rst.Evaluated)
	}
	if rst.DeltaSkipped != 0 {
		t.Errorf("per-switch reference delta-skipped %d, want 0", rst.DeltaSkipped)
	}
}

// TestDeltaCommitSubscribeRaceStress interleaves rule-delta commits with
// concurrent subscribe/unsubscribe churn under -race, in several rounds;
// after each round it quiesces and proves the overlap filter never skipped
// an invariant whose verdict would change: a forced full revalidation
// produces zero additional transitions and leaves every verdict unchanged.
func TestDeltaCommitSubscribeRaceStress(t *testing.T) {
	const n = 10
	const rounds = 3
	c, aps, _ := deltaTestController(t, n)

	var (
		seqMu   sync.Mutex
		seqs    = map[int]uint64{}
		subErrs atomic.Int64
	)
	commit := func(sw int, table []openflow.FlowEntry) {
		seqMu.Lock()
		seqs[sw]++
		seq := seqs[sw] + 1
		seqMu.Unlock()
		c.snap.replaceState(topology.SwitchID(sw), table, nil, nil, seq, false)
	}

	for round := 0; round < rounds; round++ {
		var stop atomic.Bool
		var wg sync.WaitGroup

		// Committer: flips path switches between routing, routing+drop
		// (verdict flip) and routing+irrelevant churn (delta-invisible),
		// rechecking after each commit.
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7 + round)))
			for !stop.Load() {
				sw := 3 + rng.Intn(5)
				base := raceRoutingTable(c.topo, topology.SwitchID(sw), n)
				switch rng.Intn(3) {
				case 0:
					base = append([]openflow.FlowEntry{{
						Priority: 3000,
						Match: openflow.Match{Fields: []openflow.FieldMatch{
							{Field: wire.FieldIPDst, Value: uint64(aps[sw].HostIP), Mask: 0xFFFFFFFF},
						}},
						Cookie: 0xD40D,
					}}, base...)
				case 1:
					base = append([]openflow.FlowEntry{fwdEntry(1, 0xCB007100+uint32(rng.Intn(17)), 1)}, base...)
				}
				commit(sw, base)
				c.RecheckNow()
			}
		}(round)

		// Subscriber churn against the same engine.
		wg.Add(2)
		for g := 0; g < 2; g++ {
			go func(g int) {
				defer wg.Done()
				for !stop.Load() {
					i := 1 + g*4
					id, err := c.Subscribe(aps[i].ClientID, wire.QueryReachableDestinations,
						[]wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(aps[i+1].HostIP), Mask: 0xFFFFFFFF}},
						"", aps[i].Endpoint)
					if err != nil {
						subErrs.Add(1)
						continue
					}
					if !c.Unsubscribe(aps[i].ClientID, id) {
						subErrs.Add(1)
					}
				}
			}(g)
		}

		time.Sleep(120 * time.Millisecond)
		stop.Store(true)
		wg.Wait()

		// Quiesce: absorb everything pending incrementally, then prove a
		// forced full revalidation changes nothing.
		c.RecheckNow()
		before := c.SubscriptionStats()
		vecBefore := verdictVector(c)
		c.RevalidateAll()
		after := c.SubscriptionStats()
		vecAfter := verdictVector(c)
		if s := diffCommon(vecBefore, vecAfter); s != "" {
			t.Fatalf("round %d: delta dispatch left a stale verdict: %s", round, s)
		}
		if after.Violations != before.Violations || after.Recoveries != before.Recoveries {
			t.Fatalf("round %d: RevalidateAll flipped verdicts the delta dispatch missed: %+v -> %+v", round, before, after)
		}
	}

	if n := subErrs.Load(); n > 0 {
		t.Fatalf("%d subscribe/unsubscribe operations failed", n)
	}
	checkEngineConsistency(t, c)
	if st := c.SubscriptionStats(); st.DeltaSkipped == 0 {
		t.Errorf("stress never exercised the delta filter: %+v", st)
	}
}

// diffCommon reports the first entry present in both id-prefixed vectors
// that differs, or "".
func diffCommon(a, b []string) string {
	index := func(v []string) map[string]string {
		m := make(map[string]string, len(v))
		for _, s := range v {
			var id string
			for i := range s {
				if s[i] == ':' {
					id = s[:i]
					break
				}
			}
			m[id] = s
		}
		return m
	}
	am, bm := index(a), index(b)
	for id, av := range am {
		if bv, ok := bm[id]; ok && av != bv {
			return fmt.Sprintf("%s vs %s", av, bv)
		}
	}
	return ""
}

// TestDeltaPortRefinement: deltas built exclusively from in-port-restricted
// changed rules carry the union of those ports, and an invariant whose
// recorded traversal slice entered the switch on a different port is
// revalidated for free — while a single unrestricted changed rule collapses
// the refinement to any-port.
func TestDeltaPortRefinement(t *testing.T) {
	inPortEntry := func(port uint32, dst uint32) openflow.FlowEntry {
		return openflow.FlowEntry{
			Priority: 50,
			Match: openflow.Match{
				InPort: port,
				Fields: []openflow.FieldMatch{
					{Field: wire.FieldIPDst, Value: uint64(dst), Mask: 0xFFFFFFFF},
				},
			},
			Actions: []openflow.Action{openflow.Output(1)},
		}
	}

	// Single restricted rule: exact port refinement.
	d := deltaOf([]openflow.FlowEntry{inPortEntry(3, 0x0A000009)}, nil, defaultDeltaTermCap)
	if len(d.Ports) != 1 || d.Ports[0] != 3 {
		t.Fatalf("single restricted rule delta ports = %v, want [3]", d.Ports)
	}
	if !d.Space.Overlaps(ipSpace(0x0A000009)) {
		t.Fatalf("restricted rule's space missing from delta")
	}

	// Two restricted rules: port union.
	d = deltaOf([]openflow.FlowEntry{inPortEntry(3, 0x0A000009), inPortEntry(5, 0x0A000010)}, nil, defaultDeltaTermCap)
	if len(d.Ports) != 2 {
		t.Fatalf("two restricted rules delta ports = %v, want two entries", d.Ports)
	}

	// One unrestricted rule anywhere collapses to any-port, regardless of
	// position in the changed set.
	for _, changed := range [][]openflow.FlowEntry{
		{inPortEntry(3, 0x0A000009), fwdEntry(50, 0x0A000010, 1)},
		{fwdEntry(50, 0x0A000010, 1), inPortEntry(3, 0x0A000009)},
	} {
		if d := deltaOf(changed, nil, defaultDeltaTermCap); d.Ports != nil {
			t.Fatalf("unrestricted rule left port refinement %v, want any-port", d.Ports)
		}
	}

	// Exact-slice dispatch: a footprint whose slice at the switch entered
	// on port 7 is disjoint from a port-3 delta even when the header spaces
	// overlap; the same slice on port 3 is invalidated.
	d = deltaOf([]openflow.FlowEntry{inPortEntry(3, 0x0A000009)}, nil, defaultDeltaTermCap)
	deltas := map[headerspace.NodeID]headerspace.Delta{5: d}
	miss := headerspace.NewFootprint()
	miss.AddSliceAt(5, ipSpace(0x0A000009), 7)
	if miss.InvalidatedBy(deltas) {
		t.Fatal("slice entering on port 7 invalidated by a port-3 delta")
	}
	hit := headerspace.NewFootprint()
	hit.AddSliceAt(5, ipSpace(0x0A000009), 3)
	if !hit.InvalidatedBy(deltas) {
		t.Fatal("slice entering on port 3 not invalidated by a port-3 delta")
	}
	// A slice recorded without port information (any-port) stays
	// conservative: the refinement can only ever skip provably safe work.
	anyPort := headerspace.NewFootprint()
	anyPort.AddSlice(5, ipSpace(0x0A000009))
	if !anyPort.InvalidatedBy(deltas) {
		t.Fatal("any-port slice not invalidated by an overlapping port-restricted delta")
	}
}
