package rvaas_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/deploy"
	"repro/internal/topology"
	"repro/internal/wire"
)

// simClock is a race-safe simulated time source for tests that advance
// virtual time while controller goroutines read it.
type simClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *simClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *simClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

// TestTracebackIngress reproduces the paper's §IV-C extension: after a join
// attack flaps through the network, the history lets RVaaS name the edge
// port the attack path originated from.
func TestTracebackIngress(t *testing.T) {
	topo, err := topology.Linear(4, []uint64{1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Simulated clock so history timestamps are deterministic.
	clk := &simClock{t: time.Date(2026, 6, 1, 10, 0, 0, 0, time.UTC)}
	d, err := deploy.New(topo, deploy.Options{TenantRouting: true, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	victim := topo.AccessPoints()[0]
	secret := topo.AccessPoints()[2].Endpoint

	// Window starts after deployment-time changes have settled, so the
	// diff contains only the attack.
	start := clk.Advance(time.Second)
	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}

	clk.Advance(10 * time.Second)
	atk := &controlplane.JoinAttack{
		VictimIP:   victim.HostIP,
		SecretAP:   secret,
		AttackerIP: wire.IPv4(172, 16, 6, 6),
	}
	if err := atk.Launch(d.Provider); err != nil {
		t.Fatal(err)
	}
	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}
	end := clk.Advance(10 * time.Second)

	rep := d.RVaaS.TracebackIngress(victim, start, end)
	if len(rep.Changes) == 0 {
		t.Fatal("no config changes recorded in the window")
	}
	foundAttackRule := false
	for _, ch := range rep.Changes {
		if !ch.Removed && ch.Entry.Cookie&controlplane.CookieAttack == controlplane.CookieAttack {
			foundAttackRule = true
		}
	}
	if !foundAttackRule {
		t.Error("attack rules not in the diff")
	}
	// The secret ingress port must be among the traced ingress candidates.
	found := false
	for _, ep := range rep.IngressPorts {
		if ep == secret {
			found = true
		}
	}
	if !found {
		t.Errorf("traceback missed the attack ingress %s: %v", secret, rep.IngressPorts)
	}
}

// TestConfigDiffEmptyWindow checks a quiet window reports nothing.
func TestConfigDiffEmptyWindow(t *testing.T) {
	topo, err := topology.Linear(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	clk := &simClock{t: time.Date(2026, 6, 1, 10, 0, 0, 0, time.UTC)}
	d, err := deploy.New(topo, deploy.Options{Clock: clk.Now, SkipAgents: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Let deployment-time table changes settle outside the window.
	start := clk.Advance(time.Second)
	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}
	end := clk.Advance(time.Minute)
	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}
	changes := d.RVaaS.ConfigDiff(start, end)
	if len(changes) != 0 {
		t.Errorf("quiet window produced %d changes", len(changes))
	}
}
