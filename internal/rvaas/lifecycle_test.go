package rvaas_test

import (
	"fmt"
	"testing"

	"repro/internal/deploy"
	"repro/internal/history"
	"repro/internal/openflow"
	"repro/internal/rvaas"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TestDetachDegradesAndReattachConverges is the dynamic-session lifecycle:
// losing a switch's control channel wipes its snapshot state so standing
// invariants over it go violated (degraded — never stale-green on a view
// nobody can vouch for), and a re-attach of the restarted switch converges
// back via a forced resync.
func TestDetachDegradesAndReattachConverges(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{SkipAgents: true, ManualRecheck: true})
	aps := d.Topology.AccessPoints()

	if _, err := d.RVaaS.Subscribe(aps[0].ClientID, wire.QueryReachableDestinations,
		ipConstraint(aps[2].HostIP), "", aps[0].Endpoint); err != nil {
		t.Fatal(err)
	}
	subs := d.RVaaS.Subscriptions()
	if len(subs) != 1 || subs[0].Violated {
		t.Fatalf("initial subscriptions = %+v", subs)
	}
	for _, ss := range d.RVaaS.SwitchSessions() {
		// A bring-up gap resync may still be settling: attached or
		// resyncing both count as live.
		if !ss.Attached() {
			t.Fatalf("switch %d state = %q before detach", ss.Switch, ss.State)
		}
	}

	// The middle switch's control session dies (its hosting process was
	// killed, say).
	const mid = topology.SwitchID(2)
	d.RVaaS.Detach(mid)
	d.RVaaS.RecheckNow()

	subs = d.RVaaS.Subscriptions()
	if len(subs) != 1 || !subs[0].Violated {
		t.Fatalf("subscription not degraded after detach: %+v", subs)
	}
	sessions := d.RVaaS.SwitchSessions()
	if len(sessions) != 3 {
		t.Fatalf("sessions = %+v, want all 3 topology switches listed", sessions)
	}
	for _, ss := range sessions {
		if ss.Switch == mid {
			if ss.State != rvaas.SwitchDetached {
				t.Errorf("switch %d state = %q, want %q", ss.Switch, ss.State, rvaas.SwitchDetached)
			}
		} else if !ss.Attached() {
			t.Errorf("switch %d state = %q, want a live session", ss.Switch, ss.State)
		}
	}
	if ss := sessions[1]; ss.Attached() {
		t.Errorf("detached switch reports Attached()")
	}
	rec, ok := d.RVaaS.History().Latest()
	if !ok || rec.Source != history.SourceDetach {
		t.Errorf("latest history record = %+v, want a SourceDetach wipe", rec)
	}
	if st := d.RVaaS.Stats(); st.Detaches != 1 {
		t.Errorf("detaches = %d, want 1", st.Detaches)
	}
	// A forced resync of a detached switch is a conflict, not a crash.
	if err := d.RVaaS.ForceResync(mid); err == nil {
		t.Error("ForceResync of a detached switch succeeded")
	}

	// The switch's process restarts and re-attaches over a fresh channel.
	swIdent, err := openflow.NewIdentity(fmt.Sprintf("switch-%d", mid))
	if err != nil {
		t.Fatal(err)
	}
	ctlID, err := openflow.NewIdentity("rvaas")
	if err != nil {
		t.Fatal(err)
	}
	ctlConn, swConn, err := openflow.ConnectSecure(ctlID, d.CA.Issue(ctlID), swIdent, d.CA.Issue(swIdent), d.CA.Pub)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Fabric.Switch(mid).Serve(swConn); err != nil {
		t.Fatal(err)
	}
	if err := d.RVaaS.Attach(mid, ctlConn); err != nil {
		t.Fatalf("reattach: %v", err)
	}
	d.RVaaS.RecheckNow()

	subs = d.RVaaS.Subscriptions()
	if len(subs) != 1 || subs[0].Violated {
		t.Fatalf("subscription did not recover after reattach: %+v", subs)
	}
	for _, ss := range d.RVaaS.SwitchSessions() {
		if !ss.Attached() {
			t.Errorf("switch %d state = %q after reattach", ss.Switch, ss.State)
		}
	}
	if st := d.RVaaS.Stats(); st.Reattaches != 1 {
		t.Errorf("reattaches = %d, want 1", st.Reattaches)
	}
}

// TestDetachIdempotentAndShutdownQuiet: a second Detach of the same switch
// is a no-op, and the controller's bulk teardown must not record the
// remaining sessions as detach wipes.
func TestDetachIdempotentAndShutdownQuiet(t *testing.T) {
	d := deployLinear(t, 2, deploy.Options{SkipAgents: true, ManualRecheck: true})
	d.RVaaS.Detach(1)
	d.RVaaS.Detach(1) // idempotent: no session, no second wipe
	if st := d.RVaaS.Stats(); st.Detaches != 1 {
		t.Fatalf("detaches = %d, want 1", st.Detaches)
	}
	before := d.RVaaS.Stats().Detaches
	d.RVaaS.Close()
	if got := d.RVaaS.Stats().Detaches; got != before {
		t.Errorf("shutdown recorded %d extra detach wipes", got-before)
	}
}
