package rvaas

import (
	"sync"

	"repro/internal/headerspace"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

// snapshotStore maintains RVaaS's up-to-date view of every switch's
// configuration ("the controller maintains an up-to-date snapshot of the
// network configuration, either passively (monitoring events) or actively
// (query the switch state)", §IV-A1).
type snapshotStore struct {
	mu     sync.Mutex
	tables map[topology.SwitchID][]openflow.FlowEntry
	ports  map[topology.SwitchID][]uint32
	meters map[topology.SwitchID][]openflow.MeterConfig
	// seq tracks the last flow-monitor event sequence seen per switch, used
	// to detect gaps (missed events force a full resync).
	seq map[topology.SwitchID]uint64
	// id increments on every applied change; responses carry it so clients
	// can correlate answers with configuration versions.
	id uint64
}

func newSnapshotStore() *snapshotStore {
	return &snapshotStore{
		tables: make(map[topology.SwitchID][]openflow.FlowEntry),
		ports:  make(map[topology.SwitchID][]uint32),
		meters: make(map[topology.SwitchID][]openflow.MeterConfig),
		seq:    make(map[topology.SwitchID]uint64),
	}
}

// replaceTable installs a full-table snapshot (active poll result).
func (s *snapshotStore) replaceTable(sw topology.SwitchID, entries []openflow.FlowEntry, ports []uint32, seq uint64) {
	s.replaceState(sw, entries, ports, nil, seq)
}

// replaceState installs a full snapshot including the meter table.
func (s *snapshotStore) replaceState(sw topology.SwitchID, entries []openflow.FlowEntry, ports []uint32, meters []openflow.MeterConfig, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[sw] = append([]openflow.FlowEntry(nil), entries...)
	if ports != nil {
		s.ports[sw] = append([]uint32(nil), ports...)
	}
	if meters != nil {
		s.meters[sw] = append([]openflow.MeterConfig(nil), meters...)
	} else {
		delete(s.meters, sw)
	}
	s.seq[sw] = seq
	s.id++
}

// metersOf returns a copy of a switch's polled meter table.
func (s *snapshotStore) metersOf(sw topology.SwitchID) []openflow.MeterConfig {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]openflow.MeterConfig(nil), s.meters[sw]...)
}

// applyEvent folds one flow-monitor event into the table. It returns false
// when a sequence gap is detected, signalling the caller to resync.
func (s *snapshotStore) applyEvent(sw topology.SwitchID, ev *openflow.FlowMonitorReply) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	last := s.seq[sw]
	if ev.Seq != last+1 {
		return false
	}
	s.seq[sw] = ev.Seq
	s.id++
	switch ev.Kind {
	case openflow.FlowEventAdded:
		s.tables[sw] = append(s.tables[sw], ev.Entry)
	case openflow.FlowEventRemoved:
		kept := s.tables[sw][:0]
		for _, e := range s.tables[sw] {
			if !sameEntry(e, ev.Entry) {
				kept = append(kept, e)
			}
		}
		s.tables[sw] = kept
	case openflow.FlowEventModified:
		replaced := false
		for i, e := range s.tables[sw] {
			if e.Priority == ev.Entry.Priority && sameMatch(e.Match, ev.Entry.Match) {
				s.tables[sw][i] = ev.Entry
				replaced = true
			}
		}
		if !replaced {
			s.tables[sw] = append(s.tables[sw], ev.Entry)
		}
	}
	return true
}

func sameMatch(a, b openflow.Match) bool {
	if a.InPort != b.InPort || len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		if a.Fields[i] != b.Fields[i] {
			return false
		}
	}
	return true
}

func sameEntry(a, b openflow.FlowEntry) bool {
	if a.Priority != b.Priority || a.Cookie != b.Cookie || !sameMatch(a.Match, b.Match) {
		return false
	}
	if len(a.Actions) != len(b.Actions) {
		return false
	}
	for i := range a.Actions {
		if a.Actions[i] != b.Actions[i] {
			return false
		}
	}
	return true
}

// table returns a copy of one switch's entries.
func (s *snapshotStore) table(sw topology.SwitchID) []openflow.FlowEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]openflow.FlowEntry(nil), s.tables[sw]...)
}

// allTables returns a deep copy of every table (for history records).
func (s *snapshotStore) allTables() map[topology.SwitchID][]openflow.FlowEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[topology.SwitchID][]openflow.FlowEntry, len(s.tables))
	for k, v := range s.tables {
		out[k] = append([]openflow.FlowEntry(nil), v...)
	}
	return out
}

// snapshotID returns the current configuration version.
func (s *snapshotStore) snapshotID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.id
}

// buildNetwork compiles the current snapshot plus the wiring plan into a
// header-space network for logical verification (§IV-A2). Port numbering:
// headerspace.PortID == physical port number, headerspace.NodeID == switch
// id.
func (s *snapshotStore) buildNetwork(topo *topology.Topology) *headerspace.Network {
	net := headerspace.NewNetwork(wire.HeaderWidth)
	s.mu.Lock()
	type swTable struct {
		id      topology.SwitchID
		entries []openflow.FlowEntry
		ports   []uint32
	}
	var snap []swTable
	for _, sw := range topo.Switches() {
		ports := s.ports[sw]
		if ports == nil {
			for p := topology.PortNo(1); p <= topo.PortCount(sw); p++ {
				ports = append(ports, uint32(p))
			}
		}
		snap = append(snap, swTable{
			id:      sw,
			entries: append([]openflow.FlowEntry(nil), s.tables[sw]...),
			ports:   ports,
		})
	}
	s.mu.Unlock()

	for _, st := range snap {
		tf := openflow.BuildTransferFunction(st.entries, st.ports)
		// Width is fixed by construction; AddNode cannot fail.
		_ = net.AddNode(headerspace.NodeID(st.id), tf)
	}
	for _, l := range topo.Links() {
		net.AddDuplex(
			headerspace.NodeID(l.A.Switch), headerspace.PortID(l.A.Port),
			headerspace.NodeID(l.B.Switch), headerspace.PortID(l.B.Port),
		)
	}
	return net
}
