package rvaas

import (
	"sort"
	"sync"

	"repro/internal/headerspace"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

// CompileStats counts compiled-network cache activity. Queries against an
// unchanged snapshot must not pay compilation at all (NetworkHits); after a
// single-switch change only that switch's transfer function is recompiled
// (SwitchCompiles grows by 1, SwitchReuses by the rest).
type CompileStats struct {
	// NetworkHits counts buildNetwork calls served entirely from cache.
	NetworkHits uint64
	// NetworkBuilds counts buildNetwork calls that had to assemble a new
	// Network (even if most transfer functions were reused).
	NetworkBuilds uint64
	// SwitchCompiles counts per-switch transfer-function compilations.
	SwitchCompiles uint64
	// SwitchReuses counts per-switch compilations avoided by the cache.
	SwitchReuses uint64
}

// compiledSwitch memoizes one switch's compiled transfer function together
// with the snapshot generation it was compiled from.
type compiledSwitch struct {
	gen uint64
	tf  *headerspace.TransferFunction
}

// snapshotStore maintains RVaaS's up-to-date view of every switch's
// configuration ("the controller maintains an up-to-date snapshot of the
// network configuration, either passively (monitoring events) or actively
// (query the switch state)", §IV-A1).
//
// It also owns the compiled-network cache: buildNetwork memoizes its result
// per snapshot id and recompiles only the transfer functions of switches
// whose state actually changed (tracked by per-switch generation counters).
type snapshotStore struct {
	mu     sync.Mutex
	tables map[topology.SwitchID][]openflow.FlowEntry
	ports  map[topology.SwitchID][]uint32
	meters map[topology.SwitchID][]openflow.MeterConfig
	// seq tracks the last flow-monitor event sequence seen per switch, used
	// to detect gaps (missed events force a full resync).
	seq map[topology.SwitchID]uint64
	// id increments on every applied change; responses carry it so clients
	// can correlate answers with configuration versions.
	id uint64
	// gen increments per switch on every change to that switch's state;
	// the compile cache keys on it.
	gen map[topology.SwitchID]uint64
	// deltas accumulates, per switch, the header-space delta of every
	// change applied since the subscription engine last drained it
	// (generationsAndDeltas): the set of packets whose forwarding behavior
	// at that switch may differ from the drained baseline (see
	// ruledelta.go). A switch with a bumped generation but a semantically
	// empty delta (fully shadowed insert, meter-only change, interception-
	// rule churn) dispatches no re-verification at all.
	deltas map[topology.SwitchID]headerspace.Delta
	// deltaCap bounds the union-term count of one accumulated delta
	// (defaultDeltaTermCap unless tuned via RecheckTuning.DeltaTermCap).
	deltaCap int

	// Compiled-network cache. Guarded by mu; the cached *Network itself is
	// immutable once published and safe for concurrent readers.
	compiled  map[topology.SwitchID]compiledSwitch
	cachedNet *headerspace.Network
	cachedID  uint64             // snapshot id cachedNet was built from
	cachedFor *topology.Topology // topology cachedNet/compiled are valid for
	stats     CompileStats
}

func newSnapshotStore() *snapshotStore {
	return &snapshotStore{
		tables:   make(map[topology.SwitchID][]openflow.FlowEntry),
		ports:    make(map[topology.SwitchID][]uint32),
		meters:   make(map[topology.SwitchID][]openflow.MeterConfig),
		seq:      make(map[topology.SwitchID]uint64),
		gen:      make(map[topology.SwitchID]uint64),
		deltas:   make(map[topology.SwitchID]headerspace.Delta),
		deltaCap: defaultDeltaTermCap,
		compiled: make(map[topology.SwitchID]compiledSwitch),
	}
}

// accumulateDeltaLocked folds one change's header-space delta into the
// switch's pending delta, collapsing to the full space past the term cap
// (conservative: equivalent to per-switch dispatch). Callers hold s.mu.
func (s *snapshotStore) accumulateDeltaLocked(sw topology.SwitchID, d headerspace.Delta) {
	cur, ok := s.deltas[sw]
	if !ok {
		s.deltas[sw] = d
		return
	}
	merged := cur.Space.Union(d.Space)
	if merged.Size() > s.deltaCap {
		merged = headerspace.FullSpace(wire.HeaderWidth)
	}
	s.deltas[sw] = headerspace.Delta{
		Space: merged,
		Ports: headerspace.MergeDeltaPorts(cur.Ports, d.Ports),
	}
}

// setDeltaCap tunes the per-switch delta term cap (<=0 restores the
// default).
func (s *snapshotStore) setDeltaCap(n int) {
	s.mu.Lock()
	if n <= 0 {
		n = defaultDeltaTermCap
	}
	s.deltaCap = n
	s.mu.Unlock()
}

// bumpLocked records a state change on sw. Callers hold s.mu.
func (s *snapshotStore) bumpLocked(sw topology.SwitchID) {
	s.id++
	s.gen[sw]++
}

// capture is a consistent (id, tables) pair taken atomically with the
// mutation that produced it, so concurrent mutators (parallel PollAll,
// passive events) each get a history record matching exactly their own
// change — re-reading id and tables after releasing the lock could pair a
// later id with later tables, duplicating or skipping snapshot ids.
//
// It additionally carries the mutated switch's committed state (entries,
// ports, meters, event seq) copied under the same lock acquisition: the
// event tap (SetEventTap) hands exactly this payload to differential
// oracles, which must replay the committed stream, not a racy re-read.
type capture struct {
	id     uint64
	tables map[topology.SwitchID][]openflow.FlowEntry

	sw      topology.SwitchID
	entries []openflow.FlowEntry
	ports   []uint32
	meters  []openflow.MeterConfig
	seq     uint64
}

// captureLocked deep-copies the current state; sw names the switch this
// mutation touched. Callers hold s.mu.
func (s *snapshotStore) captureLocked(sw topology.SwitchID) capture {
	c := capture{id: s.id, tables: make(map[topology.SwitchID][]openflow.FlowEntry, len(s.tables))}
	for k, v := range s.tables {
		c.tables[k] = append([]openflow.FlowEntry(nil), v...)
	}
	c.sw = sw
	c.entries = c.tables[sw]
	// make+copy (not append) so "present but empty" survives the copy:
	// replaying a meter wipe needs an empty non-nil slice, nil means "keep".
	if p := s.ports[sw]; p != nil {
		c.ports = make([]uint32, len(p))
		copy(c.ports, p)
	}
	if m := s.meters[sw]; m != nil {
		c.meters = make([]openflow.MeterConfig, len(m))
		copy(c.meters, m)
	}
	c.seq = s.seq[sw]
	return c
}

// exportAll captures every seen switch's committed state in switch order —
// the baseline a differential oracle replays before the event tap takes
// over. One lock acquisition, so the captures are mutually consistent.
func (s *snapshotStore) exportAll() []capture {
	s.mu.Lock()
	defer s.mu.Unlock()
	sws := make([]topology.SwitchID, 0, len(s.tables))
	for sw := range s.tables {
		sws = append(sws, sw)
	}
	sort.Slice(sws, func(i, j int) bool { return sws[i] < sws[j] })
	caps := make([]capture, 0, len(sws))
	for _, sw := range sws {
		caps = append(caps, s.captureLocked(sw))
	}
	return caps
}

// replaceTable installs a full-table snapshot (active poll result).
func (s *snapshotStore) replaceTable(sw topology.SwitchID, entries []openflow.FlowEntry, ports []uint32, seq uint64) {
	s.replaceState(sw, entries, ports, nil, seq, false)
}

// replaceState installs a full snapshot including the meter table. The
// returned capture pairs the new snapshot id with the tables as of exactly
// this change; changed reports whether the switch's state actually
// differed from the stored snapshot. An identical resync (the common case
// for full active polls of a quiet network) advances neither the snapshot
// id nor the switch's generation, so the compile cache stays valid and
// standing invariants revalidate for free.
//
// A reply whose sequence is behind the store's is rejected as stale
// (rejectedStale=true) unless force is set: the monitor layer forces
// acceptance when repeated evidence says the switch's counter genuinely
// regressed (restart), making the switch authoritative again.
func (s *snapshotStore) replaceState(sw topology.SwitchID, entries []openflow.FlowEntry, ports []uint32, meters []openflow.MeterConfig, seq uint64, force bool) (cap capture, changed, rejectedStale bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, seen := s.tables[sw]
	if seen && seq < s.seq[sw] && !force {
		// Stale full-state reply: a late resync answer computed before
		// events we have already folded in. Applying it would roll the
		// switch back in time (and the rolled-back sequence number would
		// manufacture a gap out of the very next in-order event).
		return s.captureLocked(sw), false, true
	}
	// nil ports and nil meters both mean "this reply carries no such
	// section — keep the stored state". Treating nil meters as "wipe" made
	// every table-only resync (replaceTable) both delete the switch's meter
	// state and spuriously count as changed, bumping the snapshot id and
	// invalidating the compile cache on a byte-identical poll.
	changed = !seen ||
		!tablesEqual(s.tables[sw], entries) ||
		(ports != nil && !portsEqual(s.ports[sw], ports)) ||
		(meters != nil && !metersEqual(s.meters[sw], meters))
	s.seq[sw] = seq
	if !changed {
		return s.captureLocked(sw), false, false
	}
	// Rule-delta extraction against the outgoing state: a first-ever
	// snapshot or a port-set change (which alters flood expansion for the
	// whole table) widens to the full header space.
	switch {
	case !seen || (ports != nil && !portsEqual(s.ports[sw], ports)):
		s.accumulateDeltaLocked(sw, headerspace.Delta{Space: headerspace.FullSpace(wire.HeaderWidth)})
	default:
		s.accumulateDeltaLocked(sw, tableDelta(s.tables[sw], entries, s.deltaCap))
	}
	s.tables[sw] = append([]openflow.FlowEntry(nil), entries...)
	if ports != nil {
		s.ports[sw] = append([]uint32(nil), ports...)
	}
	if meters != nil {
		s.meters[sw] = append([]openflow.MeterConfig(nil), meters...)
	}
	s.bumpLocked(sw)
	return s.captureLocked(sw), true, false
}

// tablesEqual compares two flow tables entry-wise (order-sensitive: polls
// report tables in stable order, and a false mismatch merely costs one
// recompile).
func tablesEqual(a, b []openflow.FlowEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameEntry(a[i], b[i]) {
			return false
		}
	}
	return true
}

func portsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func metersEqual(a, b []openflow.MeterConfig) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// markUnreachable wipes one switch's forwarding state after its control
// session is lost: with no live channel the controller cannot vouch for any
// of the switch's rules, so standing invariants must re-verify against a
// network where the switch forwards nothing (degraded verdicts, not
// stale-green ones). The event sequence is kept — late replies computed by
// the dead process stay rejected as stale — and the reattach path re-bases
// with a forced resync instead.
func (s *snapshotStore) markUnreachable(sw topology.SwitchID) (cap capture, changed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, seen := s.tables[sw]; !seen {
		return s.captureLocked(sw), false
	}
	if len(s.tables[sw]) == 0 && len(s.meters[sw]) == 0 {
		return s.captureLocked(sw), false
	}
	s.accumulateDeltaLocked(sw, headerspace.Delta{Space: headerspace.FullSpace(wire.HeaderWidth)})
	s.tables[sw] = []openflow.FlowEntry{}
	s.meters[sw] = []openflow.MeterConfig{}
	s.bumpLocked(sw)
	return s.captureLocked(sw), true
}

// metersOf returns a copy of a switch's polled meter table.
func (s *snapshotStore) metersOf(sw topology.SwitchID) []openflow.MeterConfig {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]openflow.MeterConfig(nil), s.meters[sw]...)
}

// applyEvent folds one flow-monitor event into the table. ok is false when
// the event is not the next in sequence: stale marks events already
// superseded by a newer full snapshot (dropped silently), !stale marks a
// forward gap (lost events), signalling the caller to resync. On success
// the capture pairs the new snapshot id with the tables as of this event.
func (s *snapshotStore) applyEvent(sw topology.SwitchID, ev *openflow.FlowMonitorReply) (cap capture, ok, stale bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	last := s.seq[sw]
	if ev.Seq <= last {
		return capture{}, false, true
	}
	if ev.Seq != last+1 {
		return capture{}, false, false
	}
	s.seq[sw] = ev.Seq
	s.accumulateDeltaLocked(sw, eventDelta(s.tables[sw], ev, s.deltaCap))
	s.bumpLocked(sw)
	switch ev.Kind {
	case openflow.FlowEventAdded:
		s.tables[sw] = append(s.tables[sw], ev.Entry)
	case openflow.FlowEventRemoved:
		kept := s.tables[sw][:0]
		for _, e := range s.tables[sw] {
			if !sameEntry(e, ev.Entry) {
				kept = append(kept, e)
			}
		}
		s.tables[sw] = kept
	case openflow.FlowEventModified:
		replaced := false
		for i, e := range s.tables[sw] {
			if e.Priority == ev.Entry.Priority && sameMatch(e.Match, ev.Entry.Match) {
				s.tables[sw][i] = ev.Entry
				replaced = true
			}
		}
		if !replaced {
			s.tables[sw] = append(s.tables[sw], ev.Entry)
		}
	}
	return s.captureLocked(sw), true, false
}

// seqOf returns the last applied event sequence for one switch.
func (s *snapshotStore) seqOf(sw topology.SwitchID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq[sw]
}

func sameMatch(a, b openflow.Match) bool {
	if a.InPort != b.InPort || len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		if a.Fields[i] != b.Fields[i] {
			return false
		}
	}
	return true
}

// sameEntry is the single definition of "the same rule": every field that
// distinguishes two flow entries — including MeterID — is compared here, so
// applyEvent's entry matching and tablesEqual (and the rule-delta diff)
// can never disagree about rule identity.
func sameEntry(a, b openflow.FlowEntry) bool {
	if a.Priority != b.Priority || a.Cookie != b.Cookie || a.MeterID != b.MeterID || !sameMatch(a.Match, b.Match) {
		return false
	}
	if len(a.Actions) != len(b.Actions) {
		return false
	}
	for i := range a.Actions {
		if a.Actions[i] != b.Actions[i] {
			return false
		}
	}
	return true
}

// table returns a copy of one switch's entries.
func (s *snapshotStore) table(sw topology.SwitchID) []openflow.FlowEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]openflow.FlowEntry(nil), s.tables[sw]...)
}

// snapshotID returns the current configuration version.
func (s *snapshotStore) snapshotID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.id
}

// generations returns the current snapshot id together with a copy of the
// per-switch generation counters. The subscription engine diffs successive
// copies to compute the dirty set of an incremental re-verification pass.
func (s *snapshotStore) generations() (uint64, map[topology.SwitchID]uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gens := make(map[topology.SwitchID]uint64, len(s.gen))
	for sw, g := range s.gen {
		gens[sw] = g
	}
	return s.id, gens
}

// generationsAndDeltas is generations plus an atomic drain of the pending
// per-switch rule deltas: the returned deltas describe exactly the changes
// between the previous drain and the returned generation counters (both
// are read under one lock acquisition, so no change can fall between
// them). Ownership of the returned spaces transfers to the caller.
func (s *snapshotStore) generationsAndDeltas() (uint64, map[topology.SwitchID]uint64, map[topology.SwitchID]headerspace.Delta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gens := make(map[topology.SwitchID]uint64, len(s.gen))
	for sw, g := range s.gen {
		gens[sw] = g
	}
	deltas := s.deltas
	s.deltas = make(map[topology.SwitchID]headerspace.Delta)
	return s.id, gens, deltas
}

// compileStats returns a copy of the cache counters.
func (s *snapshotStore) compileStats() CompileStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// buildNetwork compiles the current snapshot plus the wiring plan into a
// header-space network for logical verification (§IV-A2). Port numbering:
// headerspace.PortID == physical port number, headerspace.NodeID == switch
// id.
//
// The result is cached: a query against an unchanged snapshot returns the
// previously compiled network without touching a single flow entry, and
// after an incremental change only the switches whose generation advanced
// are recompiled. The returned network is immutable — callers must treat it
// as read-only (headerspace.Network is safe for concurrent readers).
func (s *snapshotStore) buildNetwork(topo *topology.Topology) *headerspace.Network {
	type compileJob struct {
		id      topology.SwitchID
		gen     uint64
		entries []openflow.FlowEntry
		ports   []uint32
	}

	s.mu.Lock()
	if s.cachedFor != topo {
		// Topology changed identity (different deployment): every cached
		// compilation is for the wrong wiring plan.
		s.compiled = make(map[topology.SwitchID]compiledSwitch)
		s.cachedNet = nil
		s.cachedFor = topo
	}
	if s.cachedNet != nil && s.cachedID == s.id {
		s.stats.NetworkHits++
		net := s.cachedNet
		s.mu.Unlock()
		return net
	}
	s.stats.NetworkBuilds++
	builtID := s.id
	reuse := make(map[topology.SwitchID]*headerspace.TransferFunction)
	var jobs []compileJob
	for _, sw := range topo.Switches() {
		if cs, ok := s.compiled[sw]; ok && cs.gen == s.gen[sw] {
			s.stats.SwitchReuses++
			reuse[sw] = cs.tf
			continue
		}
		s.stats.SwitchCompiles++
		ports := s.ports[sw]
		if ports == nil {
			for p := topology.PortNo(1); p <= topo.PortCount(sw); p++ {
				ports = append(ports, uint32(p))
			}
		}
		jobs = append(jobs, compileJob{
			id:      sw,
			gen:     s.gen[sw],
			entries: append([]openflow.FlowEntry(nil), s.tables[sw]...),
			ports:   ports,
		})
	}
	s.mu.Unlock()

	// Compile outside the lock so the monitor ingestion path is never
	// blocked behind rule compilation.
	fresh := make(map[topology.SwitchID]compiledSwitch, len(jobs))
	for _, j := range jobs {
		fresh[j.id] = compiledSwitch{gen: j.gen, tf: openflow.BuildTransferFunction(j.entries, j.ports)}
	}

	net := headerspace.NewNetwork(wire.HeaderWidth)
	for sw, tf := range reuse {
		// Width is fixed by construction; AddNode cannot fail.
		_ = net.AddNode(headerspace.NodeID(sw), tf)
	}
	for sw, cs := range fresh {
		_ = net.AddNode(headerspace.NodeID(sw), cs.tf)
	}
	for _, l := range topo.Links() {
		net.AddDuplex(
			headerspace.NodeID(l.A.Switch), headerspace.PortID(l.A.Port),
			headerspace.NodeID(l.B.Switch), headerspace.PortID(l.B.Port),
		)
	}

	s.mu.Lock()
	if s.cachedFor == topo {
		// Publish per-switch compilations tagged with the generation they
		// were read at: if a switch changed while we compiled, its stored
		// gen is stale and the next build recompiles it.
		for sw, cs := range fresh {
			if cur, ok := s.compiled[sw]; !ok || cur.gen <= cs.gen {
				s.compiled[sw] = cs
			}
		}
		// Only publish the assembled network if nothing changed mid-build;
		// otherwise the next query rebuilds (cheaply, from cached TFs).
		if builtID == s.id {
			s.cachedNet = net
			s.cachedID = builtID
		}
	}
	s.mu.Unlock()
	return net
}
