package rvaas_test

import (
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

// buildFederation wires two providers A and B: traffic leaving A at a
// dedicated peering port enters B at a dedicated peering port (paper §IV-C:
// "queries may not be limited to a single provider but may recursively span
// consecutive networks along a route").
func buildFederation(t *testing.T) (*deploy.Deployment, *deploy.Deployment, topology.AccessPoint, topology.AccessPoint) {
	t.Helper()
	topoA, err := topology.MultiRegionWAN([]topology.Region{"a-north", "a-south"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	topoB, err := topology.MultiRegionWAN([]topology.Region{"b-east", "b-west"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	dA, err := deploy.New(topoA, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dA.Close)
	dB, err := deploy.New(topoB, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dB.Close)

	// Pick free edge ports as the peering interfaces.
	egressA := freePort(t, topoA)
	entryB := freePort(t, topoB)

	// The destination host lives in provider B.
	dstB := topoB.AccessPoints()[len(topoB.AccessPoints())-1]
	srcA := topoA.AccessPoints()[0]

	// Provider A routes the B-destined prefix toward its peering port.
	for _, sw := range topoA.Switches() {
		var out topology.PortNo
		if sw == egressA.Switch {
			out = egressA.Port
		} else {
			path := topoA.ShortestPath(sw, egressA.Switch)
			if path == nil || len(path) < 2 {
				continue
			}
			out = topoA.PortTowards(sw, path[1])
		}
		dA.Fabric.Switch(sw).InstallDirect(openflow.FlowEntry{
			Priority: 150,
			Match: openflow.Match{Fields: []openflow.FieldMatch{
				{Field: wire.FieldIPDst, Value: uint64(dstB.HostIP), Mask: 0xFFFFFFFF},
			}},
			Actions: []openflow.Action{openflow.Output(uint32(out))},
			Cookie:  0x9999,
		})
	}
	if err := dA.RVaaS.PollAll(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Register the peering on A's RVaaS.
	dA.RVaaS.AddPeer("provider-b", egressA, dB.RVaaS, entryB)
	return dA, dB, srcA, dstB
}

func freePort(t *testing.T, topo *topology.Topology) topology.Endpoint {
	t.Helper()
	for _, sw := range topo.Switches() {
		for p := topology.PortNo(1); p <= topo.PortCount(sw); p++ {
			ep := topology.Endpoint{Switch: sw, Port: p}
			if topo.IsInternal(ep) {
				continue
			}
			if _, used := topo.AccessPointAt(ep); used {
				continue
			}
			return ep
		}
	}
	t.Fatal("no free peering port")
	return topology.Endpoint{}
}

func TestFederatedGeoQuery(t *testing.T) {
	dA, _, srcA, dstB := buildFederation(t)
	agent := dA.Agent(srcA.ClientID)
	resp, err := agent.Query(wire.QueryGeoRegions, ipConstraint(dstB.HostIP), "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("status = %s (%s)", resp.Status, resp.Detail)
	}
	regions := map[string]bool{}
	for _, r := range resp.Regions {
		regions[r] = true
	}
	// Must include regions from provider A's traversal AND from provider
	// B's continuation.
	hasA, hasB := false, false
	for r := range regions {
		if r == "a-north" || r == "a-south" {
			hasA = true
		}
		if r == "b-east" || r == "b-west" {
			hasB = true
		}
	}
	if !hasA || !hasB {
		t.Errorf("federated regions missing a provider: %v", resp.Regions)
	}
}

func TestFederatedReachable(t *testing.T) {
	dA, dB, srcA, dstB := buildFederation(t)
	// Direct federation API: endpoints reachable from A's client port for
	// traffic destined to B.
	eps := dA.RVaaS.FederatedReachable(
		srcA.Endpoint,
		ipConstraint(dstB.HostIP),
	)
	if len(eps) == 0 {
		t.Fatal("no federated endpoints")
	}
	// The final endpoint must be the destination's access point inside B.
	want := dstB.Endpoint.String()
	found := false
	for _, e := range eps {
		if e == want {
			found = true
		}
	}
	if !found {
		t.Errorf("federated endpoints %v missing %s", eps, want)
	}
	_ = dB
}
