package rvaas_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/deploy"
	"repro/internal/topology"
	"repro/internal/wire"
)

func deployLinear(t *testing.T, n int, opt deploy.Options) *deploy.Deployment {
	t.Helper()
	topo, err := topology.Linear(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(topo, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func ipConstraint(ip uint32) []wire.FieldConstraint {
	return []wire.FieldConstraint{
		{Field: wire.FieldIPDst, Value: uint64(ip), Mask: 0xFFFFFFFF},
	}
}

func TestReachableDestinationsEndToEnd(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{})
	aps := d.Topology.AccessPoints()
	agent := d.Agent(1)

	resp, err := agent.Query(wire.QueryReachableDestinations, ipConstraint(aps[2].HostIP), "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Errorf("status = %s (%s)", resp.Status, resp.Detail)
	}
	// Exactly the destination access point should appear, authenticated.
	if len(resp.Endpoints) != 1 {
		t.Fatalf("endpoints = %+v", resp.Endpoints)
	}
	e := resp.Endpoints[0]
	if e.SwitchID != uint32(aps[2].Endpoint.Switch) || e.Port != uint32(aps[2].Endpoint.Port) {
		t.Errorf("endpoint = %+v, want %s", e, aps[2].Endpoint)
	}
	if !e.Authenticated {
		t.Error("endpoint did not authenticate in-band")
	}
	if resp.AuthRequested != 1 || resp.AuthReplied != 1 {
		t.Errorf("auth counters = %d/%d", resp.AuthReplied, resp.AuthRequested)
	}
}

func TestResponseCryptoIsVerified(t *testing.T) {
	d := deployLinear(t, 2, deploy.Options{})
	agent := d.Agent(1)
	// Agent.Query verifies signature + attestation internally; a successful
	// query therefore proves the crypto path. Additionally check the stats.
	if _, err := agent.Query(wire.QueryTransferFunction, nil, ""); err != nil {
		t.Fatal(err)
	}
	if d.RVaaS.Stats().ResponsesSigned == 0 {
		t.Error("no responses signed")
	}
}

// TestFigure12MessageFlow reproduces the exact message sequence of the
// paper's Figures 1 and 2: (1) integrity request packet, (2) OpenFlow
// Packet-In, (3) OpenFlow Packet-Out auth requests toward relevant clients,
// (4) auth reply packets, intercepted again as Packet-Ins, and finally the
// signed integrity reply delivered to the requester.
func TestFigure12MessageFlow(t *testing.T) {
	topo, err := topology.Linear(4, []uint64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(topo, deploy.Options{TenantRouting: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	agent := d.Agent(1)

	before := d.RVaaS.Stats()
	resp, err := agent.Query(wire.QueryIsolation, ipConstraint(topo.AccessPoints()[0].HostIP), "")
	if err != nil {
		t.Fatal(err)
	}
	after := d.RVaaS.Stats()

	// Fig. 1 step 2: the integrity request arrived as a Packet-In.
	if after.PacketIns <= before.PacketIns {
		t.Error("no packet-in recorded for the integrity request")
	}
	// Fig. 1 step 3/4: auth requests dispatched to the relevant clients
	// (the three partner access points of client 1).
	if got := after.AuthRequested - before.AuthRequested; got != 3 {
		t.Errorf("auth requests = %d, want 3", got)
	}
	// Fig. 2: all auth replies collected and the signed reply delivered.
	if got := after.AuthReceived - before.AuthReceived; got != 3 {
		t.Errorf("auth replies = %d, want 3", got)
	}
	if resp.Status != wire.StatusOK {
		t.Errorf("isolation status = %s (%s)", resp.Status, resp.Detail)
	}
	if resp.AuthRequested != 3 || resp.AuthReplied != 3 {
		t.Errorf("response auth counters = %d/%d", resp.AuthReplied, resp.AuthRequested)
	}
	for _, e := range resp.Endpoints {
		if !e.Authenticated {
			t.Errorf("endpoint %+v not authenticated", e)
		}
	}
}

func TestIsolationDetectsJoinAttack(t *testing.T) {
	topo, err := topology.Linear(4, []uint64{1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(topo, deploy.Options{TenantRouting: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	aps := topo.AccessPoints()
	victim := aps[0] // client 1 on switch 1
	agent := d.Agent(1)

	// Clean network: isolation holds.
	resp, err := agent.Query(wire.QueryIsolation, ipConstraint(victim.HostIP), "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("clean isolation = %s (%s)", resp.Status, resp.Detail)
	}

	// The compromised controller secretly grants client 2's port (an
	// endpoint NOT owned by client 1) access to client 1's network — a join
	// attack.
	atk := &controlplane.JoinAttack{
		VictimIP:   victim.HostIP,
		SecretAP:   aps[2].Endpoint,
		AttackerIP: wire.IPv4(172, 16, 6, 6),
	}
	if err := atk.Launch(d.Provider); err != nil {
		t.Fatal(err)
	}
	// Force a deterministic snapshot sync before querying.
	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}
	resp, err = agent.Query(wire.QueryIsolation, ipConstraint(victim.HostIP), "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusViolation {
		t.Fatalf("join attack not detected: %s (%s)", resp.Status, resp.Detail)
	}
	if !strings.Contains(resp.Detail, "isolation broken") {
		t.Errorf("detail = %q", resp.Detail)
	}

	// Revert: isolation holds again.
	if err := atk.Revert(d.Provider); err != nil {
		t.Fatal(err)
	}
	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}
	resp, err = agent.Query(wire.QueryIsolation, ipConstraint(victim.HostIP), "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Errorf("post-revert isolation = %s (%s)", resp.Status, resp.Detail)
	}
}

func TestReachableDetectsExfiltration(t *testing.T) {
	topo, err := topology.Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(topo, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	aps := topo.AccessPoints()
	sender, victim := aps[0], aps[3]
	agent := d.Agent(sender.ClientID)

	countEndpoints := func() (total, unregistered int) {
		resp, err := agent.Query(wire.QueryReachableDestinations, ipConstraint(victim.HostIP), "")
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range resp.Endpoints {
			if e.Detail == "unregistered-port" {
				unregistered++
			}
		}
		return len(resp.Endpoints), unregistered
	}
	total, unreg := countEndpoints()
	if total != 1 || unreg != 0 {
		t.Fatalf("clean network: %d endpoints (%d unregistered)", total, unreg)
	}

	// Find a free edge port on the victim's switch for the tap.
	var tap topology.Endpoint
	for p := topology.PortNo(1); p <= topo.PortCount(victim.Endpoint.Switch); p++ {
		ep := topology.Endpoint{Switch: victim.Endpoint.Switch, Port: p}
		if !topo.IsInternal(ep) {
			if _, used := topo.AccessPointAt(ep); !used {
				tap = ep
				break
			}
		}
	}
	if tap == (topology.Endpoint{}) {
		t.Fatal("no free tap port")
	}
	atk := &controlplane.Exfiltration{VictimIP: victim.HostIP, Tap: tap}
	if err := atk.Launch(d.Provider); err != nil {
		t.Fatal(err)
	}
	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}
	total, unreg = countEndpoints()
	if total != 2 || unreg != 1 {
		t.Errorf("exfiltration not visible: %d endpoints (%d unregistered)", total, unreg)
	}
}

func TestGeoQueryAndViolation(t *testing.T) {
	regions := []topology.Region{"eu-west", "offshore", "us-east"}
	topo, err := topology.MultiRegionWAN(regions, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(topo, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	aps := topo.AccessPoints()
	var src, dst topology.AccessPoint
	for _, ap := range aps {
		switch topo.RegionOf(ap.Endpoint.Switch) {
		case "eu-west":
			src = ap
		case "us-east":
			dst = ap
		}
	}
	agent := d.Agent(src.ClientID)

	query := func() *wire.QueryResponse {
		resp, err := agent.Query(wire.QueryGeoRegions, ipConstraint(dst.HostIP), "offshore")
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := query()
	if resp.Status != wire.StatusOK {
		t.Fatalf("clean geo = %s (%s), regions %v", resp.Status, resp.Detail, resp.Regions)
	}
	for _, r := range resp.Regions {
		if r == "offshore" {
			t.Fatalf("clean route already offshore: %v", resp.Regions)
		}
	}

	var offshoreSw topology.SwitchID
	for _, sw := range topo.Switches() {
		if topo.RegionOf(sw) == "offshore" {
			offshoreSw = sw
			break
		}
	}
	atk := &controlplane.GeoViolation{SrcIP: src.HostIP, DstIP: dst.HostIP, Via: offshoreSw}
	if err := atk.Launch(d.Provider); err != nil {
		t.Fatal(err)
	}
	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}
	resp = query()
	if resp.Status != wire.StatusViolation {
		t.Errorf("geo violation not detected: %s regions=%v", resp.Status, resp.Regions)
	}
}

func TestWaypointAvoidance(t *testing.T) {
	regions := []topology.Region{"eu-west", "offshore", "us-east"}
	topo, err := topology.MultiRegionWAN(regions, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(topo, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	aps := topo.AccessPoints()
	var src, dst topology.AccessPoint
	for _, ap := range aps {
		switch topo.RegionOf(ap.Endpoint.Switch) {
		case "eu-west":
			src = ap
		case "us-east":
			dst = ap
		}
	}
	agent := d.Agent(src.ClientID)
	resp, err := agent.Query(wire.QueryWaypointAvoidance, ipConstraint(dst.HostIP), "offshore")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Errorf("clean avoidance = %s (%s)", resp.Status, resp.Detail)
	}
}

func TestNeutralityViolationDetected(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{})
	aps := d.Topology.AccessPoints()
	victim := aps[2]
	agent := d.Agent(1)

	constraints := append(ipConstraint(victim.HostIP),
		wire.FieldConstraint{Field: wire.FieldIPProto, Value: uint64(wire.IPProtoUDP), Mask: 0xFF},
		wire.FieldConstraint{Field: wire.FieldL4Dst, Value: 443, Mask: 0xFFFF},
	)
	resp, err := agent.Query(wire.QueryNeutrality, constraints, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("clean neutrality = %s (%s)", resp.Status, resp.Detail)
	}

	atk := &controlplane.NeutralityViolation{VictimIP: victim.HostIP, L4Dst: 443}
	if err := atk.Launch(d.Provider); err != nil {
		t.Fatal(err)
	}
	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}
	resp, err = agent.Query(wire.QueryNeutrality, constraints, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusViolation {
		t.Errorf("neutrality violation not detected: %s (%s)", resp.Status, resp.Detail)
	}
}

// TestNeutralityMeterThrottleDetected covers the covert variant: the class
// is still delivered (reachability unchanged) but a class-specific meter
// starves it. Only the meter-table inspection exposes it (§IV-C).
func TestNeutralityMeterThrottleDetected(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{})
	aps := d.Topology.AccessPoints()
	victim := aps[2]
	agent := d.Agent(1)
	constraints := append(ipConstraint(victim.HostIP),
		wire.FieldConstraint{Field: wire.FieldIPProto, Value: uint64(wire.IPProtoUDP), Mask: 0xFF},
		wire.FieldConstraint{Field: wire.FieldL4Dst, Value: 443, Mask: 0xFFFF},
	)
	resp, err := agent.Query(wire.QueryNeutrality, constraints, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("clean: %s (%s)", resp.Status, resp.Detail)
	}

	atk := &controlplane.MeterThrottle{VictimIP: victim.HostIP, L4Dst: 443, RateKbps: 8}
	if err := atk.Launch(d.Provider); err != nil {
		t.Fatal(err)
	}
	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}
	resp, err = agent.Query(wire.QueryNeutrality, constraints, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusViolation {
		t.Fatalf("meter throttle not detected: %s (%s)", resp.Status, resp.Detail)
	}
	if !strings.Contains(resp.Detail, "meter") {
		t.Errorf("detail should name the meter: %q", resp.Detail)
	}

	// Revert restores neutrality.
	if err := atk.Revert(d.Provider); err != nil {
		t.Fatal(err)
	}
	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}
	resp, err = agent.Query(wire.QueryNeutrality, constraints, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Errorf("post-revert: %s (%s)", resp.Status, resp.Detail)
	}
}

func TestPathLengthQuery(t *testing.T) {
	d := deployLinear(t, 5, deploy.Options{})
	aps := d.Topology.AccessPoints()
	agent := d.Agent(1)
	// Path from switch 1 to switch 5 traverses 5 switches.
	resp, err := agent.Query(wire.QueryPathLength, ipConstraint(aps[4].HostIP), "5")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Errorf("within bound: %s (%s)", resp.Status, resp.Detail)
	}
	resp, err = agent.Query(wire.QueryPathLength, ipConstraint(aps[4].HostIP), "3")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusViolation {
		t.Errorf("beyond bound: %s (%s)", resp.Status, resp.Detail)
	}
}

func TestTransferFunctionQuery(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{})
	agent := d.Agent(1)
	resp, err := agent.Query(wire.QueryTransferFunction, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK || len(resp.Endpoints) == 0 {
		t.Errorf("transfer function: %s, %d endpoints", resp.Status, len(resp.Endpoints))
	}
}

func TestPassiveMonitoringTracksChanges(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{})
	before := d.RVaaS.SnapshotID()
	// Provider reprograms the network; monitor events must update RVaaS.
	d.Provider.UninstallDestination(d.Topology.AccessPoints()[2].HostIP)
	waitUntil(t, time.Second, func() bool { return d.RVaaS.SnapshotID() > before })
	if got := d.RVaaS.Stats().PassiveEvents; got == 0 {
		t.Error("no passive events recorded")
	}
}

func TestSelfRuleTamperDetection(t *testing.T) {
	d := deployLinear(t, 2, deploy.Options{})
	if rep := d.RVaaS.CheckSelfRules(); !rep.Clean() {
		t.Fatalf("clean deployment reports tampering: %+v", rep)
	}
	// The compromised controller deletes RVaaS's query interception rule on
	// switch 1.
	sw := d.Fabric.Switch(1)
	for _, e := range sw.Table() {
		if e.Cookie&0x5AA5_0000_0000 == 0x5AA5_0000_0000 {
			sw.RemoveDirect(e)
			break
		}
	}
	waitUntil(t, time.Second, func() bool { return !d.RVaaS.CheckSelfRules().Clean() })
}

func TestFlapEvidenceViaPolling(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{})
	victim := d.Topology.AccessPoints()[2]
	flap := &controlplane.FlapAttack{Inner: &controlplane.NeutralityViolation{VictimIP: victim.HostIP, L4Dst: 443}}

	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := flap.Launch(d.Provider); err != nil {
		t.Fatal(err)
	}
	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := flap.Revert(d.Provider); err != nil {
		t.Fatal(err)
	}
	if err := d.RVaaS.PollAll(time.Second); err != nil {
		t.Fatal(err)
	}
	churn := d.RVaaS.FlapEvidence(0)
	found := false
	for _, c := range churn {
		if c.Entry.Cookie&0xBAD0_0000 == 0xBAD0_0000 {
			found = true
		}
	}
	if !found {
		t.Errorf("flap attack left no churn evidence (%d events)", len(churn))
	}
}

func TestProbeSweepConfirmsWiring(t *testing.T) {
	d := deployLinear(t, 4, deploy.Options{})
	issued := d.RVaaS.ProbeSweep()
	if issued != 6 { // 3 links x 2 directions
		t.Errorf("issued = %d probes, want 6", issued)
	}
	// Probe confirmations arrive asynchronously; give the fabric a moment.
	// WiringReport clears state, so it is called exactly once to judge.
	time.Sleep(50 * time.Millisecond)
	mismatches := d.RVaaS.WiringReport()
	if len(mismatches) != 0 {
		t.Errorf("wiring mismatches on healthy fabric: %+v", mismatches)
	}
}

func TestReachingSourcesListsPeers(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{})
	aps := d.Topology.AccessPoints()
	agent := d.Agent(1)
	resp, err := agent.Query(wire.QueryReachingSources, ipConstraint(aps[0].HostIP), "")
	if err != nil {
		t.Fatal(err)
	}
	// With destination-only routing, both other access points can reach
	// client 1 — and so can the two unwired chain-end ports (an attacker
	// plugging in there could spoof any source). RVaaS must report all
	// four; only the registered clients authenticate.
	var known, unregistered, authed int
	for _, e := range resp.Endpoints {
		if e.Detail == "unregistered-port" {
			unregistered++
		} else {
			known++
		}
		if e.Authenticated {
			authed++
		}
	}
	if known != 2 || unregistered != 2 || authed != 2 {
		t.Errorf("reaching sources: known=%d unregistered=%d authed=%d (%+v)",
			known, unregistered, authed, resp.Endpoints)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := deployLinear(t, 2, deploy.Options{})
	agent := d.Agent(1)
	if _, err := agent.Query(wire.QueryTransferFunction, nil, ""); err != nil {
		t.Fatal(err)
	}
	st := d.RVaaS.Stats()
	if st.QueriesServed == 0 || st.PacketIns == 0 || st.ResponsesSigned == 0 {
		t.Errorf("stats: %+v", st)
	}
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !cond() {
		t.Fatal("condition not met before timeout")
	}
}
