package rvaas

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/history"
	"repro/internal/topology"
	"repro/internal/verifier"
)

// This file is the operator-plane read surface over the controller: the
// per-shard engine snapshots, session grouping, verdict history and forced
// resync the internal/rvaas/admin service layers its HTTP API on. Read
// paths never take the engine's run lock — they use the per-shard mutexes
// and atomic counters only, so an operator paging through 10^5 standing
// invariants cannot stall a re-verification pass.

// ShardInfo is a point-in-time snapshot of one subscription-engine shard
// and its slice of the inverted footprint index, summed across the
// verifier fleet (same-numbered shards on different instances merge).
type ShardInfo = verifier.ShardInfo

// ShardStats snapshots every engine shard. Each shard is locked briefly and
// independently; no global engine lock is taken, so the view across shards
// is not a single atomic cut — which is exactly the tradeoff an operator
// dashboard wants against a live engine.
func (c *Controller) ShardStats() []ShardInfo {
	return c.fleet.ShardStats()
}

// VerifierStats snapshots each verifier-fleet instance: active/violated
// counts, index geometry and per-instance evaluation counters. Instances
// are reported in fleet order.
func (c *Controller) VerifierStats() []verifier.InstanceStats {
	return c.fleet.InstanceStats()
}

// VerifierFleetInfo reports the fleet geometry (instance count, placement
// policy name).
func (c *Controller) VerifierFleetInfo() (instances int, placement string) {
	return c.fleet.Size(), c.fleet.GetPlacement().String()
}

// RebalanceVerifiers re-places every standing invariant under the current
// placement policy and migrates the ones whose owner changed, returning
// the number moved. Operators trigger it after switching placement policy
// at runtime; it takes every instance's run lock, so it briefly pauses
// re-verification.
func (c *Controller) RebalanceVerifiers() int { return c.fleet.Rebalance() }

// SetVerifierPlacement switches the fleet's placement policy at runtime
// (new registrations only — call RebalanceVerifiers to migrate the
// standing set).
func (c *Controller) SetVerifierPlacement(policy string) error {
	p, err := verifier.ParsePlacement(policy)
	if err != nil {
		return err
	}
	c.fleet.SetPlacement(p)
	return nil
}

// ClientSessionInfo summarizes one client session: the protocol-v2 envelope
// session its subscriptions were registered under (SessionID 0 groups v1 and
// in-process registrations).
type ClientSessionInfo struct {
	SessionID     uint64
	ClientID      uint64
	Protocol      uint8
	Subscriptions int
	Violated      int
}

// ClientSessions groups the standing invariants by (client, session),
// ordered by client then session. Built from per-shard snapshots only.
func (c *Controller) ClientSessions() []ClientSessionInfo {
	type key struct {
		client, session uint64
	}
	acc := make(map[key]*ClientSessionInfo)
	for _, st := range c.fleet.List() {
		k := key{client: st.ClientID, session: st.SessionID}
		info := acc[k]
		if info == nil {
			info = &ClientSessionInfo{SessionID: st.SessionID, ClientID: st.ClientID, Protocol: st.Proto}
			acc[k] = info
		}
		info.Subscriptions++
		if st.Violated {
			info.Violated++
		}
	}
	out := make([]ClientSessionInfo, 0, len(acc))
	for _, info := range acc {
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ClientID != out[j].ClientID {
			return out[i].ClientID < out[j].ClientID
		}
		return out[i].SessionID < out[j].SessionID
	})
	return out
}

// Switch control-session states as reported by SwitchSessions.
const (
	// SwitchAttached: a live secure channel, snapshot in sync.
	SwitchAttached = "attached"
	// SwitchResyncing: attached with an in-flight forced/gap resync.
	SwitchResyncing = "resyncing"
	// SwitchDetached: the switch held a session that was lost (process
	// death, heartbeat silence); its snapshot state is wiped and standing
	// invariants over it report degraded verdicts until it re-attaches.
	SwitchDetached = "detached"
	// SwitchPending: the switch has never attached (bring-up still in
	// progress, or an external process that has not joined yet).
	SwitchPending = "pending"
)

// SwitchSessionInfo describes one topology switch's control session state.
type SwitchSessionInfo struct {
	Switch topology.SwitchID
	// PeerName is the authenticated certificate name of the switch end
	// ("" unless attached).
	PeerName string
	// State is one of the Switch* state constants above.
	State string
	// Resyncing reports an in-flight forced/gap resync for the switch.
	Resyncing bool
}

// Attached reports whether the switch currently holds a live session.
func (s SwitchSessionInfo) Attached() bool {
	return s.State == SwitchAttached || s.State == SwitchResyncing
}

// SwitchSessions lists every topology switch's control-session state in
// switch order — attached sessions with their authenticated peer, plus the
// detached/pending remainder, so an operator sees losses instead of a
// silently shrinking list.
func (c *Controller) SwitchSessions() []SwitchSessionInfo {
	switches := c.topo.Switches()
	out := make([]SwitchSessionInfo, 0, len(switches))
	c.mu.Lock()
	for _, sw := range switches {
		info := SwitchSessionInfo{Switch: sw}
		if sess, ok := c.sessions[sw]; ok {
			info.PeerName = sess.conn.PeerName()
			info.Resyncing = c.resyncing[sw]
			if info.Resyncing {
				info.State = SwitchResyncing
			} else {
				info.State = SwitchAttached
			}
		} else if c.wasAttached[sw] {
			info.State = SwitchDetached
		} else {
			info.State = SwitchPending
		}
		out = append(out, info)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Switch < out[j].Switch })
	return out
}

// ForceResync error kinds, distinguishable so the admin layer can map a
// missing switch (404) apart from a known-but-detached one (409).
var (
	ErrUnknownSwitch = errors.New("switch is not in the topology")
	ErrNotAttached   = errors.New("switch is not attached")
)

// ForceResync re-bases one switch's snapshot on its authoritative state
// (operator-initiated; the same path as automatic sequence-regression
// recovery). The resync runs asynchronously; an already-running resync for
// the switch is not duplicated.
func (c *Controller) ForceResync(sw topology.SwitchID) error {
	if c.topo.PortCount(sw) == 0 {
		return fmt.Errorf("rvaas: switch %d: %w", sw, ErrUnknownSwitch)
	}
	c.mu.Lock()
	_, attached := c.sessions[sw]
	c.mu.Unlock()
	if !attached {
		return fmt.Errorf("rvaas: switch %d: %w", sw, ErrNotAttached)
	}
	c.forceResync(sw)
	return nil
}

// SubscriptionHistory returns the retained verdict transitions of one
// subscription in append order, and whether the subscription is currently
// registered (history outlives unsubscription until the ring evicts it).
func (c *Controller) SubscriptionHistory(id uint64) ([]history.Violation, bool) {
	_, live := c.fleet.View(id)
	return c.vlog.PerSub(id), live
}
