package rvaas

import (
	"sort"
	"sync"
	"time"

	"repro/internal/history"
	"repro/internal/openflow"
	"repro/internal/topology"
)

// handleMonitorEvent applies one passive flow-monitor event. Sequence gaps
// (lost events) force a full resync of that switch — RVaaS "needs to ensure
// that it receives all the relevant updates from the switches" (§IV-A).
func (c *Controller) handleMonitorEvent(sw topology.SwitchID, ev *openflow.FlowMonitorReply) {
	c.mu.Lock()
	c.stats.PassiveEvents++
	c.mu.Unlock()
	if cap, ok := c.snap.applyEvent(sw, ev); ok {
		c.recordHistory(history.SourcePassive, cap)
		return
	}
	c.mu.Lock()
	c.stats.Resyncs++
	c.mu.Unlock()
	// Resync asynchronously: pollSwitch waits for a reply that arrives on
	// the very read loop this handler runs in, so it must not block here.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		_ = c.pollSwitch(sw, 2*time.Second)
	}()
}

// applyStats installs a full-state snapshot for one switch.
func (c *Controller) applyStats(sw topology.SwitchID, m *openflow.StatsReply, src history.Source) {
	cap := c.snap.replaceState(sw, m.Entries, m.Ports, m.Meters, m.TableSeq)
	c.recordHistory(src, cap)
}

// recordHistory appends one applied change to the history ring. The capture
// was taken atomically with the mutation, so concurrent appliers (parallel
// polls, passive events) each record the id/tables pair of exactly their
// own change — no ids are duplicated or skipped.
func (c *Controller) recordHistory(src history.Source, cap capture) {
	c.hist.Append(history.Record{
		At:         c.cfg.Clock(),
		SnapshotID: cap.id,
		Source:     src,
		Tables:     cap.tables,
	})
}

// pollSwitch actively fetches one switch's full state and waits for it.
func (c *Controller) pollSwitch(sw topology.SwitchID, timeout time.Duration) error {
	xid := c.xid()
	reply, err := c.request(sw, &openflow.StatsRequest{XID: xid}, xid, timeout)
	if err != nil {
		return err
	}
	stats, ok := reply.(*openflow.StatsReply)
	if !ok {
		return errUnexpectedReply
	}
	c.applyStats(sw, stats, history.SourceActivePoll)
	return nil
}

var errUnexpectedReply = errTyped("rvaas: unexpected reply type")

type errTyped string

func (e errTyped) Error() string { return string(e) }

// PollAll actively polls every attached switch and waits for all replies
// (the paper's "proactively query the switches for their current
// configuration"). The polls run concurrently — each is an independent
// request/reply on its own switch session, so the wall-clock cost is the
// slowest switch, not the sum. It returns the first error encountered (in
// switch order) but polls every switch regardless.
func (c *Controller) PollAll(timeout time.Duration) error {
	c.mu.Lock()
	c.stats.ActivePolls++
	switches := make([]topology.SwitchID, 0, len(c.sessions))
	for sw := range c.sessions {
		switches = append(switches, sw)
	}
	c.mu.Unlock()
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	errs := make([]error, len(switches))
	var wg sync.WaitGroup
	wg.Add(len(switches))
	for i, sw := range switches {
		go func(i int, sw topology.SwitchID) {
			defer wg.Done()
			errs[i] = c.pollSwitch(sw, timeout)
		}(i, sw)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TamperReport lists switches whose RVaaS interception rules are missing
// from the current snapshot — evidence that the provider's controller
// removed them.
type TamperReport struct {
	MissingOn []topology.SwitchID
}

// Clean reports whether all interception rules are intact.
func (r TamperReport) Clean() bool { return len(r.MissingOn) == 0 }

// CheckSelfRules verifies RVaaS's own interception rules are still present
// in the latest snapshot of every attached switch.
func (c *Controller) CheckSelfRules() TamperReport {
	c.mu.Lock()
	switches := make([]topology.SwitchID, 0, len(c.sessions))
	for sw := range c.sessions {
		switches = append(switches, sw)
	}
	c.mu.Unlock()
	want := len(c.interceptionRules())
	var rep TamperReport
	for _, sw := range switches {
		found := 0
		for _, e := range c.snap.table(sw) {
			if e.Cookie&CookieRVaaS == CookieRVaaS {
				found++
			}
		}
		if found < want {
			rep.MissingOn = append(rep.MissingOn, sw)
		}
	}
	return rep
}

// FlapEvidence scans the retained history for rules that appeared and
// disappeared within maxLifetime — the fingerprint of a short-term
// reconfiguration attack (§IV-A).
func (c *Controller) FlapEvidence(maxLifetime time.Duration) []history.Churn {
	return c.hist.ChurnEvents(maxLifetime)
}
