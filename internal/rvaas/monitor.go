package rvaas

import (
	"sort"
	"sync"
	"time"

	"repro/internal/history"
	"repro/internal/openflow"
	"repro/internal/topology"
)

// Monitoring self-healing thresholds.
const (
	// maxGapResyncAttempts bounds the catch-up loop after an event gap: a
	// lying switch advertising an inflated event sequence must not be able
	// to pin the controller in a poll loop.
	maxGapResyncAttempts = 3
	// staleEventResyncThreshold is the number of consecutive
	// already-superseded events after which the switch's sequence counter
	// is presumed to have regressed (restart) and a forced resync makes
	// the switch authoritative again. Legitimate stale events (overtaken
	// by one resync) come in short bursts.
	staleEventResyncThreshold = 8
	// stalePollForceThreshold is the number of consecutive rejected
	// full-state replies — with no applied events or accepted replies in
	// between — after which the reply is force-accepted: one rejection is
	// a late stray answer, two distinct polls both behind a silent store
	// mean the switch really regressed.
	stalePollForceThreshold = 2
)

// handleMonitorEvent applies one passive flow-monitor event. Sequence gaps
// (lost events) force a full resync of that switch — RVaaS "needs to ensure
// that it receives all the relevant updates from the switches" (§IV-A).
// Events already superseded by a newer full snapshot (a resync overtook
// them) are dropped silently: their effect is in the snapshot. A long run
// of "stale" events means the switch's counter regressed (restart) — then
// a forced resync re-bases on the switch's authoritative state.
func (c *Controller) handleMonitorEvent(sw topology.SwitchID, ev *openflow.FlowMonitorReply) {
	c.mu.Lock()
	c.stats.PassiveEvents++
	c.mu.Unlock()
	cap, ok, stale := c.snap.applyEvent(sw, ev)
	if ok {
		c.mu.Lock()
		c.staleEvents[sw] = 0
		// An applied event proves the event stream is live and in order:
		// any earlier rejected poll reply was a stray late answer, not
		// evidence of a sequence regression. Without this reset, two
		// rejected polls separated by healthy churn would force-accept a
		// rollback.
		c.stalePolls[sw] = 0
		c.mu.Unlock()
		c.recordHistory(history.SourcePassive, cap)
		return
	}
	if stale {
		c.mu.Lock()
		c.staleEvents[sw]++
		regressed := c.staleEvents[sw] >= staleEventResyncThreshold
		if regressed {
			c.staleEvents[sw] = 0
		}
		c.mu.Unlock()
		if regressed {
			c.forceResync(sw)
		}
		return
	}
	c.mu.Lock()
	c.staleEvents[sw] = 0
	c.mu.Unlock()
	c.noteGap(sw, ev.Seq)
}

// noteGap schedules a resync of one switch after a detected event gap. At
// most one resync loop runs per switch: concurrent gaps (e.g. the burst of
// events racing the initial sync at attach time) fold into the running
// loop, which re-polls (boundedly) until the snapshot has caught up with
// the highest event sequence seen. Without the dedup, every event behind a
// gap spawned its own poll, and the stale replies re-manufactured gaps ad
// infinitum.
func (c *Controller) noteGap(sw topology.SwitchID, seq uint64) {
	c.mu.Lock()
	if seq > c.evHigh[sw] {
		c.evHigh[sw] = seq
	}
	if c.resyncing[sw] {
		c.mu.Unlock()
		return
	}
	c.resyncing[sw] = true
	c.stats.Resyncs++
	c.mu.Unlock()
	// Resync asynchronously: pollSwitch waits for a reply that arrives on
	// the very read loop this handler runs in, so it must not block here.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for attempt := 0; ; attempt++ {
			err := c.pollSwitchMode(sw, 2*time.Second, false)
			c.mu.Lock()
			caughtUp := err == nil && c.snap.seqOf(sw) >= c.evHigh[sw]
			if caughtUp || err != nil || attempt >= maxGapResyncAttempts {
				if !caughtUp && err == nil {
					// The switch's authoritative TableSeq never reached
					// the advertised event sequence (forged or inflated
					// Seq): accept the switch's own counter instead of
					// hot-looping on an unreachable target.
					c.evHigh[sw] = c.snap.seqOf(sw)
				}
				c.resyncing[sw] = false
				c.mu.Unlock()
				return
			}
			c.stats.Resyncs++
			c.mu.Unlock()
		}
	}()
}

// forceResync re-bases one switch's snapshot on its authoritative state,
// bypassing staleness protection — used after repeated evidence of a
// sequence regression (switch restart).
func (c *Controller) forceResync(sw topology.SwitchID) {
	c.mu.Lock()
	if c.resyncing[sw] {
		c.mu.Unlock()
		return
	}
	c.resyncing[sw] = true
	c.stats.Resyncs++
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		_ = c.pollSwitchMode(sw, 2*time.Second, true)
		c.mu.Lock()
		c.evHigh[sw] = c.snap.seqOf(sw)
		c.resyncing[sw] = false
		c.mu.Unlock()
	}()
}

// applyStats installs a full-state snapshot for one switch. A resync that
// matches the stored state bit for bit records nothing: the snapshot id
// did not advance, so appending would duplicate history ids, and standing
// invariants have nothing to re-verify. A reply behind the store's
// sequence is rejected once as a stray late answer; repeated rejections
// mean the switch's counter regressed (restart) and the reply is
// force-accepted so the snapshot can never freeze on pre-restart state.
func (c *Controller) applyStats(sw topology.SwitchID, m *openflow.StatsReply, src history.Source, force bool) {
	// A StatsReply is a FULL state snapshot: it always carries the meter
	// section, so an absent slice here means "the switch has zero meters",
	// not "unknown". The wire codec decodes an empty section to nil —
	// without this normalization, replaceState's nil-means-keep rule
	// (which exists for table-only resyncs) would make a meter deletion
	// invisible to polls forever.
	meters := m.Meters
	if meters == nil {
		meters = []openflow.MeterConfig{}
	}
	cap, changed, rejected := c.snap.replaceState(sw, m.Entries, m.Ports, meters, m.TableSeq, force)
	if rejected {
		c.mu.Lock()
		c.stalePolls[sw]++
		regressed := c.stalePolls[sw] >= stalePollForceThreshold
		if regressed {
			c.stalePolls[sw] = 0
		}
		c.mu.Unlock()
		if !regressed {
			return
		}
		cap, changed, _ = c.snap.replaceState(sw, m.Entries, m.Ports, meters, m.TableSeq, true)
	} else {
		c.mu.Lock()
		c.stalePolls[sw] = 0
		c.mu.Unlock()
	}
	if changed {
		c.recordHistory(src, cap)
	}
}

// recordHistory appends one applied change to the history ring. The capture
// was taken atomically with the mutation, so concurrent appliers (parallel
// polls, passive events) each record the id/tables pair of exactly their
// own change — no ids are duplicated or skipped. Every applied change also
// nudges the subscription worker: standing invariants re-verify against
// the new snapshot instead of waiting for the client's next poll.
func (c *Controller) recordHistory(src history.Source, cap capture) {
	c.hist.Append(history.Record{
		At:         c.cfg.Clock(),
		SnapshotID: cap.id,
		Source:     src,
		Tables:     cap.tables,
	})
	c.tapCommittedEvent(src, cap)
	c.pokeSubscriptions()
}

// pollSwitch actively fetches one switch's full state and waits for it.
func (c *Controller) pollSwitch(sw topology.SwitchID, timeout time.Duration) error {
	return c.pollSwitchMode(sw, timeout, false)
}

// pollSwitchMode is pollSwitch with control over staleness forcing (used
// by forced resyncs after a detected sequence regression).
func (c *Controller) pollSwitchMode(sw topology.SwitchID, timeout time.Duration, force bool) error {
	xid := c.xid()
	reply, err := c.request(sw, &openflow.StatsRequest{XID: xid}, xid, timeout)
	if err != nil {
		return err
	}
	stats, ok := reply.(*openflow.StatsReply)
	if !ok {
		return errUnexpectedReply
	}
	c.applyStats(sw, stats, history.SourceActivePoll, force)
	return nil
}

var errUnexpectedReply = errTyped("rvaas: unexpected reply type")

type errTyped string

func (e errTyped) Error() string { return string(e) }

// PollAll actively polls every attached switch and waits for all replies
// (the paper's "proactively query the switches for their current
// configuration"). The polls run concurrently — each is an independent
// request/reply on its own switch session, so the wall-clock cost is the
// slowest switch, not the sum. It returns the first error encountered (in
// switch order) but polls every switch regardless.
func (c *Controller) PollAll(timeout time.Duration) error {
	c.mu.Lock()
	c.stats.ActivePolls++
	switches := make([]topology.SwitchID, 0, len(c.sessions))
	for sw := range c.sessions {
		switches = append(switches, sw)
	}
	c.mu.Unlock()
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	errs := make([]error, len(switches))
	var wg sync.WaitGroup
	wg.Add(len(switches))
	for i, sw := range switches {
		go func(i int, sw topology.SwitchID) {
			defer wg.Done()
			errs[i] = c.pollSwitch(sw, timeout)
		}(i, sw)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TamperReport lists switches whose RVaaS interception rules are missing
// from the current snapshot — evidence that the provider's controller
// removed them.
type TamperReport struct {
	MissingOn []topology.SwitchID
}

// Clean reports whether all interception rules are intact.
func (r TamperReport) Clean() bool { return len(r.MissingOn) == 0 }

// CheckSelfRules verifies RVaaS's own interception rules are still present
// in the latest snapshot of every attached switch.
func (c *Controller) CheckSelfRules() TamperReport {
	c.mu.Lock()
	switches := make([]topology.SwitchID, 0, len(c.sessions))
	for sw := range c.sessions {
		switches = append(switches, sw)
	}
	c.mu.Unlock()
	want := len(c.interceptionRules())
	var rep TamperReport
	for _, sw := range switches {
		found := 0
		for _, e := range c.snap.table(sw) {
			if e.Cookie&CookieRVaaS == CookieRVaaS {
				found++
			}
		}
		if found < want {
			rep.MissingOn = append(rep.MissingOn, sw)
		}
	}
	return rep
}

// FlapEvidence scans the retained history for rules that appeared and
// disappeared within maxLifetime — the fingerprint of a short-term
// reconfiguration attack (§IV-A).
func (c *Controller) FlapEvidence(maxLifetime time.Duration) []history.Churn {
	return c.hist.ChurnEvents(maxLifetime)
}
