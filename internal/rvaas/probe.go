package rvaas

import (
	"crypto/sha256"
	"encoding/binary"
	"time"

	"repro/internal/topology"
	"repro/internal/wire"
)

// Active wiring verification: RVaaS can "issue and later intercept LLDP
// like packets through all internal ports" (§IV-A1) to confirm the physical
// wiring plan matches reality. Probe payloads carry an HMAC derived from
// the enclave key so the (compromised) provider controller cannot forge
// plausible probes.

// probeMAC computes the authenticator for a probe payload.
func (c *Controller) probeMAC(pp *wire.ProbePayload) []byte {
	sig := c.enclave.Sign(append([]byte("probe."), pp.SigningBytes()...))
	sum := sha256.Sum256(sig)
	return sum[:16]
}

// ProbeSweep injects one probe out of every internal port and returns the
// number issued. Confirmations arrive asynchronously as Packet-Ins; call
// WiringReport afterwards (allowing a short delivery delay) to see the
// result.
func (c *Controller) ProbeSweep() int {
	issued := 0
	for _, l := range c.topo.Links() {
		for _, dir := range [][2]topology.Endpoint{{l.A, l.B}, {l.B, l.A}} {
			from, to := dir[0], dir[1]
			c.mu.Lock()
			c.probeNext++
			id := c.probeNext
			c.probeExpect[id] = to
			c.mu.Unlock()
			pp := &wire.ProbePayload{
				ProbeID:    id,
				SrcSwitch:  uint32(from.Switch),
				SrcPort:    uint32(from.Port),
				IssuedUnix: c.cfg.Clock().Unix(),
			}
			pp.MAC = c.probeMAC(pp)
			if err := c.sendPacketOut(from.Switch, from.Port, wire.NewProbePacket(pp)); err == nil {
				issued++
			}
		}
	}
	return issued
}

// handleProbe processes an intercepted probe frame: verify the MAC, then
// record at which (switch, port) it actually arrived.
func (c *Controller) handleProbe(sw topology.SwitchID, inPort topology.PortNo, pkt *wire.Packet) {
	pp, err := wire.UnmarshalProbePayload(pkt.Payload)
	if err != nil {
		return
	}
	want := c.probeMAC(&wire.ProbePayload{
		ProbeID:    pp.ProbeID,
		SrcSwitch:  pp.SrcSwitch,
		SrcPort:    pp.SrcPort,
		IssuedUnix: pp.IssuedUnix,
	})
	if !hmacEqual(want, pp.MAC) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, expected := c.probeExpect[pp.ProbeID]; !expected {
		return
	}
	c.probeConfirm[pp.ProbeID] = topology.Endpoint{Switch: sw, Port: inPort}
}

func hmacEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}

// WiringMismatch describes one probe that did not arrive where the wiring
// plan says it should.
type WiringMismatch struct {
	ProbeID  uint64
	Expected topology.Endpoint
	// Actual is the zero Endpoint when the probe was never seen.
	Actual topology.Endpoint
	Lost   bool
}

// WiringReport compares issued probes against confirmations and clears the
// probe state. Call after ProbeSweep (+ a settling delay when the fabric is
// asynchronous).
func (c *Controller) WiringReport() []WiringMismatch {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []WiringMismatch
	for id, want := range c.probeExpect {
		got, seen := c.probeConfirm[id]
		switch {
		case !seen:
			out = append(out, WiringMismatch{ProbeID: id, Expected: want, Lost: true})
		case got != want:
			out = append(out, WiringMismatch{ProbeID: id, Expected: want, Actual: got})
		}
	}
	c.probeExpect = make(map[uint64]topology.Endpoint)
	c.probeConfirm = make(map[uint64]topology.Endpoint)
	return out
}

// binaryProbeKey is kept for potential probe dedup; unused fields silenced.
var _ = binary.BigEndian
var _ = time.Second
