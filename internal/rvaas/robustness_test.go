package rvaas_test

import (
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/openflow"
	"repro/internal/wire"
)

// TestProbeLossDetected: when the probe interception rule is removed from a
// switch (so probes into it vanish), the wiring report must flag the lost
// probes instead of staying silent.
func TestProbeLossDetected(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{SkipAgents: true})
	// Remove the probe interception rule from switch 2: probes arriving
	// there are no longer reported.
	sw := d.Fabric.Switch(2)
	for _, e := range sw.Table() {
		for _, f := range e.Match.Fields {
			if f.Field == wire.FieldEthType && f.Value == uint64(wire.EthTypeProbe) {
				sw.RemoveDirect(e)
			}
		}
	}
	issued := d.RVaaS.ProbeSweep()
	if issued != 4 { // 2 links x 2 directions
		t.Fatalf("issued = %d", issued)
	}
	time.Sleep(50 * time.Millisecond)
	mismatches := d.RVaaS.WiringReport()
	lost := 0
	for _, m := range mismatches {
		if m.Lost && m.Expected.Switch == 2 {
			lost++
		}
	}
	// Both probes toward switch 2 (from switch 1 and switch 3) are lost.
	if lost != 2 {
		t.Errorf("lost probes toward sw2 = %d (%+v)", lost, mismatches)
	}
}

// TestForgedProbeIgnored: a probe with a bad MAC (e.g. replayed/forged by
// the provider controller) must not confirm anything.
func TestForgedProbeIgnored(t *testing.T) {
	d := deployLinear(t, 2, deploy.Options{SkipAgents: true})
	issued := d.RVaaS.ProbeSweep()
	if issued == 0 {
		t.Fatal("no probes issued")
	}
	// Inject a forged probe claiming an absurd source.
	forged := wire.NewProbePacket(&wire.ProbePayload{
		ProbeID: 1, SrcSwitch: 99, SrcPort: 99, IssuedUnix: 0,
		MAC: []byte("not-a-real-mac--"),
	})
	d.Fabric.Switch(1).ProcessPacket(1, forged, 0)
	time.Sleep(50 * time.Millisecond)
	// The real probes confirm; the forgery must not have corrupted state.
	if mismatches := d.RVaaS.WiringReport(); len(mismatches) != 0 {
		t.Errorf("forged probe corrupted the report: %+v", mismatches)
	}
}

// TestMalformedQueryIgnored: garbage payloads on the magic port must not
// crash or wedge the controller.
func TestMalformedQueryIgnored(t *testing.T) {
	d := deployLinear(t, 2, deploy.Options{})
	src := d.Topology.AccessPoints()[0]
	garbage := &wire.Packet{
		EthDst: 0xFF, EthSrc: src.HostMAC, EthType: wire.EthTypeIPv4,
		IPSrc: src.HostIP, IPDst: wire.IPv4(10, 255, 255, 254),
		IPProto: wire.IPProtoUDP, TTL: 64, L4Src: 5000, L4Dst: wire.PortRVaaSQuery,
		Payload: []byte{0xDE, 0xAD},
	}
	if err := d.Fabric.InjectFromHost(src.Endpoint, garbage); err != nil {
		t.Fatal(err)
	}
	// The controller must still serve real queries afterwards.
	agent := d.Agent(1)
	if _, err := agent.Query(wire.QueryTransferFunction, nil, ""); err != nil {
		t.Fatalf("controller wedged after garbage: %v", err)
	}
}

// TestUnsupportedQueryKind: unknown kinds get a signed "unsupported"
// response rather than silence.
func TestUnsupportedQueryKind(t *testing.T) {
	d := deployLinear(t, 2, deploy.Options{})
	agent := d.Agent(1)
	resp, err := agent.Query(wire.QueryKind(99), nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusUnsupported {
		t.Errorf("status = %s", resp.Status)
	}
}

// TestAuthReplyFromUnregisteredClientIgnored: an attacker cannot satisfy an
// authentication round with an unregistered key.
func TestAuthReplyFromUnregisteredClientIgnored(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{})
	aps := d.Topology.AccessPoints()
	agent := d.Agent(1)

	// Detach the genuine destination agent so it cannot answer, then have
	// an attacker inject a bogus auth reply for the query nonce.
	d.Fabric.DetachHost(aps[2].Endpoint)
	respCh := make(chan *wire.QueryResponse, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := agent.Query(wire.QueryReachableDestinations, ipConstraint(aps[2].HostIP), "")
		respCh <- resp
		errCh <- err
	}()
	// The query succeeds after the auth timeout, with zero replies.
	resp := <-respCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if resp.AuthRequested != 1 || resp.AuthReplied != 0 {
		t.Errorf("auth counters = %d/%d, want 0/1", resp.AuthReplied, resp.AuthRequested)
	}
	for _, e := range resp.Endpoints {
		if e.Authenticated {
			t.Error("endpoint authenticated without its agent")
		}
	}
}

// TestDualControllerCoexistence: the provider's own controller session and
// RVaaS's session coexist on the same switch; provider flow-mods through
// its session are observed by RVaaS's monitor.
func TestDualControllerCoexistence(t *testing.T) {
	d := deployLinear(t, 2, deploy.Options{SkipAgents: true})
	// Attach a second (provider) controller session to switch 1.
	ca := d.CA
	provIdent, err := openflow.NewIdentity("provider-controller")
	if err != nil {
		t.Fatal(err)
	}
	swIdent, err := openflow.NewIdentity("switch-1-second")
	if err != nil {
		t.Fatal(err)
	}
	provConn, swConn, err := openflow.ConnectSecure(provIdent, ca.Issue(provIdent), swIdent, ca.Issue(swIdent), ca.Pub)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Fabric.Switch(1).Serve(swConn); err != nil {
		t.Fatal(err)
	}
	defer provConn.Close()

	before := d.RVaaS.SnapshotID()
	fm := &openflow.FlowMod{
		XID: 1, Command: openflow.FlowAdd,
		Entry: openflow.FlowEntry{
			Priority: 7,
			Match: openflow.Match{Fields: []openflow.FieldMatch{
				{Field: wire.FieldIPDst, Value: 0x01020304, Mask: 0xFFFFFFFF},
			}},
			Actions: []openflow.Action{openflow.Output(1)},
			Cookie:  0xFEED,
		},
	}
	if err := provConn.Send(fm); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if d.RVaaS.SnapshotID() > before {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("RVaaS did not observe the provider session's flow-mod")
}
