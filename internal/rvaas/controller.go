// Package rvaas implements the paper's primary contribution: the
// Routing-Verification-as-a-Service controller. It is a stand-alone,
// enclave-hosted OpenFlow controller that (1) monitors switch
// configurations passively and at randomized active-poll times, (2)
// verifies routing properties in the logical space using header space
// analysis, and (3) runs in-band authentication tests against the endpoints
// the logical analysis discovers, closing the loop between configuration
// and physical reality (paper §IV).
package rvaas

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/enclave"
	"repro/internal/headerspace"
	"repro/internal/history"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/verifier"
	"repro/internal/wire"
)

// CodeIdentity is the canonical code identity string measured by the
// enclave; clients pin MeasurementOf(CodeIdentity).
const CodeIdentity = "rvaas-controller-v1"

// CookieRVaaS marks RVaaS's own interception rules so it can detect
// tampering with them.
const CookieRVaaS uint64 = 0x5AA5_0000_0000

// interceptPriority outranks everything else so client messages always
// reach RVaaS.
const interceptPriority uint16 = 0xFFF0

// Config tunes a Controller.
type Config struct {
	// Topology is the trusted wiring plan (paper §III: "internal network
	// ports are known, and follow a well-defined wiring plan").
	Topology *topology.Topology
	// Platform hosts the enclave.
	Platform *enclave.Platform
	// PollInterval is the mean period of active state polls; 0 disables the
	// background poller (PollOnce can still be called manually).
	PollInterval time.Duration
	// RandomizePolls draws each inter-poll gap uniformly from
	// [PollInterval/2, 3*PollInterval/2] ("the latter however needs to
	// happen at random times, which are hard to guess for the adversary",
	// §IV-A). When false, polls are strictly periodic — the ablation the
	// E5 experiment measures.
	RandomizePolls bool
	// AuthTimeout bounds in-band authentication collection per query.
	AuthTimeout time.Duration
	// HistoryDepth is the number of snapshots retained.
	HistoryDepth int
	// Seed makes the poll-time randomness reproducible in experiments.
	Seed int64
	// Clock is injectable for simulated-time experiments; defaults to
	// time.Now.
	Clock func() time.Time
	// ManualRecheck disables the background subscription worker: standing
	// invariants are only re-verified by explicit RecheckNow /
	// RevalidateAll calls. Experiments use this to measure re-check latency
	// deterministically.
	ManualRecheck bool
	// RecheckParallelism is the worker count one subscription re-check pass
	// fans independent invariant evaluations across; <= 0 means GOMAXPROCS.
	// Runtime-adjustable via SetRecheckTuning.
	RecheckParallelism int
	// Verifiers is the verifier-fleet size: the number of engine instances
	// the standing-invariant set is partitioned across. <= 0 means 1 (the
	// pre-fleet engine, bit-compatible with earlier releases).
	Verifiers int
	// VerifierPlacement selects the fleet's partitioning policy:
	// "footprint" (default — rendezvous-hash on the invariant's anchor
	// switch, so one switch's invariants co-locate and a single-switch
	// event dispatches to few instances) or "rendezvous" (rendezvous-hash
	// on the subscription id, spreading uniformly).
	VerifierPlacement string
	// FootprintTermCap, when > 0, bounds the per-switch union-term count of
	// recorded footprints (process-global; see
	// headerspace.SetFootprintTermCap). DeltaTermCap, when > 0, bounds the
	// union-term count of one switch's accumulated rule delta. Both are
	// runtime-adjustable via SetRecheckTuning.
	FootprintTermCap int
	DeltaTermCap     int
	// HeartbeatInterval enables per-session liveness probing: the controller
	// sends an echo request on every attached switch channel at this period
	// and detaches the session after HeartbeatMisses consecutive unanswered
	// probes. 0 disables probing — in-process channels surface peer death as
	// a transport close, but a UDP channel to a separately-running switchd
	// process has no such signal, so multi-process deployments set this.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is the consecutive-miss detach threshold; <= 0 means 3.
	HeartbeatMisses int
	// Persist durably stores the standing-invariant set (client key,
	// invariant spec, anchor binding, session, last verdict/seq). When
	// set, every registration and verdict transition is appended to the
	// store, and New restores the full subscription set from it — a
	// restarted controller re-verifies every restored invariant and
	// re-issues current verdicts instead of silently dropping the tenant
	// fleet's standing monitoring. The caller owns (and closes) the store.
	Persist SubscriptionStore
}

func (c Config) withDefaults() Config {
	if c.AuthTimeout == 0 {
		c.AuthTimeout = 200 * time.Millisecond
	}
	if c.HistoryDepth == 0 {
		c.HistoryDepth = 256
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	return c
}

// Stats counts controller activity for the monitoring experiments.
type Stats struct {
	PassiveEvents   uint64
	Resyncs         uint64
	Detaches        uint64
	Reattaches      uint64
	ActivePolls     uint64
	QueriesServed   uint64
	AuthRequested   uint64
	AuthReceived    uint64
	PacketIns       uint64
	ResponsesSigned uint64
}

// Controller is one RVaaS instance.
type Controller struct {
	cfg     Config
	enclave *enclave.Enclave
	topo    *topology.Topology
	snap    *snapshotStore
	hist    *history.Store
	vlog    *history.ViolationLog
	fleet   *verifier.Fleet
	subKick chan struct{}
	notifyQ chan notifyJob
	rng     *rand.Rand
	persist SubscriptionStore
	// reasm rebuilds logical v2 envelopes from OpChunk continuation
	// frames before dispatch (chains keyed by requester MAC⊕IP).
	reasm *wire.Reassembler

	// tapMu guards the adversarial-testing taps (tap.go): eventTap observes
	// every committed snapshot mutation, commitTap intercepts (and may
	// corrupt) verdict transitions before they reach the violation log.
	tapMu     sync.RWMutex
	eventTap  func(TapEvent)
	commitTap func(*verifier.Transition)

	// recheckMu serializes recheck-pass assembly (generation diff + delta
	// drain); lastGen is the per-switch generation baseline of the last
	// pass, guarded by recheckMu.
	recheckMu sync.Mutex
	lastGen   map[topology.SwitchID]uint64

	// svcStats are service-plane counters outside the verifier fleet.
	svcStats struct {
		verdictQueries    atomic.Uint64
		sessionResumes    atomic.Uint64
		notificationsSent atomic.Uint64
		notificationsDrop atomic.Uint64
	}
	// svc is the client-facing service stack (auth gate over the core);
	// the packet transport and in-process callers share it.
	svc Service

	mu       sync.Mutex
	sessions map[topology.SwitchID]*session
	// resyncing / evHigh dedupe event-gap resyncs per switch; staleEvents /
	// stalePolls count consecutive staleness evidence for sequence-
	// regression recovery (monitor.go).
	resyncing   map[topology.SwitchID]bool
	evHigh      map[topology.SwitchID]uint64
	staleEvents map[topology.SwitchID]int
	stalePolls  map[topology.SwitchID]int
	// wasAttached marks switches that held a session at some point; a
	// re-attach of such a switch force-resyncs (the restarted process's
	// sequence counter regressed, and the switch is authoritative again).
	wasAttached map[topology.SwitchID]bool
	clients     map[uint64]ed25519.PublicKey
	pending     map[uint64]*pendingQuery // by query nonce
	waiters     map[uint32]chan openflow.Message
	nextXID     uint32
	stats       Stats
	peers       map[string]Federation
	peerEntries map[string]topology.Endpoint
	peerNames   map[string]string
	// probe bookkeeping for active wiring verification.
	probeExpect  map[uint64]topology.Endpoint
	probeConfirm map[uint64]topology.Endpoint
	probeNext    uint64

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

type session struct {
	sw   topology.SwitchID
	conn *openflow.SecureConn
	done chan struct{}
}

// New creates a controller and launches its enclave.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if cfg.Topology == nil {
		return nil, errors.New("rvaas: config needs a topology")
	}
	if cfg.Platform == nil {
		return nil, errors.New("rvaas: config needs an enclave platform")
	}
	encl, err := cfg.Platform.Launch([]byte(CodeIdentity))
	if err != nil {
		return nil, fmt.Errorf("rvaas: launch enclave: %w", err)
	}
	placement, err := verifier.ParsePlacement(cfg.VerifierPlacement)
	if err != nil {
		return nil, fmt.Errorf("rvaas: %w", err)
	}
	c := &Controller{
		cfg:          cfg,
		persist:      cfg.Persist,
		enclave:      encl,
		topo:         cfg.Topology,
		snap:         newSnapshotStore(),
		hist:         history.NewStore(cfg.HistoryDepth),
		vlog:         history.NewViolationLog(4 * cfg.HistoryDepth),
		lastGen:      make(map[topology.SwitchID]uint64),
		reasm:        wire.NewReassembler(0),
		subKick:      make(chan struct{}, 1),
		notifyQ:      make(chan notifyJob, 1024),
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		sessions:     make(map[topology.SwitchID]*session),
		resyncing:    make(map[topology.SwitchID]bool),
		evHigh:       make(map[topology.SwitchID]uint64),
		staleEvents:  make(map[topology.SwitchID]int),
		stalePolls:   make(map[topology.SwitchID]int),
		wasAttached:  make(map[topology.SwitchID]bool),
		clients:      make(map[uint64]ed25519.PublicKey),
		pending:      make(map[uint64]*pendingQuery),
		waiters:      make(map[uint32]chan openflow.Message),
		peers:        make(map[string]Federation),
		peerEntries:  make(map[string]topology.Endpoint),
		peerNames:    make(map[string]string),
		probeExpect:  make(map[uint64]topology.Endpoint),
		probeConfirm: make(map[uint64]topology.Endpoint),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	c.fleet = verifier.New(verifier.Config{
		Instances:   cfg.Verifiers,
		Placement:   placement,
		Parallelism: cfg.RecheckParallelism,
	}, verifierEnv{c})
	if cfg.FootprintTermCap > 0 {
		headerspace.SetFootprintTermCap(cfg.FootprintTermCap)
	}
	if cfg.DeltaTermCap > 0 {
		c.snap.setDeltaCap(cfg.DeltaTermCap)
	}
	c.svc = authGate{core: coreService{c}, c: c}
	if cfg.Persist != nil {
		if err := c.restoreSubscriptions(); err != nil {
			return nil, fmt.Errorf("rvaas: restore subscriptions: %w", err)
		}
	}
	return c, nil
}

// PublicKey returns the enclave-held response signing key.
func (c *Controller) PublicKey() ed25519.PublicKey { return c.enclave.PublicKey() }

// KeyQuote returns the attestation quote binding the signing key to the
// RVaaS code measurement.
func (c *Controller) KeyQuote() *enclave.Quote { return c.enclave.KeyQuote() }

// Measurement returns the enclave measurement clients should pin.
func Measurement() enclave.Measurement {
	return enclave.MeasurementOf([]byte(CodeIdentity))
}

// RegisterClient records a client's public key for auth-reply verification.
func (c *Controller) RegisterClient(id uint64, pub ed25519.PublicKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clients[id] = append(ed25519.PublicKey(nil), pub...)
}

// Stats returns a copy of the activity counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// History exposes the snapshot history (read-only use).
func (c *Controller) History() *history.Store { return c.hist }

// SnapshotID returns the current configuration version.
func (c *Controller) SnapshotID() uint64 { return c.snap.snapshotID() }

// CompiledNetwork returns the header-space network compiled from the
// current snapshot, served from the compile cache when the snapshot has not
// changed since the last call. The returned network is shared and must be
// treated as read-only (it is safe for concurrent Reach/ReachAll callers).
func (c *Controller) CompiledNetwork() *headerspace.Network {
	return c.snap.buildNetwork(c.topo)
}

// CompileCacheStats returns the compiled-network cache counters (hits,
// rebuilds, per-switch recompilations).
func (c *Controller) CompileCacheStats() CompileStats {
	return c.snap.compileStats()
}

// Attach connects the controller to one switch over an established secure
// channel. It subscribes to flow-monitor events, installs the in-band
// interception rules, performs an initial full-state sync, and starts the
// session reader (plus the liveness prober when heartbeats are enabled).
//
// Attaching a switch whose previous session was lost (process death, channel
// failure) is a re-attach: the initial sync is a forced resync, because the
// restarted switch's sequence counter regressed and its live state — not the
// controller's pre-detach view — is authoritative.
func (c *Controller) Attach(sw topology.SwitchID, conn *openflow.SecureConn) error {
	sess := &session{sw: sw, conn: conn, done: make(chan struct{})}
	c.mu.Lock()
	if _, dup := c.sessions[sw]; dup {
		c.mu.Unlock()
		return fmt.Errorf("rvaas: switch %d already attached", sw)
	}
	reattach := c.wasAttached[sw]
	c.wasAttached[sw] = true
	c.sessions[sw] = sess
	if reattach {
		c.stats.Reattaches++
		// The dead process's staleness evidence is meaningless for the new
		// one, and the old event high-water mark would manufacture a gap out
		// of the restarted switch's low sequence numbers.
		c.staleEvents[sw] = 0
		c.stalePolls[sw] = 0
		c.evHigh[sw] = 0
	}
	c.mu.Unlock()

	if err := conn.Send(&openflow.Hello{XID: c.xid()}); err != nil {
		return fmt.Errorf("rvaas: hello to %d: %w", sw, err)
	}
	if err := conn.Send(&openflow.FlowMonitorRequest{XID: c.xid(), MonitorID: uint32(sw)}); err != nil {
		return fmt.Errorf("rvaas: monitor subscribe %d: %w", sw, err)
	}
	for _, fm := range c.interceptionRules() {
		fm.XID = c.xid()
		if err := conn.Send(fm); err != nil {
			return fmt.Errorf("rvaas: install interception on %d: %w", sw, err)
		}
	}
	c.wg.Add(1)
	go c.readLoop(sess)
	if c.cfg.HeartbeatInterval > 0 {
		c.wg.Add(1)
		go c.heartbeatLoop(sess)
	}

	// Initial sync after the reader is running so the reply is routed.
	if err := c.pollSwitchMode(sw, 2*time.Second, reattach); err != nil {
		return fmt.Errorf("rvaas: initial sync %d: %w", sw, err)
	}
	if reattach {
		c.mu.Lock()
		c.evHigh[sw] = c.snap.seqOf(sw)
		c.mu.Unlock()
	}
	return nil
}

// Detach tears one switch session down and wipes the switch's snapshot
// state so standing invariants re-verify degraded instead of staying green
// on a view nobody can vouch for. Called by the session reader on channel
// failure, by the heartbeat prober on sustained silence, and by deployment
// supervisors that observed the hosting process die. Detaching a switch
// with no session is a no-op.
func (c *Controller) Detach(sw topology.SwitchID) {
	c.mu.Lock()
	sess := c.sessions[sw]
	c.mu.Unlock()
	if sess != nil {
		c.detachSession(sess)
	}
}

// detachSession removes exactly this session (a re-attach may already have
// installed a successor for the same switch — that one is left alone).
func (c *Controller) detachSession(sess *session) {
	c.mu.Lock()
	if c.sessions[sess.sw] != sess {
		c.mu.Unlock()
		sess.conn.Close()
		return
	}
	delete(c.sessions, sess.sw)
	stopped := false
	select {
	case <-c.stop:
		stopped = true
	default:
	}
	if !stopped {
		c.stats.Detaches++
	}
	c.mu.Unlock()
	sess.conn.Close()
	if stopped {
		// Controller shutdown tears sessions down in bulk; the final
		// snapshot must not record every switch as unreachable.
		return
	}
	if cap, changed := c.snap.markUnreachable(sess.sw); changed {
		c.recordHistory(history.SourceDetach, cap)
	}
}

// heartbeatLoop probes one session's liveness with echo requests; after
// HeartbeatMisses consecutive unanswered probes the session is detached. A
// probe is an ordinary request/reply, so a switch that is slow but alive
// resets the miss counter with any answered probe.
func (c *Controller) heartbeatLoop(sess *session) {
	defer c.wg.Done()
	interval := c.cfg.HeartbeatInterval
	misses := 0
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
		case <-sess.done:
			return
		case <-c.stop:
			return
		}
		c.mu.Lock()
		current := c.sessions[sess.sw] == sess
		c.mu.Unlock()
		if !current {
			return
		}
		xid := c.xid()
		if _, err := c.request(sess.sw, &openflow.EchoRequest{XID: xid}, xid, interval); err != nil {
			misses++
			if misses >= c.cfg.HeartbeatMisses {
				c.detachSession(sess)
				return
			}
			continue
		}
		misses = 0
	}
}

// interceptionRules are the magic-header rules RVaaS installs on every
// switch so client queries and auth replies are reported as Packet-Ins
// (paper §IV-A3).
func (c *Controller) interceptionRules() []*openflow.FlowMod {
	mkUDP := func(dstPort uint16, tag uint64) *openflow.FlowMod {
		return &openflow.FlowMod{
			Command: openflow.FlowAdd,
			Entry: openflow.FlowEntry{
				Priority: interceptPriority,
				Match: openflow.Match{Fields: []openflow.FieldMatch{
					{Field: wire.FieldIPProto, Value: uint64(wire.IPProtoUDP), Mask: 0xFF},
					{Field: wire.FieldL4Dst, Value: uint64(dstPort), Mask: 0xFFFF},
				}},
				Actions: []openflow.Action{openflow.Output(openflow.ControllerPort)},
				Cookie:  CookieRVaaS | tag,
			},
		}
	}
	probe := &openflow.FlowMod{
		Command: openflow.FlowAdd,
		Entry: openflow.FlowEntry{
			Priority: interceptPriority,
			Match: openflow.Match{Fields: []openflow.FieldMatch{
				{Field: wire.FieldEthType, Value: uint64(wire.EthTypeProbe), Mask: 0xFFFF},
			}},
			Actions: []openflow.Action{openflow.Output(openflow.ControllerPort)},
			Cookie:  CookieRVaaS | 3,
		},
	}
	return []*openflow.FlowMod{
		mkUDP(wire.PortRVaaSQuery, 1),
		mkUDP(wire.PortRVaaSAuthRep, 2),
		mkUDP(wire.PortRVaaSSub, 4),
		mkUDP(wire.PortRVaaSV2, 5),
		probe,
	}
}

// Start launches the background workers: the randomized active poller
// ("proactively query the switches for their current configuration ... at
// random times") and the subscription re-verification worker that
// re-checks standing invariants after every applied snapshot change.
func (c *Controller) Start() {
	c.wg.Add(1)
	go c.notifier()
	if !c.cfg.ManualRecheck {
		c.wg.Add(1)
		go c.subscriptionWorker()
	}
	if c.cfg.PollInterval <= 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			gap := c.nextPollGap()
			timer := time.NewTimer(gap)
			select {
			case <-timer.C:
				_ = c.PollAll(2 * time.Second)
			case <-c.stop:
				timer.Stop()
				return
			}
		}
	}()
}

func (c *Controller) nextPollGap() time.Duration {
	base := c.cfg.PollInterval
	if !c.cfg.RandomizePolls {
		return base
	}
	c.mu.Lock()
	jitter := c.rng.Int63n(int64(base))
	c.mu.Unlock()
	return base/2 + time.Duration(jitter)
}

// Close stops all background work and tears down the sessions.
func (c *Controller) Close() {
	c.mu.Lock()
	select {
	case <-c.stop:
		c.mu.Unlock()
		c.wg.Wait()
		return
	default:
	}
	close(c.stop)
	sessions := make([]*session, 0, len(c.sessions))
	for _, s := range c.sessions {
		sessions = append(sessions, s)
	}
	pend := c.pending
	c.pending = make(map[uint64]*pendingQuery)
	c.mu.Unlock()
	for _, p := range pend {
		p.cancel()
	}
	for _, s := range sessions {
		s.conn.Close()
	}
	c.wg.Wait()
}

func (c *Controller) xid() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextXID++
	return c.nextXID
}

// readLoop dispatches messages from one switch session. A receive failure
// (peer closed the channel, transport died) detaches the session so the
// switch's state degrades instead of freezing green.
func (c *Controller) readLoop(sess *session) {
	defer c.wg.Done()
	for {
		msg, err := sess.conn.Recv()
		if err != nil {
			close(sess.done)
			c.detachSession(sess)
			return
		}
		// Route request/reply pairs to waiters first.
		c.mu.Lock()
		if ch, ok := c.waiters[msg.XIDValue()]; ok {
			delete(c.waiters, msg.XIDValue())
			c.mu.Unlock()
			ch <- msg
			continue
		}
		c.mu.Unlock()

		switch m := msg.(type) {
		case *openflow.FlowMonitorReply:
			c.handleMonitorEvent(sess.sw, m)
		case *openflow.StatsReply:
			// Unsolicited full state (e.g. late reply): still apply it
			// (subject to staleness protection).
			c.applyStats(sess.sw, m, history.SourceActivePoll, false)
		case *openflow.PacketIn:
			c.handlePacketIn(sess.sw, m)
		case *openflow.EchoRequest:
			_ = sess.conn.Send(&openflow.EchoReply{XID: m.XID, Data: m.Data})
		default:
			// Hellos, errors, barriers without waiters: ignore.
		}
	}
}

// request sends a message and waits for the reply with the same XID.
func (c *Controller) request(sw topology.SwitchID, msg openflow.Message, xid uint32, timeout time.Duration) (openflow.Message, error) {
	c.mu.Lock()
	sess := c.sessions[sw]
	if sess == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("rvaas: no session for switch %d", sw)
	}
	ch := make(chan openflow.Message, 1)
	c.waiters[xid] = ch
	c.mu.Unlock()

	if err := sess.conn.Send(msg); err != nil {
		c.mu.Lock()
		delete(c.waiters, xid)
		c.mu.Unlock()
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case reply := <-ch:
		return reply, nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.waiters, xid)
		c.mu.Unlock()
		return nil, fmt.Errorf("rvaas: switch %d reply timeout", sw)
	case <-c.stop:
		return nil, errors.New("rvaas: controller closed")
	}
}

// sendPacketOut injects a frame at a switch ("responses are sent via
// packet-outs").
func (c *Controller) sendPacketOut(sw topology.SwitchID, outPort topology.PortNo, pkt *wire.Packet) error {
	c.mu.Lock()
	sess := c.sessions[sw]
	c.mu.Unlock()
	if sess == nil {
		return fmt.Errorf("rvaas: no session for switch %d", sw)
	}
	return sess.conn.Send(&openflow.PacketOut{
		XID:     c.xid(),
		InPort:  openflow.AnyPort,
		Actions: []openflow.Action{openflow.Output(uint32(outPort))},
		Data:    pkt.Marshal(),
	})
}
