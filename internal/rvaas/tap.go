package rvaas

import (
	"repro/internal/history"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/verifier"
)

// TapEvent is one committed snapshot mutation as observed by the event tap:
// the mutated switch together with its full committed state, copied under
// the same lock acquisition as the mutation itself. A differential oracle
// (internal/campaign) feeds the stream to a shadow controller via
// ReplayState so the reference re-verifies exactly the committed event
// order — not a re-read of live state that concurrent mutators may have
// moved past.
type TapEvent struct {
	Switch     topology.SwitchID
	Source     history.Source
	SnapshotID uint64
	// Seq is the switch's flow-monitor event sequence as of this commit.
	Seq     uint64
	Entries []openflow.FlowEntry
	Ports   []uint32
	Meters  []openflow.MeterConfig
}

// SetEventTap installs fn to observe every committed snapshot mutation
// (passive event, active poll, detach wipe, replay). fn runs on the
// committing goroutine — keep it cheap and never call back into the
// controller from it. nil removes the tap.
func (c *Controller) SetEventTap(fn func(TapEvent)) {
	c.tapMu.Lock()
	c.eventTap = fn
	c.tapMu.Unlock()
}

// SetCommitTap installs fn to intercept every verdict-transition commit
// before it is logged and notified. fn may mutate the transition in place —
// this is the adversarial-campaign hook for modelling a Byzantine
// controller component corrupting the client-visible verdict stream (the
// differential oracle must catch the corruption). nil removes the tap.
func (c *Controller) SetCommitTap(fn func(*verifier.Transition)) {
	c.tapMu.Lock()
	c.commitTap = fn
	c.tapMu.Unlock()
}

// tapCommittedEvent hands one committed mutation to the event tap, if any.
func (c *Controller) tapCommittedEvent(src history.Source, cap capture) {
	c.tapMu.RLock()
	fn := c.eventTap
	c.tapMu.RUnlock()
	if fn == nil {
		return
	}
	fn(TapEvent{
		Switch:     cap.sw,
		Source:     src,
		SnapshotID: cap.id,
		Seq:        cap.seq,
		Entries:    cap.entries,
		Ports:      cap.ports,
		Meters:     cap.meters,
	})
}

// tapTransition lets the commit tap observe/corrupt one verdict transition.
func (c *Controller) tapTransition(t *verifier.Transition) {
	c.tapMu.RLock()
	fn := c.commitTap
	c.tapMu.RUnlock()
	if fn != nil {
		fn(t)
	}
}

// ReplayState force-installs one switch's full committed state, exactly as
// captured by an event tap on another controller. It is the shadow-oracle
// ingestion path: the shadow controller has no attached switches and learns
// the network solely through replayed taps, so its standing invariants
// re-verify against byte-identical snapshots in the identical committed
// order. force semantics bypass staleness rejection (the primary already
// arbitrated event ordering). Returns whether the state differed.
func (c *Controller) ReplayState(sw topology.SwitchID, src history.Source, entries []openflow.FlowEntry, ports []uint32, meters []openflow.MeterConfig, seq uint64) bool {
	if entries == nil {
		entries = []openflow.FlowEntry{}
	}
	cap, changed, _ := c.snap.replaceState(sw, entries, ports, meters, seq, true)
	if changed {
		c.recordHistory(src, cap)
	}
	return changed
}

// ReplayTap is ReplayState in terms of a captured TapEvent.
func (c *Controller) ReplayTap(ev TapEvent) bool {
	return c.ReplayState(ev.Switch, ev.Source, ev.Entries, ev.Ports, ev.Meters, ev.Seq)
}

// ExportState returns every seen switch's committed state as replayable
// tap events, in switch order and mutually consistent (one lock
// acquisition). A differential oracle replays this baseline into its
// shadow controller before live tap events take over.
func (c *Controller) ExportState() []TapEvent {
	caps := c.snap.exportAll()
	out := make([]TapEvent, 0, len(caps))
	for _, cap := range caps {
		out = append(out, TapEvent{
			Switch:     cap.sw,
			Source:     history.SourceActivePoll,
			SnapshotID: cap.id,
			Seq:        cap.seq,
			Entries:    cap.entries,
			Ports:      cap.ports,
			Meters:     cap.meters,
		})
	}
	return out
}

// SnapshotSeq returns the last committed flow-monitor event sequence for
// one switch — the settle barrier adversarial campaigns use to decide the
// controller has ingested everything the data plane emitted.
func (c *Controller) SnapshotSeq(sw topology.SwitchID) uint64 {
	return c.snap.seqOf(sw)
}
