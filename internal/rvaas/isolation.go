package rvaas

import (
	"repro/internal/headerspace"
	"repro/internal/topology"
	"repro/internal/verifier"
)

// Isolation invariants ("which sources can reach my network card?") are
// the most expensive standing invariants: one evaluation injects the
// scoped space at EVERY edge port of the network and traverses each
// injection independently. The pre-cone engine re-ran that full sweep on
// every re-check whose dirty set crossed the invariant's (union) footprint
// — even though a single-switch change can only alter the traversals whose
// own cone crosses that switch.
//
// The cone cache keeps, per injection point, the point's visited cone
// (headerspace.Footprint) and its outcome (does it reach the subscriber,
// and over which path lengths). A re-run sweeps only the points whose cone
// was dirtied; every other point's cached outcome is provably still valid,
// because its traversal consulted no changed transfer function.

// isoSequentialSweepMax bounds the cone re-sweep size evaluated without
// internal fan-out (the engine's cross-invariant worker pool already
// covers small sweeps).
const isoSequentialSweepMax = 16

// isoCone is one injection point's cached traversal outcome.
type isoCone struct {
	fp      headerspace.Footprint
	reaches bool
	lens    []int
}

// isoConeCache is one isolation subscription's per-injection-point state,
// carried in verifier.Subscription.Cones. It is touched only during
// evaluation, which the owning instance's run lock serializes (each
// subscription is evaluated by at most one worker per pass, and passes on
// one instance do not overlap).
type isoConeCache struct {
	points []headerspace.InjectionPoint
	eps    []topology.Endpoint
	cones  []isoCone
	primed bool
}

// newIsoConeCache enumerates the sweep set: every edge port except the
// subscriber's own (which trivially reaches itself).
func (c *Controller) newIsoConeCache(req requesterInfo) *isoConeCache {
	cache := &isoConeCache{}
	for _, ep := range c.topo.EdgePorts() {
		if ep.Switch == req.sw && ep.Port == req.port {
			continue
		}
		cache.points = append(cache.points, headerspace.InjectionPoint{
			Node: headerspace.NodeID(ep.Switch), Port: headerspace.PortID(ep.Port),
		})
		cache.eps = append(cache.eps, ep)
	}
	cache.cones = make([]isoCone, len(cache.points))
	return cache
}

// evaluateIsolation runs one standing isolation invariant. With fullSweep
// (registration, RevalidateAll, legacy ablation) every injection point is
// traversed; otherwise only the points whose cached cone crosses the dirty
// set re-run — refined, when the pass carries rule deltas, to the points
// whose cone SLICE at some dirty switch overlaps that switch's delta (a
// cone that merely passes through a dirty hub is reused when the changed
// rules touch none of the headers it carried there). The rest reuse their
// cached outcome. The aggregate verdict and footprint are byte-identical
// to a full sweep, so switching between the paths can never manufacture a
// verdict transition.
func (c *Controller) evaluateIsolation(net *headerspace.Network, sub *verifier.Subscription, dirty []headerspace.NodeID, deltas map[headerspace.NodeID]headerspace.Delta, fullSweep, pooled bool) verifier.Verdict {
	cache, _ := sub.Cones.(*isoConeCache)
	if cache == nil {
		cache = c.newIsoConeCache(reqOf(sub))
		sub.Cones = cache
	}
	space := scopeSpace(sub.Constraints)

	var v verifier.Verdict
	var sweep []int
	if fullSweep || !cache.primed {
		sweep = make([]int, len(cache.points))
		for i := range sweep {
			sweep[i] = i
		}
	} else {
		for i := range cache.cones {
			invalidated := false
			if deltas != nil {
				invalidated = cache.cones[i].fp.InvalidatedBy(deltas)
			} else {
				invalidated = cache.cones[i].fp.Invalidated(dirty)
			}
			if invalidated {
				sweep = append(sweep, i)
			}
		}
		v.IsoPointsReused = uint64(len(cache.points) - len(sweep))
	}
	v.IsoPointsSwept = uint64(len(sweep))

	if len(sweep) > 0 {
		points := make([]headerspace.InjectionPoint, len(sweep))
		for i, idx := range sweep {
			points[i] = cache.points[idx]
		}
		// Inside a multi-worker pass the pool already provides the
		// fan-out: nesting ReachAll's own workers per invariant would
		// oversubscribe the cores (a force pass over N isolation
		// invariants would run ~P² traversal goroutines on P cores). The
		// exception is an incremental straggler — one invariant whose
		// whole view was dirtied among otherwise-small work items — which
		// keeps ReachAll's fan-out so it cannot pin the pass to a single
		// core. Outside the pool (registration, single-worker passes, the
		// legacy baseline) ReachAll parallelizes as before.
		opt := headerspace.ReachOptions{RecordFootprint: true}
		straggler := !fullSweep && len(sweep) > isoSequentialSweepMax
		if pooled && !straggler {
			opt.Parallelism = 1
		}
		for i, pr := range net.ReachAll(points, space, opt) {
			idx := sweep[i]
			reaches := false
			var lens []int
			for _, r := range pr.Results {
				if r.Looped {
					continue
				}
				if r.EgressNode == headerspace.NodeID(sub.Anchor.Switch) && r.EgressPort == headerspace.PortID(sub.Anchor.Port) {
					reaches = true
					lens = append(lens, len(r.Path))
				}
			}
			cache.cones[idx] = isoCone{fp: pr.Footprint, reaches: reaches, lens: lens}
		}
		cache.primed = true
	}

	fp := headerspace.NewFootprint()
	var found []discoveredEndpoint
	for i := range cache.cones {
		cone := &cache.cones[i]
		fp.Union(cone.fp)
		if !cone.reaches {
			continue
		}
		de := discoveredEndpoint{ep: cache.eps[i], pathLens: cone.lens}
		if ap, ok := c.topo.AccessPointAt(cache.eps[i]); ok {
			de.ap = ap
			de.known = true
		}
		found = append(found, de)
	}
	sortEndpoints(found)
	violated, detail := isolationVerdict(found, sub.ClientID)
	// The subscriber's own switch is consulted implicitly (traffic must
	// arrive there to reach the card); keep it in the footprint so local
	// reconfigurations always re-run the invariant.
	fp.Add(headerspace.NodeID(sub.Anchor.Switch))
	v.Violated, v.Detail, v.FP = violated, detail, fp
	return v
}
