package rvaas

import (
	"sort"
	"time"

	"repro/internal/headerspace"
	"repro/internal/history"
	"repro/internal/openflow"
	"repro/internal/topology"
)

// Attack traceback (paper §IV-C: "a slightly more complex service may also
// maintain some history of the recent past, allowing RVaaS for example to
// traceback the ingress port of an attack"). Given a time window, RVaaS
// reconstructs which rules appeared or vanished and which edge ports those
// rules opened paths from.

// ConfigChange is one rule-level change observed in the history window.
type ConfigChange struct {
	Switch  topology.SwitchID
	Entry   openflow.FlowEntry
	Removed bool // false = added
	// ApproxAt is the timestamp of the first snapshot showing the change.
	ApproxAt time.Time
}

// ConfigDiff reconstructs the rule-level changes between the snapshots
// bracketing [from, to].
func (c *Controller) ConfigDiff(from, to time.Time) []ConfigChange {
	records := c.hist.Range(from, to)
	if len(records) < 2 {
		return nil
	}
	sort.Slice(records, func(i, j int) bool { return records[i].At.Before(records[j].At) })
	var out []ConfigChange
	for i := 1; i < len(records); i++ {
		d := history.DiffRecords(records[i-1], records[i])
		for sw, entries := range d.Added {
			for _, e := range entries {
				out = append(out, ConfigChange{Switch: sw, Entry: e, ApproxAt: records[i].At})
			}
		}
		for sw, entries := range d.Removed {
			for _, e := range entries {
				out = append(out, ConfigChange{Switch: sw, Entry: e, Removed: true, ApproxAt: records[i].At})
			}
		}
	}
	return out
}

// TracebackReport names the edge ports from which the changed rules opened
// new paths toward the victim.
type TracebackReport struct {
	// Changes are the raw rule deltas in the window.
	Changes []ConfigChange
	// IngressPorts are edge ports that gained reachability to the victim's
	// access point through added rules.
	IngressPorts []topology.Endpoint
}

// TracebackIngress answers "where could the attack have come from?": it
// replays the snapshot at the end of the window and reports every edge port
// that can reach the victim through at least one rule added inside the
// window.
func (c *Controller) TracebackIngress(victim topology.AccessPoint, from, to time.Time) TracebackReport {
	rep := TracebackReport{Changes: c.ConfigDiff(from, to)}
	if len(rep.Changes) == 0 {
		return rep
	}
	// Collect fingerprints of added rules per switch.
	added := make(map[topology.SwitchID]map[string]struct{})
	for _, ch := range rep.Changes {
		if ch.Removed {
			continue
		}
		m := added[ch.Switch]
		if m == nil {
			m = make(map[string]struct{})
			added[ch.Switch] = m
		}
		m[history.EntryKey(ch.Switch, ch.Entry)] = struct{}{}
	}
	if len(added) == 0 {
		return rep
	}
	// Rebuild the network from the snapshot at the window end and find the
	// edge ports whose path to the victim crosses an added rule.
	rec, ok := c.hist.At(to)
	if !ok {
		return rep
	}
	net := newSnapshotStore()
	for sw, entries := range rec.Tables {
		net.replaceTable(sw, entries, nil, 0)
	}
	hsNet := net.buildNetwork(c.topo)
	req := requesterInfo{sw: victim.Endpoint.Switch, port: victim.Endpoint.Port}
	for _, swID := range c.topo.Switches() {
		for p := topology.PortNo(1); p <= c.topo.PortCount(swID); p++ {
			ep := topology.Endpoint{Switch: swID, Port: p}
			if c.topo.IsInternal(ep) || ep == victim.Endpoint {
				continue
			}
			results := hsNet.Reach(
				headerspace.NodeID(ep.Switch), headerspace.PortID(ep.Port),
				scopeSpace(nil), headerspace.ReachOptions{})
			for _, r := range results {
				if r.Looped {
					continue
				}
				if topology.SwitchID(r.EgressNode) != req.sw || topology.PortNo(r.EgressPort) != req.port {
					continue
				}
				if pathUsesAddedRule(r, added) {
					rep.IngressPorts = append(rep.IngressPorts, ep)
					goto nextPort
				}
			}
		nextPort:
		}
	}
	sort.Slice(rep.IngressPorts, func(i, j int) bool {
		a, b := rep.IngressPorts[i], rep.IngressPorts[j]
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		return a.Port < b.Port
	})
	return rep
}

// pathUsesAddedRule reports whether any hop of the result's path belongs to
// a switch with added rules. (Hop-level rule attribution would need the
// emission's rule annotation; switch-level attribution is sufficient to
// rank ingress candidates.)
func pathUsesAddedRule(r headerspace.ReachResult, added map[topology.SwitchID]map[string]struct{}) bool {
	for _, h := range r.Path {
		if _, ok := added[topology.SwitchID(h.Node)]; ok {
			return true
		}
	}
	return false
}
