package rvaas

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/verifier"
	"repro/internal/wire"
)

// Batch operations: the amortization layer of protocol v2. A tenant
// registering 10⁴ standing invariants over v1 pays 10⁴ round-trips, each
// with its own client signature, server-side verification, serialized
// initial evaluation (every subscribe takes an instance's run lock for one
// invariant) and ack signature. A batch pays ONE signature verification,
// ONE run-lock acquisition per owning fleet instance with the initial
// evaluations fanned across the recheck worker pool, and ONE signed reply
// — the E15 experiment measures the resulting speedup.

// poolRun fans f(i) for i in [0,n) across the given number of workers
// (sequentially when workers <= 1).
func poolRun(n, workers int, f func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

func (s coreService) BatchSubscribe(o Origin, b *wire.BatchSubscribeRequest) *wire.BatchReply {
	c := s.c
	reply := &wire.BatchReply{
		Version: wire.CurrentVersion,
		Nonce:   b.Nonce,
		Status:  wire.StatusOK,
	}
	// The whole batch consumes one replay-protection nonce; per-item
	// routing nonces are derived (BatchItemNonce) and never wire-accepted,
	// so they do not age out the client's nonce memory.
	if b.Nonce != 0 && !c.fleet.RecordNonce(b.ClientID, b.Nonce) {
		reply.Status = wire.StatusError
		reply.Detail = fmt.Sprintf("duplicate batch nonce %#x for client %d (replay?)", b.Nonce, b.ClientID)
		return c.signBatchReply(reply)
	}

	req := o.requester()
	anchor := verifier.Anchor{Switch: req.sw, Port: req.port, MAC: req.mac, IP: req.ip}
	items := make([]wire.BatchReplyItem, len(b.Items))
	subs := make([]*verifier.Subscription, 0, len(b.Items))
	idx := make([]int, 0, len(b.Items)) // subs position -> request item index
	for i, it := range b.Items {
		src := verifier.Source{Nonce: wire.BatchItemNonce(b.Nonce, i), SessionID: o.SessionID, Proto: o.Proto}
		sub, err := verifier.NewSubscription(b.ClientID, src, it.Kind, it.Constraints, it.Param, anchor)
		if err != nil {
			items[i] = wire.BatchReplyItem{Status: wire.StatusError, Detail: err.Error()}
			continue
		}
		subs = append(subs, sub)
		idx = append(idx, i)
	}

	// The fleet groups the batch by owning instance and takes each run
	// lock once, fanning the initial evaluations across the worker pool
	// exactly like a recheck pass. Initial verdicts are carried in the
	// reply (not pushed), mirroring single-subscribe ack semantics.
	if len(subs) > 0 {
		c.fleet.RegisterBatch(subs, verifier.EvalContext{Build: c.passBuild, Workers: c.evalWorkers()})
	}

	for k, sub := range subs {
		it := wire.BatchReplyItem{SubID: sub.ID, Status: wire.StatusOK}
		if st, ok := c.fleet.View(sub.ID); ok {
			it.Seq, it.Detail = st.Seq, st.Detail
			if st.Violated {
				it.Status = wire.StatusViolation
			}
		}
		items[idx[k]] = it
	}
	reply.Items = items
	return c.signBatchReply(reply)
}

func (s coreService) BatchQuery(o Origin, b *wire.BatchQueryRequest) *wire.BatchQueryReply {
	c := s.c
	reply := &wire.BatchQueryReply{
		Version: wire.CurrentVersion,
		Nonce:   b.Nonce,
		Status:  wire.StatusOK,
	}
	c.mu.Lock()
	c.stats.QueriesServed += uint64(len(b.Items))
	c.mu.Unlock()

	// All items share one compiled network (served from the compile cache)
	// and one snapshot id, so a batch answers a consistent configuration
	// version across every item. Batch queries run the logical pipeline
	// only — no in-band authentication round (AuthRequested stays 0);
	// clients that need endpoint authentication issue single queries.
	net := c.CompiledNetwork()
	snapID := c.snap.snapshotID()
	requester := o.requester()
	resps := make([]*wire.QueryResponse, len(b.Items))
	poolRun(len(b.Items), c.evalWorkers(), func(i int) {
		q := b.Items[i]
		resp := &wire.QueryResponse{
			Version:    wire.CurrentVersion,
			Kind:       q.Kind,
			Nonce:      q.Nonce,
			Status:     wire.StatusOK,
			SnapshotID: snapID,
		}
		c.answerQuery(net, requester, q, resp)
		resps[i] = resp
	})
	reply.Items = resps
	reply.SnapshotID = snapID
	reply.Signature = c.enclave.Sign(reply.SigningBytes())
	reply.Quote = c.enclave.KeyQuote().Marshal()
	return reply
}
