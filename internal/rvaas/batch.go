package rvaas

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// Batch operations: the amortization layer of protocol v2. A tenant
// registering 10⁴ standing invariants over v1 pays 10⁴ round-trips, each
// with its own client signature, server-side verification, serialized
// initial evaluation (every subscribe takes the engine's run lock for one
// invariant) and ack signature. A batch pays ONE signature verification,
// ONE run-lock acquisition with the initial evaluations fanned across the
// recheck worker pool, and ONE signed reply — the E15 experiment measures
// the resulting speedup.

// poolRun fans f(i) for i in [0,n) across the given number of workers
// (sequentially when workers <= 1).
func poolRun(n, workers int, f func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

func (c *Controller) evalWorkers() int {
	workers := int(c.subs.parallelism.Load())
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return workers
}

func (s coreService) BatchSubscribe(o Origin, b *wire.BatchSubscribeRequest) *wire.BatchReply {
	c := s.c
	e := c.subs
	reply := &wire.BatchReply{
		Version: wire.CurrentVersion,
		Nonce:   b.Nonce,
		Status:  wire.StatusOK,
	}
	// The whole batch consumes one replay-protection nonce; per-item
	// routing nonces are derived (BatchItemNonce) and never wire-accepted,
	// so they do not age out the client's nonce memory.
	if b.Nonce != 0 && !e.recordNonce(b.ClientID, b.Nonce) {
		reply.Status = wire.StatusError
		reply.Detail = fmt.Sprintf("duplicate batch nonce %#x for client %d (replay?)", b.Nonce, b.ClientID)
		return c.signBatchReply(reply)
	}

	req := o.requester()
	items := make([]wire.BatchReplyItem, len(b.Items))
	subs := make([]*subscription, 0, len(b.Items))
	idx := make([]int, 0, len(b.Items)) // subs position -> request item index
	for i, it := range b.Items {
		src := subSource{nonce: wire.BatchItemNonce(b.Nonce, i), sessionID: o.SessionID, proto: o.Proto}
		sub, err := newSubscription(b.ClientID, src, it.Kind, it.Constraints, it.Param, req)
		if err != nil {
			items[i] = wire.BatchReplyItem{Status: wire.StatusError, Detail: err.Error()}
			continue
		}
		sub.id = e.nextID.Add(1)
		sh := e.shardFor(sub.id)
		sh.mu.Lock()
		sh.subs[sub.id] = sub
		sh.mu.Unlock()
		e.stats.registered.Add(1)
		subs = append(subs, sub)
		idx = append(idx, i)
	}

	// One run-lock acquisition covers every initial evaluation; the
	// per-invariant evaluations are independent and fan across the worker
	// pool exactly like a recheck pass. Initial verdicts are carried in
	// the reply (not pushed), mirroring single-subscribe ack semantics.
	if len(subs) > 0 {
		e.runMu.Lock()
		net := c.snap.buildNetwork(c.topo)
		snapID := c.snap.snapshotID()
		workers := c.evalWorkers()
		pooled := workers > 1 && len(subs) > 1
		poolRun(len(subs), workers, func(i int) {
			sub := subs[i]
			v := c.evaluateInvariant(net, sub, nil, nil, true, pooled)
			c.commitVerdict(sub, v, snapID, false)
		})
		e.runMu.Unlock()
	}

	for k, sub := range subs {
		sh := e.shardFor(sub.id)
		sh.mu.Lock()
		it := wire.BatchReplyItem{SubID: sub.id, Status: wire.StatusOK, Seq: sub.seq, Detail: sub.detail}
		if sub.violated {
			it.Status = wire.StatusViolation
		}
		sh.mu.Unlock()
		items[idx[k]] = it
	}
	reply.Items = items
	return c.signBatchReply(reply)
}

func (s coreService) BatchQuery(o Origin, b *wire.BatchQueryRequest) *wire.BatchQueryReply {
	c := s.c
	reply := &wire.BatchQueryReply{
		Version: wire.CurrentVersion,
		Nonce:   b.Nonce,
		Status:  wire.StatusOK,
	}
	c.mu.Lock()
	c.stats.QueriesServed += uint64(len(b.Items))
	c.mu.Unlock()

	// All items share one compiled network (served from the compile cache)
	// and one snapshot id, so a batch answers a consistent configuration
	// version across every item. Batch queries run the logical pipeline
	// only — no in-band authentication round (AuthRequested stays 0);
	// clients that need endpoint authentication issue single queries.
	net := c.CompiledNetwork()
	snapID := c.snap.snapshotID()
	requester := o.requester()
	resps := make([]*wire.QueryResponse, len(b.Items))
	poolRun(len(b.Items), c.evalWorkers(), func(i int) {
		q := b.Items[i]
		resp := &wire.QueryResponse{
			Version:    wire.CurrentVersion,
			Kind:       q.Kind,
			Nonce:      q.Nonce,
			Status:     wire.StatusOK,
			SnapshotID: snapID,
		}
		c.answerQuery(net, requester, q, resp)
		resps[i] = resp
	})
	reply.Items = resps
	reply.SnapshotID = snapID
	reply.Signature = c.enclave.Sign(reply.SigningBytes())
	reply.Quote = c.enclave.KeyQuote().Marshal()
	return reply
}
