package rvaas_test

import (
	"crypto/ed25519"
	"crypto/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/deploy"
	"repro/internal/history"
	"repro/internal/openflow"
	"repro/internal/rvaas"
	"repro/internal/topology"
	"repro/internal/wire"
)

// dropEntry builds a high-priority rule with no output action: the switch
// simulator and the HSA compiler both treat it as a drop, so installing it
// on a path switch severs reachability for the matched destination.
func dropEntry(dstIP uint32) openflow.FlowEntry {
	return openflow.FlowEntry{
		Priority: 3000,
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: uint64(dstIP), Mask: 0xFFFFFFFF},
		}},
		Cookie: 0xD0D0_0001,
	}
}

// settle applies pending switch events deterministically: one active poll
// plus a synchronous incremental recheck.
func settle(t *testing.T, d *deploy.Deployment) {
	t.Helper()
	if err := d.RVaaS.PollAll(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	d.RVaaS.RecheckNow()
}

func TestSubscriptionLifecycle(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{SkipAgents: true, ManualRecheck: true})
	aps := d.Topology.AccessPoints()

	id, err := d.RVaaS.Subscribe(aps[0].ClientID, wire.QueryReachableDestinations,
		ipConstraint(aps[2].HostIP), "", aps[0].Endpoint)
	if err != nil {
		t.Fatal(err)
	}
	subs := d.RVaaS.Subscriptions()
	if len(subs) != 1 || subs[0].ID != id || subs[0].Violated {
		t.Fatalf("subscriptions = %+v", subs)
	}
	if subs[0].FootprintSize == 0 {
		t.Error("initial evaluation recorded no footprint")
	}
	if d.RVaaS.Unsubscribe(aps[0].ClientID+99, id) {
		t.Error("unsubscribe with wrong client id must fail")
	}
	if !d.RVaaS.Unsubscribe(aps[0].ClientID, id) {
		t.Error("unsubscribe failed")
	}
	if len(d.RVaaS.Subscriptions()) != 0 {
		t.Error("subscription not removed")
	}
	if _, err := d.RVaaS.Subscribe(aps[0].ClientID, wire.QueryGeoRegions, nil, "", aps[0].Endpoint); err == nil {
		t.Error("unsupported kind accepted")
	}
	if _, err := d.RVaaS.Subscribe(aps[0].ClientID, wire.QueryPathLength, nil, "not-an-int", aps[0].Endpoint); err == nil {
		t.Error("bad path-length bound accepted")
	}
}

// TestSubscriptionViolationAndRecovery drives the full transition cycle:
// a standing reachability invariant is violated by a drop rule on a path
// switch and recovers when the rule is removed, producing exactly one
// violation and one recovery record.
func TestSubscriptionViolationAndRecovery(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{SkipAgents: true, ManualRecheck: true})
	aps := d.Topology.AccessPoints()
	dst := aps[2]

	id, err := d.RVaaS.Subscribe(aps[0].ClientID, wire.QueryReachableDestinations,
		ipConstraint(dst.HostIP), "", aps[0].Endpoint)
	if err != nil {
		t.Fatal(err)
	}

	mid := d.Topology.Switches()[1]
	drop := dropEntry(dst.HostIP)
	d.Fabric.Switch(mid).InstallDirect(drop)
	settle(t, d)
	recs := d.RVaaS.ViolationLog().PerSub(id)
	if len(recs) != 1 || recs[0].Event != history.EventViolation {
		t.Fatalf("after drop: records = %+v", recs)
	}
	if open := d.RVaaS.ViolationLog().Open(); len(open) != 1 {
		t.Errorf("open violations = %+v", open)
	}

	// Re-checks without further changes must not duplicate the record.
	settle(t, d)
	d.RVaaS.RecheckNow()
	if recs := d.RVaaS.ViolationLog().PerSub(id); len(recs) != 1 {
		t.Fatalf("duplicate records after idle rechecks: %+v", recs)
	}

	d.Fabric.Switch(mid).RemoveDirect(drop)
	settle(t, d)
	recs = d.RVaaS.ViolationLog().PerSub(id)
	if len(recs) != 2 || recs[1].Event != history.EventRecovery {
		t.Fatalf("after restore: records = %+v", recs)
	}
	if open := d.RVaaS.ViolationLog().Open(); len(open) != 0 {
		t.Errorf("violation still open after recovery: %+v", open)
	}
	st := d.RVaaS.SubscriptionStats()
	if st.Violations != 1 || st.Recoveries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestIncrementalRecheckSkipsUntouchedInvariants is the core of the
// dirty-set engine: after a change to one switch, only invariants whose
// footprint contains that switch are re-evaluated; the rest revalidate for
// free.
func TestIncrementalRecheckSkipsUntouchedInvariants(t *testing.T) {
	d := deployLinear(t, 8, deploy.Options{SkipAgents: true, ManualRecheck: true})
	aps := d.Topology.AccessPoints()
	sws := d.Topology.Switches()

	// One neighbor-reachability invariant per adjacent access-point pair:
	// invariant i's footprint is {switch i, switch i+1}.
	for i := 0; i+1 < len(aps); i++ {
		if _, err := d.RVaaS.Subscribe(aps[i].ClientID, wire.QueryReachableDestinations,
			ipConstraint(aps[i+1].HostIP), "", aps[i].Endpoint); err != nil {
			t.Fatal(err)
		}
	}
	nSubs := len(aps) - 1
	settle(t, d) // absorb any deferred event noise into the baseline

	// Dirty the last switch with a rule irrelevant to every invariant.
	// Rule-delta dispatch sees that the changed rule's header space
	// (IPDst 203.0.113.9) misses every invariant's recorded traversal
	// slice and evaluates NOTHING — even the invariant whose footprint
	// contains the churned switch revalidates for free.
	last := sws[len(sws)-1]
	churn := dropEntry(wire.IPv4(203, 0, 113, 9))
	before := d.RVaaS.SubscriptionStats()
	d.Fabric.Switch(last).InstallDirect(churn)
	settle(t, d)
	after := d.RVaaS.SubscriptionStats()

	evaluated := after.Evaluated - before.Evaluated
	revalidated := after.Revalidated - before.Revalidated
	if evaluated != 0 {
		t.Errorf("evaluated %d invariants after an irrelevant change, want 0 of %d (rule-delta dispatch)", evaluated, nSubs)
	}
	if skipped := after.DeltaSkipped - before.DeltaSkipped; skipped == 0 {
		t.Error("no invariant was delta-skipped: the dirty bucket should have been filtered")
	}
	if revalidated < uint64(nSubs-1) {
		t.Errorf("revalidated = %d, want >= %d free revalidations", revalidated, nSubs-1)
	}
	// No verdict flipped: the churn rule touches unrelated traffic only.
	if after.Violations != before.Violations {
		t.Errorf("spurious violations: %+v", after)
	}

	// Per-switch dispatch (the PR 3 reference) re-runs every invariant in
	// the dirty switch's bucket: the one(s) whose footprint ends there.
	d.RVaaS.SetRecheckTuning(rvaas.RecheckTuning{PerSwitchDispatch: true})
	before = d.RVaaS.SubscriptionStats()
	d.Fabric.Switch(last).RemoveDirect(churn)
	settle(t, d)
	after = d.RVaaS.SubscriptionStats()
	d.RVaaS.SetRecheckTuning(rvaas.RecheckTuning{})
	evaluated = after.Evaluated - before.Evaluated
	if evaluated == 0 || evaluated > 2 {
		t.Errorf("per-switch dispatch evaluated %d invariants, want 1..2 of %d", evaluated, nSubs)
	}

	// Naive baseline re-evaluates everything.
	before = d.RVaaS.SubscriptionStats()
	d.RVaaS.RevalidateAll()
	after = d.RVaaS.SubscriptionStats()
	if after.Evaluated-before.Evaluated != uint64(nSubs) {
		t.Errorf("RevalidateAll evaluated %d, want %d", after.Evaluated-before.Evaluated, nSubs)
	}
}

// TestSubscriptionKindsVerdicts exercises isolation, waypoint and
// path-length standing invariants end to end.
func TestSubscriptionKindsVerdicts(t *testing.T) {
	topo, err := topology.MultiRegionWAN([]topology.Region{"eu-west", "offshore", "us-east"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(topo, deploy.Options{SkipAgents: true, ManualRecheck: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	aps := topo.AccessPoints()
	ap := aps[0]

	// Waypoint: traffic to a same-region peer must be able to avoid a
	// region it cannot traverse anyway — expect OK; an always-traversed
	// region of the destination must violate.
	dst := aps[len(aps)-1]
	dstRegion := string(topo.RegionOf(dst.Endpoint.Switch))
	wID, err := d.RVaaS.Subscribe(ap.ClientID, wire.QueryWaypointAvoidance,
		ipConstraint(dst.HostIP), dstRegion, ap.Endpoint)
	if err != nil {
		t.Fatal(err)
	}
	var wInfo *rvaasSubInfo
	for _, s := range d.RVaaS.Subscriptions() {
		if s.ID == wID {
			wInfo = &rvaasSubInfo{violated: s.Violated, detail: s.Detail}
		}
	}
	if wInfo == nil || !wInfo.violated {
		t.Errorf("waypoint invariant through destination region should be violated: %+v", wInfo)
	}

	// Path length with a generous bound holds.
	plID, err := d.RVaaS.Subscribe(ap.ClientID, wire.QueryPathLength,
		ipConstraint(dst.HostIP), "64", ap.Endpoint)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range d.RVaaS.Subscriptions() {
		if s.ID == plID && s.Violated {
			t.Errorf("path-length bound 64 violated: %s", s.Detail)
		}
	}

	// Isolation across tenants on a WAN (all-pairs routing): other tenants
	// reach the card, so the invariant reports violated from the start and
	// the initial verdict is recorded in the log.
	isoID, err := d.RVaaS.Subscribe(ap.ClientID, wire.QueryIsolation,
		ipConstraint(ap.HostIP), "", ap.Endpoint)
	if err != nil {
		t.Fatal(err)
	}
	if recs := d.RVaaS.ViolationLog().PerSub(isoID); len(recs) != 1 || recs[0].Event != history.EventViolation {
		t.Errorf("initially-violated isolation invariant not logged: %+v", recs)
	}
}

type rvaasSubInfo struct {
	violated bool
	detail   string
}

// TestSubscribeInBand drives the full wire path: agent subscribes via a
// magic-header packet, receives the signed ack, then a violation and a
// recovery notification as the network flaps underneath.
func TestSubscribeInBand(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{})
	aps := d.Topology.AccessPoints()
	agent := d.Agent(aps[0].ClientID)
	dst := aps[2]

	sub, err := agent.Subscribe(wire.QueryReachableDestinations, ipConstraint(dst.HostIP), "")
	if err != nil {
		t.Fatal(err)
	}
	if sub.InitialStatus != wire.StatusOK {
		t.Fatalf("initial status = %s (%s)", sub.InitialStatus, sub.InitialDetail)
	}

	mid := d.Topology.Switches()[1]
	drop := dropEntry(dst.HostIP)
	d.Fabric.Switch(mid).InstallDirect(drop)
	n := waitNotification(t, sub.C)
	if n.Event != wire.NotifyViolation || n.Status != wire.StatusViolation || n.SubID != sub.ID {
		t.Fatalf("notification = %+v", n)
	}

	d.Fabric.Switch(mid).RemoveDirect(drop)
	violation := n
	n = waitNotification(t, sub.C)
	if n.Event != wire.NotifyRecovery || n.Status != wire.StatusOK {
		t.Fatalf("notification = %+v", n)
	}
	if n.Seq != 2 {
		t.Errorf("seq = %d, want 2", n.Seq)
	}

	// Replaying the captured (genuinely signed) older violation must not
	// be delivered as a fresh event: its sequence is behind.
	dropsBefore := agent.NotificationsDropped()
	agent.HandleFrame(wire.NewNotificationPacket(aps[0].HostMAC, aps[0].HostIP, violation))
	if agent.NotificationsDropped() != dropsBefore+1 {
		t.Error("replayed stale notification not dropped")
	}
	select {
	case stray := <-sub.C:
		t.Fatalf("replayed notification delivered: %+v", stray)
	default:
	}

	if err := agent.Unsubscribe(sub); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C; ok {
		t.Error("channel not closed after unsubscribe")
	}
	if st := d.RVaaS.SubscriptionStats(); st.Active != 0 || st.Removed != 1 {
		t.Errorf("server stats = %+v", st)
	}
}

func waitNotification(t *testing.T, ch <-chan *wire.Notification) *wire.Notification {
	t.Helper()
	select {
	case n, ok := <-ch:
		if !ok {
			t.Fatal("notification channel closed")
		}
		return n
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for notification")
	}
	return nil
}

// TestForgedSubscriptionOpsRejected verifies subscription mutations are
// authenticated: ops not signed by the claimed client's registered key are
// rejected, so a co-tenant cannot disable a victim's standing monitoring.
func TestForgedSubscriptionOpsRejected(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{})
	aps := d.Topology.AccessPoints()
	victim := d.Agent(aps[0].ClientID)
	dst := aps[2]

	sub, err := victim.Subscribe(wire.QueryReachableDestinations, ipConstraint(dst.HostIP), "")
	if err != nil {
		t.Fatal(err)
	}

	// Attacker: a different tenant forging ops in the victim's name. The
	// signature is its own, so verification against the victim's
	// registered key must fail.
	attacker := aps[1]
	forge := func(op wire.SubscribeOp, subID uint64) {
		t.Helper()
		req := &wire.SubscribeRequest{
			Version:  wire.CurrentVersion,
			Op:       op,
			ClientID: aps[0].ClientID, // victim's identity
			Nonce:    0xF0F0_0001 + uint64(op),
			SubID:    subID,
			Kind:     wire.QueryReachableDestinations,
		}
		// Unsigned (and hence wrongly-signed) request straight onto the wire.
		pkt := wire.NewSubscribePacket(attacker.HostMAC, attacker.HostIP, req)
		if err := d.Fabric.InjectFromHost(attacker.Endpoint, pkt); err != nil {
			t.Fatal(err)
		}
	}
	forge(wire.SubOpRemove, sub.ID)
	forge(wire.SubOpAdd, 0)

	// A correctly-signed request whose signed anchor does not match the
	// actual ingress (a captured frame replayed from the attacker's port)
	// must be rejected too.
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	d.RVaaS.RegisterClient(999, pub)
	misanchored := &wire.SubscribeRequest{
		Version:      wire.CurrentVersion,
		Op:           wire.SubOpAdd,
		ClientID:     999,
		Nonce:        0xF0F0_0099,
		AnchorSwitch: uint32(aps[0].Endpoint.Switch), // victim's port
		AnchorPort:   uint32(aps[0].Endpoint.Port),
		Kind:         wire.QueryReachableDestinations,
	}
	misanchored.Signature = ed25519.Sign(priv, misanchored.SigningBytes())
	pkt := wire.NewSubscribePacket(attacker.HostMAC, attacker.HostIP, misanchored)
	if err := d.Fabric.InjectFromHost(attacker.Endpoint, pkt); err != nil { // replayed at attacker's port
		t.Fatal(err)
	}

	// Give the packets time to round-trip, then check nothing changed.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && d.RVaaS.Stats().PacketIns < 5 {
		time.Sleep(time.Millisecond)
	}
	st := d.RVaaS.SubscriptionStats()
	if st.Active != 1 || st.Removed != 0 {
		t.Fatalf("forged ops mutated state: %+v", st)
	}
	subs := d.RVaaS.Subscriptions()
	if len(subs) != 1 || subs[0].ID != sub.ID {
		t.Fatalf("victim's subscription gone: %+v", subs)
	}
}

// TestReplayedSubscribeRejected verifies that re-sending a valid signed
// subscribe frame (verbatim replay at the correct port) does not register
// a duplicate subscription.
func TestReplayedSubscribeRejected(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{})
	aps := d.Topology.AccessPoints()
	ap := aps[0]
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	d.RVaaS.RegisterClient(777, pub)
	req := &wire.SubscribeRequest{
		Version:      wire.CurrentVersion,
		Op:           wire.SubOpAdd,
		ClientID:     777,
		Nonce:        0xABAB_0001,
		AnchorSwitch: uint32(ap.Endpoint.Switch),
		AnchorPort:   uint32(ap.Endpoint.Port),
		Kind:         wire.QueryReachableDestinations,
		Constraints:  ipConstraint(aps[2].HostIP),
	}
	req.Signature = ed25519.Sign(priv, req.SigningBytes())
	for i := 0; i < 3; i++ {
		pkt := wire.NewSubscribePacket(ap.HostMAC, ap.HostIP, req)
		if err := d.Fabric.InjectFromHost(ap.Endpoint, pkt); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && d.RVaaS.SubscriptionStats().Registered < 1 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the replays land
	if st := d.RVaaS.SubscriptionStats(); st.Active != 1 || st.Registered != 1 {
		t.Fatalf("replayed subscribe registered duplicates: %+v", st)
	}

	// The nonce memory must survive unsubscription: replaying the captured
	// frame after the client removed the invariant must not resurrect it.
	id := d.RVaaS.Subscriptions()[0].ID
	if !d.RVaaS.Unsubscribe(777, id) {
		t.Fatal("unsubscribe failed")
	}
	pkt := wire.NewSubscribePacket(ap.HostMAC, ap.HostIP, req)
	if err := d.Fabric.InjectFromHost(ap.Endpoint, pkt); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if st := d.RVaaS.SubscriptionStats(); st.Active != 0 || st.Registered != 1 {
		t.Fatalf("post-unsubscribe replay resurrected the subscription: %+v", st)
	}

	// Removal by registration nonce (the lost-ack cleanup path) works for
	// a live subscription.
	req2 := &wire.SubscribeRequest{
		Version:      wire.CurrentVersion,
		Op:           wire.SubOpAdd,
		ClientID:     777,
		Nonce:        0xABAB_0002,
		AnchorSwitch: uint32(ap.Endpoint.Switch),
		AnchorPort:   uint32(ap.Endpoint.Port),
		Kind:         wire.QueryReachableDestinations,
		Constraints:  ipConstraint(aps[2].HostIP),
	}
	req2.Signature = ed25519.Sign(priv, req2.SigningBytes())
	if err := d.Fabric.InjectFromHost(ap.Endpoint, wire.NewSubscribePacket(ap.HostMAC, ap.HostIP, req2)); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(time.Second)
	for time.Now().Before(deadline) && d.RVaaS.SubscriptionStats().Active < 1 {
		time.Sleep(time.Millisecond)
	}
	rm := &wire.SubscribeRequest{
		Version:  wire.CurrentVersion,
		Op:       wire.SubOpRemove,
		ClientID: 777,
		Nonce:    0xABAB_0003,
		RefNonce: 0xABAB_0002,
	}
	rm.Signature = ed25519.Sign(priv, rm.SigningBytes())
	if err := d.Fabric.InjectFromHost(ap.Endpoint, wire.NewSubscribePacket(ap.HostMAC, ap.HostIP, rm)); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(time.Second)
	for time.Now().Before(deadline) && d.RVaaS.SubscriptionStats().Active > 0 {
		time.Sleep(time.Millisecond)
	}
	if st := d.RVaaS.SubscriptionStats(); st.Active != 0 {
		t.Fatalf("remove-by-nonce did not remove the subscription: %+v", st)
	}
}

// TestInterceptionRulesCoverSubscriptionPort ensures the self-rule tamper
// check counts the subscription interception rule too.
func TestInterceptionRulesCoverSubscriptionPort(t *testing.T) {
	d := deployLinear(t, 2, deploy.Options{SkipAgents: true})
	if rep := d.RVaaS.CheckSelfRules(); !rep.Clean() {
		t.Fatalf("interception rules missing: %+v", rep)
	}
	// Every switch must carry a rule matching the subscription port.
	for _, sw := range d.Topology.Switches() {
		found := false
		for _, e := range d.Fabric.Switch(sw).Table() {
			for _, f := range e.Match.Fields {
				if f.Field == wire.FieldL4Dst && f.Value == uint64(wire.PortRVaaSSub) {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("switch %d: no interception rule for the subscription port", sw)
		}
	}
}

// TestWedgedSubscriberDoesNotBlockRecheck: notification delivery is
// asynchronous and loss-tolerant, so a subscriber whose host handler never
// returns (wedging its switch's packet-out path) must not stall a
// re-verification pass — the engine's workers only ever enqueue.
func TestWedgedSubscriberDoesNotBlockRecheck(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{SkipAgents: true, ManualRecheck: true})
	aps := d.Topology.AccessPoints()
	dst := aps[2]

	wedge := make(chan struct{})
	t.Cleanup(func() { close(wedge) }) // unblock before d.Close tears down switches
	if err := d.Fabric.AttachHost(aps[0].Endpoint, func(pkt *wire.Packet) {
		if pkt.IsNotification() {
			<-wedge
		}
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := d.RVaaS.Subscribe(aps[0].ClientID, wire.QueryReachableDestinations,
		ipConstraint(dst.HostIP), "", aps[0].Endpoint); err != nil {
		t.Fatal(err)
	}

	mid := d.Topology.Switches()[1]
	drop := dropEntry(dst.HostIP)
	flip := func(install bool) {
		want := d.RVaaS.SnapshotID() + 1
		if install {
			d.Fabric.Switch(mid).InstallDirect(drop)
		} else {
			d.Fabric.Switch(mid).RemoveDirect(drop)
		}
		deadline := time.Now().Add(2 * time.Second)
		for d.RVaaS.SnapshotID() < want {
			if !time.Now().Before(deadline) {
				t.Fatal("churn event not absorbed")
			}
			time.Sleep(20 * time.Microsecond)
		}
		start := time.Now()
		d.RVaaS.RecheckNow()
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("recheck blocked %v behind a wedged subscriber", elapsed)
		}
	}
	// Two transitions: the first notification wedges the subscriber's
	// switch serve loop; the second must still commit promptly.
	flip(true)
	flip(false)

	st := d.RVaaS.SubscriptionStats()
	if st.Violations != 1 || st.Recoveries != 1 {
		t.Fatalf("transitions not committed behind wedged subscriber: %+v", st)
	}
	if st.NotificationsSent != 2 {
		t.Fatalf("notifications enqueued = %d, want 2", st.NotificationsSent)
	}
}

// TestGapRecoveryEndToEnd drives the full delivery-hole loop over the
// wire: a violation notification is lost in-network (the fire-and-forget
// Packet-Out hole), the next transition arrives with a skipped Seq, and
// the agent transparently resynchronizes via a current-verdict query
// (SubOpQueryVerdict) — keeping the SAME server-side subscription alive,
// no re-subscribe needed — ending with a resynchronized client that keeps
// receiving subsequent transitions.
func TestGapRecoveryEndToEnd(t *testing.T) {
	d := deployLinear(t, 3, deploy.Options{SkipAgents: true})
	aps := d.Topology.AccessPoints()
	ap, dst := aps[0], aps[2]

	agent, err := client.New(client.Config{
		ClientID: ap.ClientID,
		Access:   ap,
		NIC:      d.Fabric,
		Trust: client.TrustAnchors{
			PlatformRoot: d.Platform.RootKey(),
			Measurement:  rvaas.Measurement(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)
	agent.PinServerKey(d.RVaaS.PublicKey())
	d.RVaaS.RegisterClient(ap.ClientID, agent.PublicKey())
	// Interpose the agent's NIC receive path: while dropNotifs is set,
	// pushed notifications vanish in flight (droppedSeen counts them, so
	// the test can wait for the loss to have actually happened).
	var dropNotifs atomic.Bool
	var droppedSeen atomic.Uint64
	if err := d.Fabric.AttachHost(ap.Endpoint, func(pkt *wire.Packet) {
		if dropNotifs.Load() && pkt.IsNotification() {
			droppedSeen.Add(1)
			return
		}
		agent.HandleFrame(pkt)
	}); err != nil {
		t.Fatal(err)
	}

	sub, err := agent.Subscribe(wire.QueryReachableDestinations, ipConstraint(dst.HostIP), "")
	if err != nil {
		t.Fatal(err)
	}
	oldID := sub.ID

	// Lose the violation push in-network: delivery is re-enabled only
	// after the frame has demonstrably been dropped at the wire.
	dropNotifs.Store(true)
	mid := d.Topology.Switches()[1]
	drop := dropEntry(dst.HostIP)
	d.Fabric.Switch(mid).InstallDirect(drop)
	deadline := time.Now().Add(5 * time.Second)
	for droppedSeen.Load() == 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("violation notification never reached the wire")
		}
		time.Sleep(time.Millisecond)
	}
	dropNotifs.Store(false)

	// The recovery push (Seq 2) lands on a client that never saw Seq 1.
	d.Fabric.Switch(mid).RemoveDirect(drop)
	n := waitNotification(t, sub.C)
	if n.Event != wire.NotifyRecovery || n.Seq != 2 {
		t.Fatalf("post-gap notification = %+v", n)
	}

	var ev client.GapEvent
	select {
	case ev = <-agent.Gaps():
	case <-time.After(5 * time.Second):
		t.Fatal("no gap event surfaced")
	}
	if ev.Err != nil {
		t.Fatalf("gap recovery failed: %v", ev.Err)
	}
	if ev.SubID != oldID || ev.NewSubID != oldID {
		t.Fatalf("gap event = %+v, want in-place verdict-query resync of sub %d", ev, oldID)
	}
	if ev.MissedFrom != 1 || ev.MissedTo != 1 {
		t.Fatalf("missed range = [%d,%d], want [1,1]", ev.MissedFrom, ev.MissedTo)
	}
	if ev.Status != wire.StatusOK {
		t.Fatalf("resynchronized verdict = %v (%s)", ev.Status, ev.Detail)
	}

	// The server answered the resync from its retained verdict: the
	// subscription was never torn down or replaced.
	st := d.RVaaS.SubscriptionStats()
	if st.Active != 1 || st.Removed != 0 || st.Registered != 1 {
		t.Fatalf("verdict-query resync churned server state: %+v", st)
	}
	if st.VerdictQueries == 0 {
		t.Fatalf("no verdict query served: %+v", st)
	}

	// Monitoring continues seamlessly on the same subscription with the
	// original sequence stream.
	d.Fabric.Switch(mid).InstallDirect(drop)
	n = waitNotification(t, sub.C)
	if n.Event != wire.NotifyViolation || n.SubID != oldID || n.Seq != 3 {
		t.Fatalf("post-recovery notification = %+v", n)
	}
}
