package rvaas

import (
	"repro/internal/topology"
	"repro/internal/wire"
)

// Federation is the inter-provider query interface (paper §IV-C: "queries
// need to be propagated between the RVaaS servers of the respective
// providers"). Each provider's RVaaS implements it for its peers; the trust
// assumptions extend to the peer servers, which is why responses from peers
// are merged verbatim rather than re-verified.
type Federation interface {
	// FederatedRegions returns the regions traffic entering this provider
	// at the given endpoint (with the given header constraints) can
	// traverse, recursing further if needed.
	FederatedRegions(entry topology.Endpoint, constraints []wire.FieldConstraint) []string
	// FederatedReachable returns the endpoints (described as
	// provider-qualified strings) such traffic can reach.
	FederatedReachable(entry topology.Endpoint, constraints []wire.FieldConstraint) []string
}

// peering maps a local egress endpoint to a peer provider and the entry
// point on the peer's side.
type peering struct {
	peer  Federation
	name  string
	entry topology.Endpoint
}

// AddPeer declares that traffic leaving localEgress enters the named peer
// provider at peerEntry.
func (c *Controller) AddPeer(name string, localEgress topology.Endpoint, peer Federation, peerEntry topology.Endpoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peers[peeringKey(localEgress)] = peer
	c.peerEntries[peeringKey(localEgress)] = peerEntry
	c.peerNames[peeringKey(localEgress)] = name
}

func peeringKey(ep topology.Endpoint) string {
	return ep.String()
}

// peerAt returns the peer provider reachable through a local egress
// endpoint, with the entry point on the peer side.
func (c *Controller) peerAt(ep topology.Endpoint) (Federation, topology.Endpoint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	peer, ok := c.peers[peeringKey(ep)]
	if !ok {
		return nil, topology.Endpoint{}, false
	}
	return peer, c.peerEntries[peeringKey(ep)], true
}

// FederatedRegions implements Federation for this controller: it runs the
// geo analysis from the entry endpoint and recurses into further peers.
func (c *Controller) FederatedRegions(entry topology.Endpoint, constraints []wire.FieldConstraint) []string {
	net := c.CompiledNetwork()
	req := requesterInfo{sw: entry.Switch, port: entry.Port}
	resp := &wire.QueryResponse{Version: wire.CurrentVersion, Kind: wire.QueryGeoRegions}
	c.answerGeo(net, req, &wire.QueryRequest{Version: wire.CurrentVersion, Kind: wire.QueryGeoRegions, Constraints: constraints}, resp)
	return resp.Regions
}

// FederatedReachable implements Federation: endpoints reachable from the
// entry point, qualified as "switch:port" strings (topology details beyond
// endpoints stay confidential).
func (c *Controller) FederatedReachable(entry topology.Endpoint, constraints []wire.FieldConstraint) []string {
	net := c.CompiledNetwork()
	req := requesterInfo{sw: entry.Switch, port: entry.Port}
	eps := c.reachableEndpoints(net, req, &wire.QueryRequest{
		Version: wire.CurrentVersion, Kind: wire.QueryReachableDestinations, Constraints: constraints,
	})
	var out []string
	for _, de := range eps {
		out = append(out, de.ep.String())
		if peer, peerEntry, ok := c.peerAt(de.ep); ok {
			out = append(out, peer.FederatedReachable(peerEntry, constraints)...)
		}
	}
	return out
}

// Compile-time check: a Controller can serve as a federation peer.
var _ Federation = (*Controller)(nil)
