package controlplane

import (
	"sync"
	"testing"

	"repro/internal/fabric"
	"repro/internal/topology"
	"repro/internal/wire"
)

type mailbox struct {
	mu  sync.Mutex
	got []*wire.Packet
}

func (m *mailbox) handler(pkt *wire.Packet) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.got = append(m.got, pkt)
}

func (m *mailbox) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.got)
}

func buildLinear(t *testing.T, n int) (*fabric.Fabric, *Controller, []topology.AccessPoint) {
	t.Helper()
	topo, err := topology.Linear(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fabric.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	c := New(f)
	if err := c.InstallAllPairs(); err != nil {
		t.Fatal(err)
	}
	return f, c, topo.AccessPoints()
}

func udp(src, dst topology.AccessPoint) *wire.Packet {
	return &wire.Packet{
		EthDst: dst.HostMAC, EthSrc: src.HostMAC, EthType: wire.EthTypeIPv4,
		IPSrc: src.HostIP, IPDst: dst.HostIP,
		IPProto: wire.IPProtoUDP, TTL: 64, L4Src: 40000, L4Dst: 443,
	}
}

func TestAllPairsConnectivity(t *testing.T) {
	f, _, aps := buildLinear(t, 4)
	for i, src := range aps {
		for j, dst := range aps {
			if i == j {
				continue
			}
			var mb mailbox
			if err := f.AttachHost(dst.Endpoint, mb.handler); err != nil {
				t.Fatal(err)
			}
			if err := f.InjectFromHost(src.Endpoint, udp(src, dst)); err != nil {
				t.Fatal(err)
			}
			if mb.count() != 1 {
				t.Errorf("%s -> %s: delivered %d", src.Endpoint, dst.Endpoint, mb.count())
			}
			f.DetachHost(dst.Endpoint)
		}
	}
}

func TestUninstallDestination(t *testing.T) {
	f, c, aps := buildLinear(t, 3)
	c.UninstallDestination(aps[2].HostIP)
	var mb mailbox
	if err := f.AttachHost(aps[2].Endpoint, mb.handler); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectFromHost(aps[0].Endpoint, udp(aps[0], aps[2])); err != nil {
		t.Fatal(err)
	}
	if mb.count() != 0 {
		t.Error("traffic delivered after uninstall")
	}
}

func TestExfiltrationClonesTraffic(t *testing.T) {
	// Linear topology has no free ports, so use a star whose hub has spare
	// capacity? Simpler: grid with unused port numbers.
	topo, err := topology.Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Grid switch 1 (corner) uses ports 2(S),4(E),5(host): port 1 and 3 free.
	f, err := fabric.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := New(f)
	if err := c.InstallAllPairs(); err != nil {
		t.Fatal(err)
	}
	aps := topo.AccessPoints()
	victim := aps[3]                             // switch 4
	src := aps[0]                                // switch 1
	tap := topology.Endpoint{Switch: 4, Port: 1} // unused on sw4? port1=N link exists (2x2: sw4 has N link to sw2 via port1). Use port 3 (W is link to sw3)... compute a free port instead.
	tap = freeEdgePort(t, topo, 4)

	atk := &Exfiltration{VictimIP: victim.HostIP, Tap: tap}
	if err := atk.Launch(c); err != nil {
		t.Fatal(err)
	}
	var victimMB, tapMB mailbox
	if err := f.AttachHost(victim.Endpoint, victimMB.handler); err != nil {
		t.Fatal(err)
	}
	if err := f.AttachHost(tap, tapMB.handler); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectFromHost(src.Endpoint, udp(src, victim)); err != nil {
		t.Fatal(err)
	}
	if victimMB.count() != 1 {
		t.Errorf("victim deliveries = %d (attack must stay invisible)", victimMB.count())
	}
	if tapMB.count() != 1 {
		t.Errorf("tap deliveries = %d (exfiltration failed)", tapMB.count())
	}
	// Revert removes the clone.
	if err := atk.Revert(c); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectFromHost(src.Endpoint, udp(src, victim)); err != nil {
		t.Fatal(err)
	}
	if tapMB.count() != 1 {
		t.Error("tap still receiving after revert")
	}
}

// freeEdgePort finds an unwired, non-access-point port on a switch.
func freeEdgePort(t *testing.T, topo *topology.Topology, sw topology.SwitchID) topology.Endpoint {
	t.Helper()
	for p := topology.PortNo(1); p <= topo.PortCount(sw); p++ {
		ep := topology.Endpoint{Switch: sw, Port: p}
		if topo.IsInternal(ep) {
			continue
		}
		if _, used := topo.AccessPointAt(ep); used {
			continue
		}
		return ep
	}
	t.Fatalf("no free port on switch %d", sw)
	return topology.Endpoint{}
}

func TestJoinAttackGrantsAccess(t *testing.T) {
	topo, err := topology.Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fabric.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := New(f)
	if err := c.InstallAllPairs(); err != nil {
		t.Fatal(err)
	}
	aps := topo.AccessPoints()
	victim := aps[0]
	secret := freeEdgePort(t, topo, 4)
	attackerIP := wire.IPv4(172, 16, 6, 6)

	var victimMB mailbox
	if err := f.AttachHost(victim.Endpoint, victimMB.handler); err != nil {
		t.Fatal(err)
	}
	evilPkt := &wire.Packet{
		EthDst: victim.HostMAC, EthSrc: 0x66, EthType: wire.EthTypeIPv4,
		IPSrc: attackerIP, IPDst: victim.HostIP,
		IPProto: wire.IPProtoUDP, TTL: 64, L4Src: 6666, L4Dst: 22,
	}
	// Before the attack the secret port has no path to the victim (routing
	// matches IPDst but the secret host's packets do match the tree —
	// verify against the src-constrained rule instead: inject and count).
	base := victimMB.count()
	atk := &JoinAttack{VictimIP: victim.HostIP, SecretAP: secret, AttackerIP: attackerIP}
	if err := atk.Launch(c); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectFromHost(secret, evilPkt); err != nil {
		t.Fatal(err)
	}
	if victimMB.count() != base+1 {
		t.Errorf("join attack did not deliver (count=%d)", victimMB.count())
	}
	if err := atk.Revert(c); err != nil {
		t.Fatal(err)
	}
}

func TestNeutralityViolationDropsClass(t *testing.T) {
	f, c, aps := buildLinear(t, 3)
	victim := aps[2]
	atk := &NeutralityViolation{VictimIP: victim.HostIP, L4Dst: 443}
	if err := atk.Launch(c); err != nil {
		t.Fatal(err)
	}
	var mb mailbox
	if err := f.AttachHost(victim.Endpoint, mb.handler); err != nil {
		t.Fatal(err)
	}
	// Class 443 dropped.
	if err := f.InjectFromHost(aps[0].Endpoint, udp(aps[0], victim)); err != nil {
		t.Fatal(err)
	}
	if mb.count() != 0 {
		t.Error("throttled class delivered")
	}
	// Other traffic unaffected.
	other := udp(aps[0], victim)
	other.L4Dst = 80
	if err := f.InjectFromHost(aps[0].Endpoint, other); err != nil {
		t.Fatal(err)
	}
	if mb.count() != 1 {
		t.Error("unrelated class dropped")
	}
}

func TestTrafficDiversionLengthensPath(t *testing.T) {
	topo, err := topology.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fabric.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := New(f)
	if err := c.InstallAllPairs(); err != nil {
		t.Fatal(err)
	}
	aps := topo.AccessPoints()
	src, victim := aps[0], aps[1] // adjacent: sw1 -> sw2
	var mb mailbox
	if err := f.AttachHost(victim.Endpoint, mb.handler); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectFromHost(src.Endpoint, udp(src, victim)); err != nil {
		t.Fatal(err)
	}
	direct := f.LinkDeliveries()
	atk := &TrafficDiversion{VictimIP: victim.HostIP, Detour: 9} // far corner
	if err := atk.Launch(c); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectFromHost(src.Endpoint, udp(src, victim)); err != nil {
		t.Fatal(err)
	}
	diverted := f.LinkDeliveries() - direct
	if mb.count() != 2 {
		t.Fatalf("deliveries = %d, want 2 (diversion must still deliver)", mb.count())
	}
	if diverted <= direct {
		t.Errorf("diverted path (%d links) not longer than direct (%d)", diverted, direct)
	}
}

func TestFlapAttackPhases(t *testing.T) {
	f, c, aps := buildLinear(t, 3)
	victim := aps[2]
	flap := &FlapAttack{Inner: &NeutralityViolation{VictimIP: victim.HostIP, L4Dst: 443}}
	var mb mailbox
	if err := f.AttachHost(victim.Endpoint, mb.handler); err != nil {
		t.Fatal(err)
	}
	send := func() {
		if err := f.InjectFromHost(aps[0].Endpoint, udp(aps[0], victim)); err != nil {
			t.Fatal(err)
		}
	}
	send() // clean phase: delivered
	if err := flap.Launch(c); err != nil {
		t.Fatal(err)
	}
	if !flap.Active() {
		t.Error("flap should be active")
	}
	send() // attack phase: dropped
	if err := flap.Revert(c); err != nil {
		t.Fatal(err)
	}
	send() // clean again: delivered
	if mb.count() != 2 {
		t.Errorf("deliveries = %d, want 2", mb.count())
	}
	// Idempotent launch/revert.
	if err := flap.Revert(c); err != nil {
		t.Fatal(err)
	}
	if err := flap.Launch(c); err != nil {
		t.Fatal(err)
	}
	if err := flap.Revert(c); err != nil {
		t.Fatal(err)
	}
}

func TestGeoViolationReroutes(t *testing.T) {
	regions := []topology.Region{"eu", "offshore", "us"}
	topo, err := topology.MultiRegionWAN(regions, 3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fabric.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := New(f)
	if err := c.InstallAllPairs(); err != nil {
		t.Fatal(err)
	}
	aps := topo.AccessPoints()
	var src, dst topology.AccessPoint
	for _, ap := range aps {
		switch topo.RegionOf(ap.Endpoint.Switch) {
		case "eu":
			src = ap
		case "us":
			dst = ap
		}
	}
	// Route eu -> us via an offshore switch.
	var offshoreSw topology.SwitchID
	for _, sw := range topo.Switches() {
		if topo.RegionOf(sw) == "offshore" {
			offshoreSw = sw
			break
		}
	}
	f.SetTracing(true)
	var mb mailbox
	if err := f.AttachHost(dst.Endpoint, mb.handler); err != nil {
		t.Fatal(err)
	}
	atk := &GeoViolation{SrcIP: src.HostIP, DstIP: dst.HostIP, Via: offshoreSw}
	if err := atk.Launch(c); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectFromHost(src.Endpoint, udp(src, dst)); err != nil {
		t.Fatal(err)
	}
	if mb.count() != 1 {
		t.Fatal("geo-diverted packet not delivered")
	}
	// Ground truth: the trace must include a switch in the offshore region.
	seenOffshore := false
	for _, ev := range f.Trace() {
		if !ev.Host && ev.To.Switch != 0 && topo.RegionOf(ev.To.Switch) == "offshore" {
			seenOffshore = true
		}
	}
	if !seenOffshore {
		t.Error("traffic did not traverse the offshore region")
	}
}
