package controlplane

import (
	"fmt"

	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Attack is a compromise of the control plane: it mutates the data-plane
// configuration through the provider's legitimate control session. Launch
// installs the malicious state; Revert removes it (used by the flap attack
// and by experiments that restore the network between trials).
type Attack interface {
	Name() string
	Launch(c *Controller) error
	Revert(c *Controller) error
}

// attackPriority outranks legitimate routing so malicious rules win.
const attackPriority uint16 = 900

// TrafficDiversion re-routes traffic destined to VictimIP through the
// detour switch before delivering it, lengthening the path (and possibly
// changing the regions traversed). The paper's canonical "divert client
// traffic ... through undesired jurisdiction" attack.
type TrafficDiversion struct {
	VictimIP uint32
	// Detour is the switch the traffic must additionally traverse.
	Detour topology.SwitchID

	installed []placedEntry
}

type placedEntry struct {
	sw topology.SwitchID
	e  openflow.FlowEntry
}

// Name implements Attack.
func (a *TrafficDiversion) Name() string { return "traffic-diversion" }

// VLAN tags the diversion uses to steer traffic without looping: 0x29A
// ("to detour") and 0x29B ("returning from detour"). Real-world diversions
// use exactly this kind of tagging to override destination-based trees.
const (
	vlanToDetour   uint64 = 0x29A
	vlanFromDetour uint64 = 0x29B
)

// Launch implements Attack. Untagged victim-bound traffic is tagged and
// steered to the detour at the victim's upstream neighbours; tagged traffic
// follows explicit detour paths; the detour re-tags it for the return leg,
// and the victim's access switch strips the tag before delivery.
func (a *TrafficDiversion) Launch(c *Controller) error {
	ap, ok := c.topo.AccessPointByIP(a.VictimIP)
	if !ok {
		return fmt.Errorf("diversion: no access point with IP %s", wire.IPString(a.VictimIP))
	}
	victimSw := ap.Endpoint.Switch
	if a.Detour == victimSw {
		return fmt.Errorf("diversion: detour equals victim switch")
	}
	pathBack := c.topo.ShortestPath(a.Detour, victimSw)
	if pathBack == nil {
		return fmt.Errorf("diversion: detour %d cannot reach victim switch %d", a.Detour, victimSw)
	}
	place := func(sw topology.SwitchID, e openflow.FlowEntry) {
		c.InstallEntry(sw, e)
		a.installed = append(a.installed, placedEntry{sw, e})
	}
	matchVictim := func(vlan uint64) openflow.Match {
		return openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: uint64(a.VictimIP), Mask: 0xFFFFFFFF},
			{Field: wire.FieldVLAN, Value: vlan, Mask: 0xFFF},
		}}
	}
	// 1. Hijack untagged victim-bound traffic at the victim's neighbours.
	for _, nb := range c.topo.Neighbors(victimSw) {
		if nb.Peer == a.Detour {
			continue
		}
		path := c.topo.ShortestPath(nb.Peer, a.Detour)
		if path == nil || len(path) < 2 {
			continue
		}
		out := c.topo.PortTowards(nb.Peer, path[1])
		if out == 0 {
			continue
		}
		place(nb.Peer, openflow.FlowEntry{
			Priority: attackPriority,
			Match:    matchVictim(0),
			Actions: []openflow.Action{
				openflow.SetField(wire.FieldVLAN, vlanToDetour),
				openflow.Output(uint32(out)),
			},
			Cookie: CookieAttack | 1,
		})
	}
	// 2. Carry tagged traffic toward the detour on every other switch.
	for _, sw := range c.topo.Switches() {
		if sw == a.Detour {
			continue
		}
		path := c.topo.ShortestPath(sw, a.Detour)
		if path == nil || len(path) < 2 {
			continue
		}
		out := c.topo.PortTowards(sw, path[1])
		if out == 0 {
			continue
		}
		place(sw, openflow.FlowEntry{
			Priority: attackPriority + 1,
			Match:    matchVictim(vlanToDetour),
			Actions:  []openflow.Action{openflow.Output(uint32(out))},
			Cookie:   CookieAttack | 1,
		})
	}
	// 3. At the detour: re-tag for the return leg.
	if len(pathBack) >= 2 {
		out := c.topo.PortTowards(a.Detour, pathBack[1])
		place(a.Detour, openflow.FlowEntry{
			Priority: attackPriority + 1,
			Match:    matchVictim(vlanToDetour),
			Actions: []openflow.Action{
				openflow.SetField(wire.FieldVLAN, vlanFromDetour),
				openflow.Output(uint32(out)),
			},
			Cookie: CookieAttack | 1,
		})
	}
	// 4. Return leg: forward toward the victim, strip the tag on delivery.
	for i := 1; i < len(pathBack); i++ {
		sw := pathBack[i]
		if sw == victimSw {
			place(sw, openflow.FlowEntry{
				Priority: attackPriority + 1,
				Match:    matchVictim(vlanFromDetour),
				Actions: []openflow.Action{
					openflow.SetField(wire.FieldVLAN, 0),
					openflow.Output(uint32(ap.Endpoint.Port)),
				},
				Cookie: CookieAttack | 1,
			})
			continue
		}
		out := c.topo.PortTowards(sw, pathBack[i+1])
		place(sw, openflow.FlowEntry{
			Priority: attackPriority + 1,
			Match:    matchVictim(vlanFromDetour),
			Actions:  []openflow.Action{openflow.Output(uint32(out))},
			Cookie:   CookieAttack | 1,
		})
	}
	return nil
}

// Revert implements Attack.
func (a *TrafficDiversion) Revert(c *Controller) error {
	for _, pe := range a.installed {
		c.RemoveEntry(pe.sw, pe.e)
	}
	a.installed = nil
	return nil
}

// Exfiltration clones traffic destined to VictimIP out of an extra edge
// port (the attacker's unsupervised tap), while still delivering the
// original so the victim notices nothing.
type Exfiltration struct {
	VictimIP uint32
	// Tap is the edge endpoint the copies leave on.
	Tap topology.Endpoint

	installed []placedEntry
}

// Name implements Attack.
func (a *Exfiltration) Name() string { return "exfiltration" }

// Launch implements Attack.
func (a *Exfiltration) Launch(c *Controller) error {
	ap, ok := c.topo.AccessPointByIP(a.VictimIP)
	if !ok {
		return fmt.Errorf("exfiltration: no access point with IP %s", wire.IPString(a.VictimIP))
	}
	if c.topo.IsInternal(a.Tap) {
		return fmt.Errorf("exfiltration: tap %s is an internal port", a.Tap)
	}
	tapSw := a.Tap.Switch
	// On the tap switch: duplicate victim-bound traffic to both the normal
	// next hop and the tap port.
	var normalOut topology.PortNo
	if tapSw == ap.Endpoint.Switch {
		normalOut = ap.Endpoint.Port
	} else {
		path := c.topo.ShortestPath(tapSw, ap.Endpoint.Switch)
		if path == nil {
			return fmt.Errorf("exfiltration: tap switch cannot reach victim")
		}
		normalOut = c.topo.PortTowards(tapSw, path[1])
	}
	e := openflow.FlowEntry{
		Priority: attackPriority,
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: uint64(a.VictimIP), Mask: 0xFFFFFFFF},
		}},
		Actions: []openflow.Action{
			openflow.Output(uint32(normalOut)),
			openflow.Output(uint32(a.Tap.Port)),
		},
		Cookie: CookieAttack | 2,
	}
	c.InstallEntry(tapSw, e)
	a.installed = append(a.installed, placedEntry{tapSw, e})
	return nil
}

// Revert implements Attack.
func (a *Exfiltration) Revert(c *Controller) error {
	for _, pe := range a.installed {
		c.RemoveEntry(pe.sw, pe.e)
	}
	a.installed = nil
	return nil
}

// JoinAttack secretly connects an unsupervised access point into a victim's
// reachable set: "an attacker first manipulates the network operation, and
// secretly adds access points which can then be used to access and/or
// damage client assets" (§IV-B1).
type JoinAttack struct {
	VictimIP uint32
	// SecretAP is the unused edge port the attacker joins from.
	SecretAP topology.Endpoint
	// AttackerIP is the source address the attacker will use.
	AttackerIP uint32

	installed []placedEntry
}

// Name implements Attack.
func (a *JoinAttack) Name() string { return "join-attack" }

// Launch implements Attack: installs forwarding from the secret access
// point toward the victim on every switch along the path.
func (a *JoinAttack) Launch(c *Controller) error {
	ap, ok := c.topo.AccessPointByIP(a.VictimIP)
	if !ok {
		return fmt.Errorf("join: no access point with IP %s", wire.IPString(a.VictimIP))
	}
	if c.topo.IsInternal(a.SecretAP) {
		return fmt.Errorf("join: secret port %s is internal", a.SecretAP)
	}
	path := c.topo.ShortestPath(a.SecretAP.Switch, ap.Endpoint.Switch)
	if path == nil {
		return fmt.Errorf("join: secret switch cannot reach victim")
	}
	for i, sw := range path {
		var out topology.PortNo
		if i == len(path)-1 {
			out = ap.Endpoint.Port
		} else {
			out = c.topo.PortTowards(sw, path[i+1])
		}
		e := openflow.FlowEntry{
			Priority: attackPriority,
			Match: openflow.Match{Fields: []openflow.FieldMatch{
				{Field: wire.FieldIPSrc, Value: uint64(a.AttackerIP), Mask: 0xFFFFFFFF},
				{Field: wire.FieldIPDst, Value: uint64(a.VictimIP), Mask: 0xFFFFFFFF},
			}},
			Actions: []openflow.Action{openflow.Output(uint32(out))},
			Cookie:  CookieAttack | 3,
		}
		c.InstallEntry(sw, e)
		a.installed = append(a.installed, placedEntry{sw, e})
	}
	return nil
}

// Revert implements Attack.
func (a *JoinAttack) Revert(c *Controller) error {
	for _, pe := range a.installed {
		c.RemoveEntry(pe.sw, pe.e)
	}
	a.installed = nil
	return nil
}

// GeoViolation re-routes traffic between two hosts so it traverses a
// forbidden region (paper §IV-B2: "different jurisdictions exercise
// different privacy policies regarding user data").
type GeoViolation struct {
	SrcIP, DstIP uint32
	// Via is a switch inside the forbidden region the path must traverse.
	Via topology.SwitchID

	installed []placedEntry
}

// Name implements Attack.
func (a *GeoViolation) Name() string { return "geo-violation" }

// Launch implements Attack: hijacks (src,dst)-flow routing at the source's
// access switch toward Via, then from Via to the destination.
func (a *GeoViolation) Launch(c *Controller) error {
	srcAP, ok := c.topo.AccessPointByIP(a.SrcIP)
	if !ok {
		return fmt.Errorf("geo: unknown src %s", wire.IPString(a.SrcIP))
	}
	dstAP, ok := c.topo.AccessPointByIP(a.DstIP)
	if !ok {
		return fmt.Errorf("geo: unknown dst %s", wire.IPString(a.DstIP))
	}
	toVia := c.topo.ShortestPath(srcAP.Endpoint.Switch, a.Via)
	fromVia := c.topo.ShortestPath(a.Via, dstAP.Endpoint.Switch)
	if toVia == nil || fromVia == nil {
		return fmt.Errorf("geo: via switch unreachable")
	}
	match := openflow.Match{Fields: []openflow.FieldMatch{
		{Field: wire.FieldIPSrc, Value: uint64(a.SrcIP), Mask: 0xFFFFFFFF},
		{Field: wire.FieldIPDst, Value: uint64(a.DstIP), Mask: 0xFFFFFFFF},
	}}
	install := func(sw topology.SwitchID, out topology.PortNo) {
		e := openflow.FlowEntry{
			Priority: attackPriority,
			Match:    match,
			Actions:  []openflow.Action{openflow.Output(uint32(out))},
			Cookie:   CookieAttack | 4,
		}
		c.InstallEntry(sw, e)
		a.installed = append(a.installed, placedEntry{sw, e})
	}
	for i := 0; i+1 < len(toVia); i++ {
		install(toVia[i], c.topo.PortTowards(toVia[i], toVia[i+1]))
	}
	for i := 0; i+1 < len(fromVia); i++ {
		install(fromVia[i], c.topo.PortTowards(fromVia[i], fromVia[i+1]))
	}
	install(dstAP.Endpoint.Switch, dstAP.Endpoint.Port)
	return nil
}

// Revert implements Attack.
func (a *GeoViolation) Revert(c *Controller) error {
	for _, pe := range a.installed {
		c.RemoveEntry(pe.sw, pe.e)
	}
	a.installed = nil
	return nil
}

// NeutralityViolation silently drops (or could deprioritize) a victim's
// traffic class — e.g. a competing video service's UDP port — violating the
// neutrality conditions the paper lists among verifiable properties.
type NeutralityViolation struct {
	VictimIP uint32
	// L4Dst selects the traffic class being throttled.
	L4Dst uint16

	installed []placedEntry
}

// Name implements Attack.
func (a *NeutralityViolation) Name() string { return "neutrality-violation" }

// Launch implements Attack: a drop rule for the victim's class at its
// access switch.
func (a *NeutralityViolation) Launch(c *Controller) error {
	ap, ok := c.topo.AccessPointByIP(a.VictimIP)
	if !ok {
		return fmt.Errorf("neutrality: unknown victim %s", wire.IPString(a.VictimIP))
	}
	e := openflow.FlowEntry{
		Priority: attackPriority,
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: uint64(a.VictimIP), Mask: 0xFFFFFFFF},
			{Field: wire.FieldL4Dst, Value: uint64(a.L4Dst), Mask: 0xFFFF},
		}},
		Actions: nil, // drop
		Cookie:  CookieAttack | 5,
	}
	c.InstallEntry(ap.Endpoint.Switch, e)
	a.installed = append(a.installed, placedEntry{ap.Endpoint.Switch, e})
	return nil
}

// Revert implements Attack.
func (a *NeutralityViolation) Revert(c *Controller) error {
	for _, pe := range a.installed {
		c.RemoveEntry(pe.sw, pe.e)
	}
	a.installed = nil
	return nil
}

// MeterThrottle violates neutrality covertly: instead of dropping the
// victim's traffic class, it attaches a starvation-rate meter to it — the
// "meter tables meet network neutrality requirements" case of §IV-C.
// Reachability is unchanged; only the meter table betrays the attack.
type MeterThrottle struct {
	VictimIP uint32
	L4Dst    uint16
	RateKbps uint32

	meterSwitch topology.SwitchID
	meterID     uint32
	installed   []placedEntry
}

// Name implements Attack.
func (a *MeterThrottle) Name() string { return "meter-throttle" }

// Launch implements Attack.
func (a *MeterThrottle) Launch(c *Controller) error {
	ap, ok := c.topo.AccessPointByIP(a.VictimIP)
	if !ok {
		return fmt.Errorf("meter-throttle: unknown victim %s", wire.IPString(a.VictimIP))
	}
	a.meterSwitch = ap.Endpoint.Switch
	a.meterID = 0xBAD1
	rate := a.RateKbps
	if rate == 0 {
		rate = 8 // starvation: 1 KB/s
	}
	c.fab.Switch(a.meterSwitch).InstallMeterDirect(openflow.MeterConfig{
		MeterID: a.meterID, RateKbps: rate, BurstKB: 1,
	})
	e := openflow.FlowEntry{
		Priority: attackPriority,
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: uint64(a.VictimIP), Mask: 0xFFFFFFFF},
			{Field: wire.FieldL4Dst, Value: uint64(a.L4Dst), Mask: 0xFFFF},
		}},
		Actions: []openflow.Action{openflow.Output(uint32(ap.Endpoint.Port))},
		Cookie:  CookieAttack | 6,
		MeterID: a.meterID,
	}
	c.InstallEntry(a.meterSwitch, e)
	a.installed = append(a.installed, placedEntry{a.meterSwitch, e})
	return nil
}

// Revert implements Attack.
func (a *MeterThrottle) Revert(c *Controller) error {
	for _, pe := range a.installed {
		c.RemoveEntry(pe.sw, pe.e)
	}
	a.installed = nil
	if a.meterID != 0 {
		c.fab.Switch(a.meterSwitch).RemoveMeterDirect(a.meterID)
		a.meterID = 0
	}
	return nil
}

// FlapAttack wraps another attack and exposes explicit install/remove
// phases, modelling the adversary that "simply sets the correct rules for
// the short time periods in which the box checks the configuration" (§IV-A)
// — or conversely installs bad rules only between checks. Experiments drive
// the phases on a simulated clock.
type FlapAttack struct {
	Inner Attack
	// active tracks whether the inner attack is currently installed.
	active bool
}

// Name implements Attack.
func (a *FlapAttack) Name() string { return "flap(" + a.Inner.Name() + ")" }

// Launch implements Attack (enters the active phase).
func (a *FlapAttack) Launch(c *Controller) error {
	if a.active {
		return nil
	}
	if err := a.Inner.Launch(c); err != nil {
		return err
	}
	a.active = true
	return nil
}

// Revert implements Attack (enters the clean phase).
func (a *FlapAttack) Revert(c *Controller) error {
	if !a.active {
		return nil
	}
	if err := a.Inner.Revert(c); err != nil {
		return err
	}
	a.active = false
	return nil
}

// Active reports whether the malicious rules are currently installed.
func (a *FlapAttack) Active() bool { return a.active }

// Compile-time interface checks.
var (
	_ Attack = (*TrafficDiversion)(nil)
	_ Attack = (*Exfiltration)(nil)
	_ Attack = (*JoinAttack)(nil)
	_ Attack = (*GeoViolation)(nil)
	_ Attack = (*NeutralityViolation)(nil)
	_ Attack = (*MeterThrottle)(nil)
	_ Attack = (*FlapAttack)(nil)
)
