// Package controlplane implements the provider's SDN controller — the
// component the paper's threat model assumes can be compromised ("an
// external attacker which compromised the network management or control
// plane ... aims to change the data plane configuration, e.g., to divert
// client traffic to unsupervised access points or through undesired
// jurisdiction", §III). It computes legitimate shortest-path routing and
// exposes attack injectors that reproduce every misbehaviour class the
// paper discusses.
package controlplane

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Cookie ranges so experiments can tell legitimate rules from attack rules
// (RVaaS itself never sees this distinction — it must detect attacks from
// behaviour, not labels).
const (
	// CookieRouting marks legitimate provider routing rules.
	CookieRouting uint64 = 0x1000_0000
	// CookieAttack marks rules installed by a compromise (ground truth for
	// experiments only).
	CookieAttack uint64 = 0xBAD0_0000
)

// Programmer abstracts "apply this flow modification on that switch" so the
// provider control plane can program datapaths it does not host. The
// in-process fabric is the default implementation; a placed lab substitutes
// a programmer that routes the mod over the process trunk to the switchd
// child hosting the switch.
type Programmer interface {
	Program(sw topology.SwitchID, mod *openflow.FlowMod) error
}

// Controller is the provider's network controller.
type Controller struct {
	// fab is the in-process fabric (nil when programming runs through a
	// remote Programmer only; the attack simulators need a local fabric).
	fab  *fabric.Fabric
	topo *topology.Topology
	prog Programmer
	// priority of legitimate routing rules.
	routePriority uint16
}

// New binds a controller to a fabric.
func New(fab *fabric.Fabric) *Controller {
	return &Controller{fab: fab, topo: fab.Topology(), prog: fabricProgrammer{fab}, routePriority: 100}
}

// NewWithProgrammer binds a controller to an arbitrary programming plane —
// for deployments whose switches live (partly) in other processes. The
// attack/compromise simulators require an in-process fabric and must not be
// used on a controller built this way.
func NewWithProgrammer(topo *topology.Topology, prog Programmer) *Controller {
	return &Controller{topo: topo, prog: prog, routePriority: 100}
}

// Fabric returns the managed fabric (nil with a remote programming plane).
func (c *Controller) Fabric() *fabric.Fabric { return c.fab }

// fabricProgrammer applies flow mods to in-process datapaths.
type fabricProgrammer struct{ fab *fabric.Fabric }

func (p fabricProgrammer) Program(sw topology.SwitchID, mod *openflow.FlowMod) error {
	dp := p.fab.Switch(sw)
	if dp == nil {
		return fmt.Errorf("controlplane: no datapath for switch %d", sw)
	}
	return dp.ApplyFlowMod(mod)
}

// install / remove route one rule change through the programming plane.
func (c *Controller) install(sw topology.SwitchID, e openflow.FlowEntry) error {
	return c.prog.Program(sw, &openflow.FlowMod{Command: openflow.FlowAdd, Entry: e})
}

func (c *Controller) remove(sw topology.SwitchID, e openflow.FlowEntry) error {
	return c.prog.Program(sw, &openflow.FlowMod{Command: openflow.FlowDeleteStrict, Entry: e})
}

// InstallAllPairs installs destination-based shortest-path routing between
// every pair of access points.
func (c *Controller) InstallAllPairs() error {
	aps := c.topo.AccessPoints()
	for _, dst := range aps {
		if err := c.InstallDestinationTree(dst); err != nil {
			return err
		}
	}
	return nil
}

// InstallDestinationTree installs, on every switch, forwarding toward the
// given destination access point (a destination-rooted shortest-path tree,
// matching on exact IPDst).
func (c *Controller) InstallDestinationTree(dst topology.AccessPoint) error {
	for _, sw := range c.topo.Switches() {
		var out topology.PortNo
		if sw == dst.Endpoint.Switch {
			out = dst.Endpoint.Port
		} else {
			path := c.topo.ShortestPath(sw, dst.Endpoint.Switch)
			if path == nil {
				return fmt.Errorf("controlplane: switch %d cannot reach %s", sw, dst.Endpoint)
			}
			out = c.topo.PortTowards(sw, path[1])
			if out == 0 {
				return fmt.Errorf("controlplane: no port from %d toward %d", sw, path[1])
			}
		}
		if err := c.install(sw, routingEntry(c.routePriority, dst.HostIP, uint32(out))); err != nil {
			return err
		}
	}
	return nil
}

// routingEntry builds the canonical destination-based forwarding rule.
func routingEntry(prio uint16, dstIP uint32, outPort uint32) openflow.FlowEntry {
	return openflow.FlowEntry{
		Priority: prio,
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: uint64(dstIP), Mask: 0xFFFFFFFF},
		}},
		Actions: []openflow.Action{openflow.Output(outPort)},
		Cookie:  CookieRouting | uint64(dstIP&0xFFFFFF),
	}
}

// InstallTenantRouting installs isolated per-tenant routing: for every pair
// of access points belonging to the same client, a source-and-destination
// matched path with ingress-port pinning at every hop. Ports not on a
// tenant path cannot inject traffic into the tenant's flows — the isolation
// property the paper's first case study verifies (§IV-B1).
func (c *Controller) InstallTenantRouting() error {
	aps := c.topo.AccessPoints()
	for _, src := range aps {
		for _, dst := range aps {
			if src.ClientID != dst.ClientID || src.Endpoint == dst.Endpoint {
				continue
			}
			if err := c.installPinnedPath(src, dst); err != nil {
				return err
			}
		}
	}
	return nil
}

// installPinnedPath installs the (src -> dst) flow along the shortest path,
// matching IPSrc, IPDst and the expected ingress port on every switch.
func (c *Controller) installPinnedPath(src, dst topology.AccessPoint) error {
	path := c.topo.ShortestPath(src.Endpoint.Switch, dst.Endpoint.Switch)
	if path == nil {
		return fmt.Errorf("controlplane: no path %s -> %s", src.Endpoint, dst.Endpoint)
	}
	inPort := src.Endpoint.Port
	for i, sw := range path {
		var out topology.PortNo
		if i == len(path)-1 {
			out = dst.Endpoint.Port
		} else {
			out = c.topo.PortTowards(sw, path[i+1])
			if out == 0 {
				return fmt.Errorf("controlplane: no port from %d toward %d", sw, path[i+1])
			}
		}
		e := openflow.FlowEntry{
			Priority: c.routePriority + 100,
			Match: openflow.Match{
				InPort: uint32(inPort),
				Fields: []openflow.FieldMatch{
					{Field: wire.FieldIPSrc, Value: uint64(src.HostIP), Mask: 0xFFFFFFFF},
					{Field: wire.FieldIPDst, Value: uint64(dst.HostIP), Mask: 0xFFFFFFFF},
				},
			},
			Actions: []openflow.Action{openflow.Output(uint32(out))},
			Cookie:  CookieRouting | uint64(src.HostIP&0xFFF)<<12 | uint64(dst.HostIP&0xFFF),
		}
		if err := c.install(sw, e); err != nil {
			return err
		}
		if i < len(path)-1 {
			// The far end of this hop is the next switch's ingress port.
			peer, ok := c.topo.Peer(topology.Endpoint{Switch: sw, Port: out})
			if !ok {
				return fmt.Errorf("controlplane: port %d/%d unexpectedly unwired", sw, out)
			}
			inPort = peer.Port
		}
	}
	return nil
}

// UninstallDestination removes the destination tree for an IP.
func (c *Controller) UninstallDestination(dstIP uint32) {
	for _, sw := range c.topo.Switches() {
		_ = c.remove(sw, routingEntry(c.routePriority, dstIP, 0))
	}
}

// InstallEntry places an arbitrary rule on a switch through the provider's
// (untrusted) control session. Attacks use this.
func (c *Controller) InstallEntry(sw topology.SwitchID, e openflow.FlowEntry) {
	_ = c.install(sw, e)
}

// RemoveEntry removes a rule (strict match) through the provider session.
func (c *Controller) RemoveEntry(sw topology.SwitchID, e openflow.FlowEntry) {
	_ = c.remove(sw, e)
}
