package verifier

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/headerspace"
	"repro/internal/topology"
	"repro/internal/wire"
)

// fakeEnv is a deterministic host: an invariant anchored at switch s is
// violated iff s is in the violated set, and its footprint is {s, s+100}
// (the second node models a downstream switch the reachability cone
// traverses).
type fakeEnv struct {
	mu          sync.Mutex
	violated    map[topology.SwitchID]bool
	evaluations int
	transitions []Transition
}

func (e *fakeEnv) Evaluate(net *headerspace.Network, sub *Subscription, dirty []headerspace.NodeID, deltas map[headerspace.NodeID]headerspace.Delta, fullSweep, pooled bool) Verdict {
	e.mu.Lock()
	bad := e.violated[sub.Anchor.Switch]
	e.evaluations++
	e.mu.Unlock()
	fp := headerspace.NewFootprint()
	fp.AddSlice(headerspace.NodeID(sub.Anchor.Switch), headerspace.FullSpace(8))
	fp.AddSlice(headerspace.NodeID(sub.Anchor.Switch)+100, headerspace.FullSpace(8))
	detail := "ok"
	if bad {
		detail = "violated"
	}
	return Verdict{Violated: bad, Detail: detail, FP: fp}
}

func (e *fakeEnv) Commit(t Transition) {
	e.mu.Lock()
	e.transitions = append(e.transitions, t)
	e.mu.Unlock()
}

func (e *fakeEnv) evalCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evaluations
}

func fakeBuild() (*headerspace.Network, uint64) { return nil, 1 }

func mkSub(t *testing.T, client uint64, sw topology.SwitchID) *Subscription {
	t.Helper()
	sub, err := NewSubscription(client, Source{}, wire.QueryReachableDestinations, nil, "",
		Anchor{Switch: sw, Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func registerN(t *testing.T, f *Fleet, n int) []*Subscription {
	t.Helper()
	subs := make([]*Subscription, 0, n)
	for i := 0; i < n; i++ {
		subs = append(subs, mkSub(t, 1, topology.SwitchID(i%16)))
	}
	f.RegisterBatch(subs, EvalContext{Build: fakeBuild, Workers: 4})
	return subs
}

func TestPlacementDeterministic(t *testing.T) {
	f := New(Config{Instances: 4}, &fakeEnv{violated: map[topology.SwitchID]bool{}})
	sub := mkSub(t, 1, 7)
	sub.ID = 42
	a := f.place(sub)
	for i := 0; i < 10; i++ {
		if got := f.place(sub); got != a {
			t.Fatalf("placement not deterministic: %d then %d", a, got)
		}
	}
	// Same anchor switch → same instance under footprint placement,
	// regardless of id.
	other := mkSub(t, 2, 7)
	other.ID = 9999
	if got := f.place(other); got != a {
		t.Fatalf("footprint placement split anchor switch 7 across instances %d and %d", a, got)
	}
	// Isolation spreads by id, not anchor.
	iso, err := NewSubscription(1, Source{}, wire.QueryIsolation, nil, "", Anchor{Switch: 7})
	if err != nil {
		t.Fatal(err)
	}
	spread := map[int]bool{}
	for id := uint64(1); id <= 64; id++ {
		iso.ID = id
		spread[f.place(iso)] = true
	}
	if len(spread) < 2 {
		t.Fatal("isolation invariants all landed on one instance; expected id spread")
	}
}

func TestFleetN1MatchesN4(t *testing.T) {
	run := func(n int) ([]SubState, FleetStats) {
		env := &fakeEnv{violated: map[topology.SwitchID]bool{3: true}}
		f := New(Config{Instances: n}, env)
		registerN(t, f, 64)
		// Flip switch 5's invariants to violated and re-verify only its
		// bucket.
		env.mu.Lock()
		env.violated[5] = true
		env.mu.Unlock()
		f.Run(Pass{
			Build:    fakeBuild,
			Dirty:    []headerspace.NodeID{5},
			Dispatch: []headerspace.NodeID{5},
			Workers:  4,
		})
		return f.List(), f.Stats()
	}
	l1, s1 := run(1)
	l4, s4 := run(4)
	if len(l1) != len(l4) {
		t.Fatalf("population diverged: %d vs %d", len(l1), len(l4))
	}
	for i := range l1 {
		a, b := l1[i], l4[i]
		if a.ID != b.ID || a.Violated != b.Violated || a.Detail != b.Detail || a.Seq != b.Seq {
			t.Fatalf("sub %d diverged between N=1 and N=4:\n  %+v\n  %+v", a.ID, a, b)
		}
	}
	if s1.Evaluated != s4.Evaluated || s1.Violations != s4.Violations ||
		s1.Rechecks != s4.Rechecks || s1.Revalidated != s4.Revalidated ||
		s1.IndexDispatched != s4.IndexDispatched {
		t.Fatalf("counters diverged:\nN=1 %+v\nN=4 %+v", s1, s4)
	}
}

func TestDispatchConfinement(t *testing.T) {
	env := &fakeEnv{violated: map[topology.SwitchID]bool{}}
	f := New(Config{Instances: 4}, env)
	registerN(t, f, 64)
	before := env.evalCount()

	dirty := []headerspace.NodeID{5}
	owning := f.InstancesOwning(dirty)
	if len(owning) == 0 || len(owning) == f.Size() {
		t.Fatalf("expected a strict subset of instances to own bucket 5, got %v", owning)
	}
	f.Run(Pass{Build: fakeBuild, Dirty: dirty, Dispatch: dirty, Workers: 4})

	st := f.Stats()
	if got := int(st.InstanceDispatches); got != len(owning) {
		t.Fatalf("pass visited %d instances, owning set is %v", got, owning)
	}
	// Only the owning instances evaluated anything.
	for i, is := range f.InstanceStats() {
		owns := false
		for _, o := range owning {
			if o == i {
				owns = true
			}
		}
		evals := is.Evaluated - is.Registered // registration evals counted too
		if !owns && evals > 0 {
			t.Fatalf("non-owning instance %d evaluated %d invariants", i, evals)
		}
	}
	if env.evalCount() == before {
		t.Fatal("pass evaluated nothing")
	}
}

func TestFleetUnsubscribeAndConsistency(t *testing.T) {
	f := New(Config{Instances: 4}, &fakeEnv{violated: map[topology.SwitchID]bool{}})
	subs := registerN(t, f, 32)
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs[:10] {
		if !f.Unsubscribe(1, sub.ID) {
			t.Fatalf("unsubscribe %d failed", sub.ID)
		}
	}
	if f.Unsubscribe(2, subs[15].ID) {
		t.Fatal("unsubscribe with wrong client succeeded")
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.Active != 22 {
		t.Fatalf("active = %d, want 22", st.Active)
	}
}

func TestFleetRebalance(t *testing.T) {
	f := New(Config{Instances: 4, Placement: PlaceRendezvous}, &fakeEnv{violated: map[topology.SwitchID]bool{}})
	registerN(t, f, 64)
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	f.SetPlacement(PlaceFootprint)
	moved := f.Rebalance()
	if moved == 0 {
		t.Fatal("policy switch moved nothing; expected anchors to regroup")
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatalf("rebalance broke consistency: %v", err)
	}
	// Post-rebalance, each anchor switch lives on exactly one instance.
	perSwitch := make(map[topology.SwitchID]map[int]bool)
	for _, s := range f.List() {
		if perSwitch[s.Anchor.Switch] == nil {
			perSwitch[s.Anchor.Switch] = make(map[int]bool)
		}
		perSwitch[s.Anchor.Switch][s.Instance] = true
	}
	for sw, insts := range perSwitch {
		if len(insts) != 1 {
			t.Fatalf("anchor switch %d spread across %d instances after rebalance", sw, len(insts))
		}
	}
	// Stats survive the move.
	st := f.Stats()
	if st.Active != 64 {
		t.Fatalf("active = %d after rebalance, want 64", st.Active)
	}
}

func TestFleetNonceReplay(t *testing.T) {
	f := New(Config{Instances: 2}, &fakeEnv{violated: map[topology.SwitchID]bool{}})
	if !f.RecordNonce(1, 77) {
		t.Fatal("fresh nonce rejected")
	}
	if f.RecordNonce(1, 77) {
		t.Fatal("replayed nonce accepted")
	}
	if !f.RecordNonce(2, 77) {
		t.Fatal("nonce window leaked across clients")
	}
	// Window bound: the oldest nonce ages out.
	for i := uint64(0); i < maxSeenNoncesPerClient; i++ {
		f.RecordNonce(3, 1000+i)
	}
	f.RecordNonce(3, 5000)
	if !f.RecordNonce(3, 1000) {
		t.Fatal("oldest nonce did not age out of the bounded window")
	}
}

func TestFleetResumeSliceOrdering(t *testing.T) {
	f := New(Config{Instances: 4}, &fakeEnv{violated: map[topology.SwitchID]bool{}})
	var subs []*Subscription
	for i := 0; i < 24; i++ {
		sub, err := NewSubscription(9, Source{SessionID: 55, Proto: 2},
			wire.QueryReachableDestinations, nil, "", Anchor{Switch: topology.SwitchID(i), Port: 1})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	f.RegisterBatch(subs, EvalContext{Build: fakeBuild, Workers: 4})
	slice := f.ResumeSlice(9, 55)
	if len(slice) != 24 {
		t.Fatalf("resume slice has %d entries, want 24", len(slice))
	}
	if !sort.SliceIsSorted(slice, func(i, j int) bool { return slice[i].ID < slice[j].ID }) {
		t.Fatal("resume slice not id-ordered")
	}
	if got := f.ResumeSlice(9, 56); len(got) != 0 {
		t.Fatalf("wrong session returned %d entries", len(got))
	}
}

func TestUnsubscribeDuringEvaluationDropsCommit(t *testing.T) {
	// An unsubscribe that lands between Evaluate and commit must not
	// resurrect the subscription in the index.
	env := &fakeEnv{violated: map[topology.SwitchID]bool{}}
	f := New(Config{Instances: 1}, env)
	sub := mkSub(t, 1, 3)
	ins := f.Instance(0)
	sub.ID = f.nextID.Add(1)
	f.setOwner(sub.ID, 0)
	sh := ins.shardFor(sub.ID)
	sh.mu.Lock()
	sh.subs[sub.ID] = sub
	sh.mu.Unlock()
	v := env.Evaluate(nil, sub, nil, nil, true, false)
	if !f.Unsubscribe(1, sub.ID) {
		t.Fatal("unsubscribe failed")
	}
	ins.commit(sub, v, 1, false)
	if err := f.CheckConsistency(); err != nil {
		t.Fatalf("late commit corrupted the index: %v", err)
	}
	if st := f.Stats(); st.Active != 0 || st.IndexEntries != 0 {
		t.Fatalf("late commit resurrected state: %+v", st)
	}
}

func TestTransitionSemantics(t *testing.T) {
	env := &fakeEnv{violated: map[topology.SwitchID]bool{4: true}}
	f := New(Config{Instances: 2}, env)
	ok := mkSub(t, 1, 2)
	bad := mkSub(t, 1, 4)
	f.RegisterBatch([]*Subscription{ok, bad}, EvalContext{Build: fakeBuild, Workers: 1})

	env.mu.Lock()
	firsts := 0
	for _, tr := range env.transitions {
		if !tr.First {
			t.Fatalf("registration commit not marked First: %+v", tr)
		}
		if tr.Notify {
			t.Fatalf("registration commit must not notify: %+v", tr)
		}
		firsts++
	}
	env.transitions = nil
	env.mu.Unlock()
	if firsts != 2 {
		t.Fatalf("expected 2 first commits, got %d", firsts)
	}
	if s, _ := f.View(ok.ID); s.Seq != 0 || s.Violated {
		t.Fatalf("healthy initial verdict wrong: %+v", s)
	}
	if s, _ := f.View(bad.ID); s.Seq != 1 || !s.Violated {
		t.Fatalf("violated initial verdict wrong: %+v", s)
	}

	// Recover switch 4: exactly one Changed+Notify transition, seq 2.
	env.mu.Lock()
	env.violated[4] = false
	env.mu.Unlock()
	f.Run(Pass{Build: fakeBuild, Force: true, Workers: 1})
	env.mu.Lock()
	defer env.mu.Unlock()
	if len(env.transitions) != 1 {
		t.Fatalf("recovery pass emitted %d transitions, want 1 (unchanged sub must not re-commit)", len(env.transitions))
	}
	tr := env.transitions[0]
	if tr.Sub.ID != bad.ID || !tr.Changed || tr.First || !tr.Notify || tr.Seq != 2 || tr.Violated {
		t.Fatalf("recovery transition wrong: %+v", tr)
	}
}

func TestParsePlacement(t *testing.T) {
	for s, want := range map[string]Placement{"": PlaceFootprint, "footprint": PlaceFootprint, "rendezvous": PlaceRendezvous} {
		got, err := ParsePlacement(s)
		if err != nil || got != want {
			t.Fatalf("ParsePlacement(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePlacement("random"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestRestoreJoinsNextPass(t *testing.T) {
	env := &fakeEnv{violated: map[topology.SwitchID]bool{}}
	f := New(Config{Instances: 4}, env)
	f.EnsureNextID(100)
	for i := 0; i < 8; i++ {
		sub := mkSub(t, 1, topology.SwitchID(i))
		sub.ID = uint64(i + 1)
		sub.Violated = true
		sub.Evaluated = true
		sub.Seq = 3
		sub.NeedsFullEval = true
		sub.FP = headerspace.NewFootprint()
		f.Restore(sub)
	}
	if !f.HasPendingRestore() {
		t.Fatal("restores not pending")
	}
	// An indexed pass with an unrelated dirty set must still pick up every
	// restored subscription (their footprints are empty, so only the
	// pending-restore path can reach them).
	evaluated := f.Run(Pass{Build: fakeBuild, Dirty: []headerspace.NodeID{99}, Dispatch: []headerspace.NodeID{99}, Workers: 2})
	if evaluated != 8 {
		t.Fatalf("pass evaluated %d, want all 8 restored", evaluated)
	}
	if f.HasPendingRestore() {
		t.Fatal("restores still pending after pass")
	}
	// All recovered (fake env says healthy): seq advanced 3 → 4.
	for _, s := range f.List() {
		if s.Violated || s.Seq != 4 {
			t.Fatalf("restored sub %d: %+v, want recovered seq 4", s.ID, s)
		}
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Fresh registrations continue past the restored id range.
	fresh := mkSub(t, 1, 1)
	f.Register(fresh, EvalContext{Build: fakeBuild, Workers: 1})
	if fresh.ID <= 100 {
		t.Fatalf("fresh id %d collides with restored range", fresh.ID)
	}
}

func TestBuildSharedAcrossInstances(t *testing.T) {
	builds := 0
	build := func() (*headerspace.Network, uint64) {
		builds++
		return nil, 1
	}
	f := New(Config{Instances: 4}, &fakeEnv{violated: map[topology.SwitchID]bool{}})
	var subs []*Subscription
	for i := 0; i < 32; i++ {
		subs = append(subs, mkSub(t, 1, topology.SwitchID(i)))
	}
	f.RegisterBatch(subs, EvalContext{Build: build, Workers: 1})
	if builds != 1 {
		t.Fatalf("registration compiled the network %d times, want 1", builds)
	}
	builds = 0
	f.Run(Pass{Build: build, Force: true, Workers: 1})
	if builds != 1 {
		t.Fatalf("pass compiled the network %d times, want 1", builds)
	}
}

func TestLegacyScanSequential(t *testing.T) {
	env := &fakeEnv{violated: map[topology.SwitchID]bool{}}
	f := New(Config{Instances: 4}, env)
	registerN(t, f, 32)
	f.SetLegacyScan(true)
	before := env.evalCount()
	// Legacy bypasses the index with a linear footprint scan: same
	// selection (footprints touching the dirty switch — the two invariants
	// anchored at 5) reached without bucket lookups.
	n := f.Run(Pass{Build: fakeBuild, Dirty: []headerspace.NodeID{5}, Dispatch: []headerspace.NodeID{5}, Workers: 8})
	if n != 2 {
		t.Fatalf("legacy pass evaluated %d, want the 2 invariants anchored at switch 5", n)
	}
	if env.evalCount()-before != 2 {
		t.Fatalf("legacy pass ran %d evaluations, want 2", env.evalCount()-before)
	}
	st := f.Stats()
	if st.Passes != 0 {
		t.Fatalf("legacy pass counted as indexed: %+v", st)
	}
}

func TestRendezvousBalance(t *testing.T) {
	f := New(Config{Instances: 4, Placement: PlaceRendezvous}, &fakeEnv{violated: map[topology.SwitchID]bool{}})
	counts := make([]int, 4)
	for id := uint64(1); id <= 4096; id++ {
		sub := &Subscription{ID: id, Kind: wire.QueryReachableDestinations}
		counts[f.place(sub)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1350 {
			t.Fatalf("instance %d got %d of 4096 ids (counts %v); rendezvous badly skewed", i, c, counts)
		}
	}
}

func TestNewSubscriptionValidation(t *testing.T) {
	if _, err := NewSubscription(1, Source{}, wire.QueryPathLength, nil, "seven", Anchor{}); err == nil {
		t.Fatal("non-integer path bound accepted")
	}
	sub, err := NewSubscription(1, Source{}, wire.QueryPathLength, nil, "7", Anchor{})
	if err != nil || sub.Bound != 7 {
		t.Fatalf("path bound not parsed: %v %+v", err, sub)
	}
	if _, err := NewSubscription(1, Source{}, wire.QueryKind(200), nil, "", Anchor{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestInstanceStatsShape(t *testing.T) {
	f := New(Config{Instances: 3}, &fakeEnv{violated: map[topology.SwitchID]bool{2: true}})
	registerN(t, f, 16)
	per := f.InstanceStats()
	if len(per) != 3 {
		t.Fatalf("got %d instance stats, want 3", len(per))
	}
	var active, reg int
	for i, is := range per {
		if is.Instance != i {
			t.Fatalf("instance stat %d labeled %d", i, is.Instance)
		}
		active += is.Active
		reg += int(is.Registered)
	}
	if active != 16 || reg != 16 {
		t.Fatalf("per-instance totals active=%d registered=%d, want 16/16", active, reg)
	}
	agg := f.Stats()
	if agg.Active != 16 || agg.Instances != 3 || agg.Placement != "footprint" {
		t.Fatalf("aggregate stats wrong: %+v", agg)
	}
	if agg.Violated == 0 {
		t.Fatal("violated count lost in aggregation")
	}
	sh := f.ShardStats()
	if len(sh) != ShardCount {
		t.Fatalf("shard stats length %d, want %d", len(sh), ShardCount)
	}
	shardActive := 0
	for _, s := range sh {
		shardActive += s.Active
	}
	if shardActive != 16 {
		t.Fatalf("shard stats active sum %d, want 16", shardActive)
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits
