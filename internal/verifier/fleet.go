package verifier

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/headerspace"
	"repro/internal/wire"
)

// Placement selects the owning instance for a subscription.
type Placement int

const (
	// PlaceFootprint (the default) keys anchor-rooted invariants by their
	// anchor switch: the footprint of a reachability/path-length/waypoint
	// invariant is the reachability cone rooted there, so invariants
	// sharing a root share index buckets and a single-switch event
	// dispatches to few instances. Isolation invariants sweep the whole
	// fabric (every injection point), so no switch key confines them;
	// they spread by id to balance load.
	PlaceFootprint Placement = iota
	// PlaceRendezvous hashes the subscription id alone — uniform spread,
	// no locality. The ablation arm for E18.
	PlaceRendezvous
)

// ParsePlacement maps the labspec/admin policy names.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "", "footprint":
		return PlaceFootprint, nil
	case "rendezvous":
		return PlaceRendezvous, nil
	default:
		return 0, fmt.Errorf("verifier: unknown placement policy %q", s)
	}
}

func (p Placement) String() string {
	switch p {
	case PlaceFootprint:
		return "footprint"
	case PlaceRendezvous:
		return "rendezvous"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Config parameterizes a fleet.
type Config struct {
	// Instances is the verifier count (<=0 selects 1).
	Instances int
	Placement Placement
	// Parallelism bounds the evaluation fan-out per pass across the whole
	// fleet (0 = GOMAXPROCS at pass time).
	Parallelism int
}

// maxSeenNoncesPerClient bounds the per-client replay window, matching
// the single-engine limit.
const maxSeenNoncesPerClient = 1024

type clientNonces struct {
	seen  map[uint64]struct{}
	order []uint64
}

// Fleet routes standing invariants across N verifier instances. Global
// identity — subscription ids, replay nonces, id → instance ownership —
// lives here; per-invariant verification state lives in the owning
// instance. With Instances=1 the fleet adds no partitioning and its
// counters match the pre-extraction engine's.
type Fleet struct {
	env       Env
	instances []*Instance

	nextID atomic.Uint64

	nonceMu    sync.Mutex
	seenNonces map[uint64]*clientNonces

	ownerMu sync.RWMutex
	owner   map[uint64]int

	placement   atomic.Int64
	parallelism atomic.Int64
	legacyScan  atomic.Bool
	perSwitch   atomic.Bool

	// Pass-level accounting. The pre-fleet engine counted a recheck pass
	// (and credited revalidated-for-free) whenever any subscription was
	// active, even if no index bucket matched — only the fleet sees every
	// instance, so the parity-critical counters live here.
	rechecks           atomic.Uint64
	revalidated        atomic.Uint64
	passes             atomic.Uint64
	instanceDispatches atomic.Uint64
}

// New builds a fleet of cfg.Instances verifier instances sharing one host
// Env.
func New(cfg Config, env Env) *Fleet {
	n := cfg.Instances
	if n <= 0 {
		n = 1
	}
	f := &Fleet{
		env:        env,
		seenNonces: make(map[uint64]*clientNonces),
		owner:      make(map[uint64]int),
	}
	for i := 0; i < n; i++ {
		f.instances = append(f.instances, NewInstance(i, env))
	}
	f.placement.Store(int64(cfg.Placement))
	f.parallelism.Store(int64(cfg.Parallelism))
	return f
}

// Size returns the instance count.
func (f *Fleet) Size() int { return len(f.instances) }

// Instance returns instance i (for tests and the differential harness).
func (f *Fleet) Instance(i int) *Instance { return f.instances[i] }

// SetPlacement switches the placement policy for subsequent registrations
// (existing placements move only on Rebalance).
func (f *Fleet) SetPlacement(p Placement) { f.placement.Store(int64(p)) }

// GetPlacement returns the active placement policy.
func (f *Fleet) GetPlacement() Placement { return Placement(f.placement.Load()) }

// SetParallelism bounds the per-pass evaluation fan-out (0 restores
// GOMAXPROCS).
func (f *Fleet) SetParallelism(n int) { f.parallelism.Store(int64(n)) }

// Parallelism returns the configured fan-out bound.
func (f *Fleet) Parallelism() int { return int(f.parallelism.Load()) }

// SetLegacyScan toggles the pre-sharding ablation (linear scan,
// sequential evaluation, full sweeps).
func (f *Fleet) SetLegacyScan(on bool) { f.legacyScan.Store(on) }

// LegacyScan reports the ablation toggle.
func (f *Fleet) LegacyScan() bool { return f.legacyScan.Load() }

// SetPerSwitchDispatch disables rule-delta overlap filtering (every
// invariant in a dirty index bucket re-runs).
func (f *Fleet) SetPerSwitchDispatch(on bool) { f.perSwitch.Store(on) }

// PerSwitchDispatch reports the dispatch ablation toggle.
func (f *Fleet) PerSwitchDispatch() bool { return f.perSwitch.Load() }

// mix64 is the splitmix64 finalizer: the avalanche step of the rendezvous
// hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// rendezvous picks argmax over instances of H(key, instance) — highest
// random weight, so adding an instance moves only the keys it wins.
func (f *Fleet) rendezvous(key uint64) int {
	best, bestW := 0, uint64(0)
	for i := range f.instances {
		w := mix64(key ^ mix64(uint64(i)*0x9E3779B97F4A7C15+1))
		if i == 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// place computes the owning instance for a subscription under the active
// policy.
func (f *Fleet) place(sub *Subscription) int {
	if len(f.instances) == 1 {
		return 0
	}
	switch Placement(f.placement.Load()) {
	case PlaceFootprint:
		if sub.Kind == wire.QueryIsolation {
			// Full-space cone: no anchor switch confines its footprint.
			return f.rendezvous(mix64(sub.ID))
		}
		return f.rendezvous(uint64(sub.Anchor.Switch))
	default:
		return f.rendezvous(mix64(sub.ID))
	}
}

func (f *Fleet) setOwner(id uint64, inst int) {
	f.ownerMu.Lock()
	f.owner[id] = inst
	f.ownerMu.Unlock()
}

func (f *Fleet) ownerOf(id uint64) (int, bool) {
	f.ownerMu.RLock()
	inst, ok := f.owner[id]
	f.ownerMu.RUnlock()
	return inst, ok
}

// RecordNonce registers a client's operation nonce, reporting false on
// replay. The window is global across instances: a replayed registration
// must be caught even if placement would send it elsewhere.
func (f *Fleet) RecordNonce(clientID, nonce uint64) bool {
	if nonce == 0 {
		return true
	}
	f.nonceMu.Lock()
	defer f.nonceMu.Unlock()
	cn := f.seenNonces[clientID]
	if cn == nil {
		cn = &clientNonces{seen: make(map[uint64]struct{})}
		f.seenNonces[clientID] = cn
	}
	if _, dup := cn.seen[nonce]; dup {
		return false
	}
	cn.seen[nonce] = struct{}{}
	cn.order = append(cn.order, nonce)
	if len(cn.order) > maxSeenNoncesPerClient {
		old := cn.order[0]
		cn.order = cn.order[1:]
		delete(cn.seen, old)
	}
	return true
}

// SeedNonce pre-loads a nonce into the replay window without a freshness
// check (persistence restore).
func (f *Fleet) SeedNonce(clientID, nonce uint64) {
	f.RecordNonce(clientID, nonce)
}

// EnsureNextID raises the id allocator to at least maxID (persistence
// restore, so fresh registrations never collide with restored ids).
func (f *Fleet) EnsureNextID(maxID uint64) {
	for {
		cur := f.nextID.Load()
		if cur >= maxID {
			return
		}
		if f.nextID.CompareAndSwap(cur, maxID) {
			return
		}
	}
}

// Register assigns an id, places and registers one subscription, and runs
// its initial evaluation.
func (f *Fleet) Register(sub *Subscription, ec EvalContext) {
	f.RegisterBatch([]*Subscription{sub}, ec)
}

// RegisterBatch assigns ids in order, partitions the batch by placement
// and fans the per-instance groups out concurrently. Build is called at
// most once across the fan-out.
func (f *Fleet) RegisterBatch(subs []*Subscription, ec EvalContext) {
	if len(subs) == 0 {
		return
	}
	groups := make(map[int][]*Subscription)
	for _, sub := range subs {
		sub.ID = f.nextID.Add(1)
		inst := f.place(sub)
		f.setOwner(sub.ID, inst)
		groups[inst] = append(groups[inst], sub)
	}
	ec.Build = buildOnce(ec.Build)
	if len(groups) == 1 {
		for inst, group := range groups {
			f.instances[inst].RegisterBatch(group, ec)
		}
		return
	}
	perInstance := ec
	if ec.Workers > 0 {
		perInstance.Workers = ec.Workers / len(groups)
		if perInstance.Workers < 1 {
			perInstance.Workers = 1
		}
	}
	var wg sync.WaitGroup
	for inst, group := range groups {
		wg.Add(1)
		go func(inst int, group []*Subscription) {
			defer wg.Done()
			f.instances[inst].RegisterBatch(group, perInstance)
		}(inst, group)
	}
	wg.Wait()
}

// Restore re-inserts a subscription rebuilt from the persistence store
// (id already assigned; caller must EnsureNextID).
func (f *Fleet) Restore(sub *Subscription) {
	inst := f.place(sub)
	f.setOwner(sub.ID, inst)
	f.instances[inst].Restore(sub)
}

// HasPendingRestore reports whether any instance still holds restored
// subscriptions awaiting re-verification.
func (f *Fleet) HasPendingRestore() bool {
	for _, ins := range f.instances {
		if ins.HasPendingRestore() {
			return true
		}
	}
	return false
}

// buildOnce memoizes a Pass/EvalContext Build so N instances compiling
// concurrently share one network.
func buildOnce(build func() (*headerspace.Network, uint64)) func() (*headerspace.Network, uint64) {
	var once sync.Once
	var net *headerspace.Network
	var snapID uint64
	return func() (*headerspace.Network, uint64) {
		once.Do(func() { net, snapID = build() })
		return net, snapID
	}
}

// Run fans one re-verification pass to the owning instances. Instance
// selection: Force/Legacy passes (and pending restores) visit every
// instance; indexed passes visit only instances owning at least one
// dispatch switch's bucket. Returns the number of invariants evaluated.
func (f *Fleet) Run(p Pass) int {
	totalActive := uint64(0)
	for _, ins := range f.instances {
		totalActive += ins.activeCount()
	}
	if totalActive == 0 && !f.HasPendingRestore() {
		return 0
	}
	f.rechecks.Add(1)

	p.Legacy = p.Legacy || f.legacyScan.Load()
	if f.perSwitch.Load() {
		p.Deltas = nil
	}
	if p.Workers <= 0 {
		if n := int(f.parallelism.Load()); n > 0 {
			p.Workers = n
		}
	}
	p.Build = buildOnce(p.Build)

	var selected []*Instance
	if p.Force || p.Legacy {
		selected = f.instances
	} else {
		for _, ins := range f.instances {
			if ins.HasPendingRestore() || ins.OwnsAny(p.Dispatch) {
				selected = append(selected, ins)
			}
		}
		f.passes.Add(1)
		f.instanceDispatches.Add(uint64(len(selected)))
	}

	var evaluated uint64
	if len(selected) > 0 {
		perInstance := p
		if p.Workers > 0 && len(selected) > 1 && !p.Legacy {
			perInstance.Workers = p.Workers / len(selected)
			if perInstance.Workers < 1 {
				perInstance.Workers = 1
			}
		}
		if p.Legacy || len(selected) == 1 {
			// The legacy ablation reproduces the single sequential engine;
			// running instances concurrently would not.
			for _, ins := range selected {
				evaluated += uint64(ins.ApplyDeltas(perInstance))
			}
		} else {
			var wg sync.WaitGroup
			var total atomic.Uint64
			for _, ins := range selected {
				wg.Add(1)
				go func(ins *Instance) {
					defer wg.Done()
					total.Add(uint64(ins.ApplyDeltas(perInstance)))
				}(ins)
			}
			wg.Wait()
			evaluated = total.Load()
		}
	}
	if totalActive > evaluated {
		f.revalidated.Add(totalActive - evaluated)
	}
	return int(evaluated)
}

// InstancesOwning returns the indices of instances whose index holds any
// of the given dispatch switches — the bound E18 asserts dispatch
// confinement against.
func (f *Fleet) InstancesOwning(nodes []headerspace.NodeID) []int {
	var out []int
	for i, ins := range f.instances {
		if ins.OwnsAny(nodes) {
			out = append(out, i)
		}
	}
	return out
}

// Unsubscribe removes a standing invariant by id.
func (f *Fleet) Unsubscribe(clientID, id uint64) bool {
	inst, ok := f.ownerOf(id)
	if !ok {
		return false
	}
	if !f.instances[inst].Unsubscribe(clientID, id) {
		return false
	}
	f.ownerMu.Lock()
	delete(f.owner, id)
	f.ownerMu.Unlock()
	return true
}

// UnsubscribeByNonce removes a client's subscription by registration
// nonce, scanning instances (the nonce is not an ownership key).
func (f *Fleet) UnsubscribeByNonce(clientID, nonce uint64) (uint64, bool) {
	for _, ins := range f.instances {
		if id, ok := ins.UnsubscribeByNonce(clientID, nonce); ok {
			f.ownerMu.Lock()
			delete(f.owner, id)
			f.ownerMu.Unlock()
			return id, true
		}
	}
	return 0, false
}

// View snapshots one subscription by id.
func (f *Fleet) View(id uint64) (SubState, bool) {
	inst, ok := f.ownerOf(id)
	if !ok {
		return SubState{}, false
	}
	return f.instances[inst].View(id)
}

// List snapshots every standing invariant across the fleet, sorted by id.
func (f *Fleet) List() []SubState {
	var out []SubState
	for _, ins := range f.instances {
		out = append(out, ins.List()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ResumeSlice merges the per-instance session slices, sorted by id.
func (f *Fleet) ResumeSlice(clientID, sessionID uint64) []SubState {
	var out []SubState
	for _, ins := range f.instances {
		out = append(out, ins.ResumeSlice(clientID, sessionID)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FleetStats aggregates the instance counters plus the fleet-level pass
// accounting.
type FleetStats struct {
	Instances int
	Placement string

	Active         int
	Violated       int
	PendingRestore int
	IndexBuckets   int
	IndexEntries   int

	Registered      uint64
	Removed         uint64
	Restored        uint64
	Evaluated       uint64
	IndexDispatched uint64
	DeltaSkipped    uint64
	Violations      uint64
	Recoveries      uint64
	IsoPointsSwept  uint64
	IsoPointsReused uint64

	// Rechecks counts re-verification passes that found any active
	// subscription; Revalidated counts invariants carried through a pass
	// without re-evaluation; Passes/InstanceDispatches count indexed
	// passes and the instances they visited (InstanceDispatches/Passes is
	// the fleet-confinement ratio E18 reports).
	Rechecks           uint64
	Revalidated        uint64
	Passes             uint64
	InstanceDispatches uint64
}

// Stats aggregates across instances.
func (f *Fleet) Stats() FleetStats {
	st := FleetStats{
		Instances:          len(f.instances),
		Placement:          f.GetPlacement().String(),
		Rechecks:           f.rechecks.Load(),
		Revalidated:        f.revalidated.Load(),
		Passes:             f.passes.Load(),
		InstanceDispatches: f.instanceDispatches.Load(),
	}
	for _, ins := range f.instances {
		is := ins.Stats()
		st.Active += is.Active
		st.Violated += is.Violated
		st.PendingRestore += is.PendingRestore
		st.IndexBuckets += is.IndexBuckets
		st.IndexEntries += is.IndexEntries
		st.Registered += is.Registered
		st.Removed += is.Removed
		st.Restored += is.Restored
		st.Evaluated += is.Evaluated
		st.IndexDispatched += is.IndexDispatched
		st.DeltaSkipped += is.DeltaSkipped
		st.Violations += is.Violations
		st.Recoveries += is.Recoveries
		st.IsoPointsSwept += is.IsoPointsSwept
		st.IsoPointsReused += is.IsoPointsReused
	}
	return st
}

// InstanceStats returns each instance's counters, in instance order.
func (f *Fleet) InstanceStats() []InstanceStats {
	out := make([]InstanceStats, len(f.instances))
	for i, ins := range f.instances {
		out[i] = ins.Stats()
	}
	return out
}

// ShardStats aggregates same-numbered shards across instances, preserving
// the single-engine admin shape for N=1.
func (f *Fleet) ShardStats() []ShardInfo {
	out := make([]ShardInfo, ShardCount)
	for i := range out {
		out[i].Shard = i
	}
	for _, ins := range f.instances {
		for i, sh := range ins.ShardStats() {
			out[i].Active += sh.Active
			out[i].Violated += sh.Violated
			out[i].IndexBuckets += sh.IndexBuckets
			out[i].IndexEntries += sh.IndexEntries
		}
	}
	return out
}

// Rebalance re-places every standing invariant under the active policy,
// moving subscriptions (with their full verdict, footprint and cone
// state) between instances. Returns the number moved. Runs with every
// instance's run lock held, so no pass or registration interleaves.
func (f *Fleet) Rebalance() int {
	for _, ins := range f.instances {
		ins.runMu.Lock()
	}
	defer func() {
		for _, ins := range f.instances {
			ins.runMu.Unlock()
		}
	}()

	moved := 0
	for from, ins := range f.instances {
		for si := range ins.shards {
			sh := &ins.shards[si]
			sh.mu.Lock()
			var moving []*Subscription
			for _, sub := range sh.subs {
				if f.place(sub) != from {
					moving = append(moving, sub)
				}
			}
			for _, sub := range moving {
				delete(sh.subs, sub.ID)
				ins.indexRemove(sub, sub.FP.Nodes())
			}
			sh.mu.Unlock()
			for _, sub := range moving {
				to := f.place(sub)
				dst := f.instances[to]
				dsh := dst.shardFor(sub.ID)
				dsh.mu.Lock()
				dsh.subs[sub.ID] = sub
				dst.indexAdd(sub, sub.FP.Nodes())
				dsh.mu.Unlock()
				f.setOwner(sub.ID, to)
				moved++
			}
		}
	}
	return moved
}

// CheckConsistency verifies the engine's cross-structure invariants: the
// owner map matches actual residence, and each instance's inverted index
// holds exactly the live footprints. Test/debug surface.
func (f *Fleet) CheckConsistency() error {
	for i, ins := range f.instances {
		live := make(map[uint64]*Subscription)
		for si := range ins.shards {
			sh := &ins.shards[si]
			sh.mu.Lock()
			for id, sub := range sh.subs {
				live[id] = sub
			}
			sh.mu.Unlock()
		}
		for id := range live {
			own, ok := f.ownerOf(id)
			if !ok {
				return fmt.Errorf("verifier: sub %d resident on instance %d but absent from owner map", id, i)
			}
			if own != i {
				return fmt.Errorf("verifier: sub %d resident on instance %d but owner map says %d", id, i, own)
			}
		}
		// Index entries must be exactly the live footprints: every entry
		// backed by a live sub whose footprint has the node, every live
		// footprint node present.
		indexed := make(map[headerspace.NodeID]map[uint64]bool)
		for si := range ins.index {
			ish := &ins.index[si]
			ish.mu.Lock()
			for n, bucket := range ish.buckets {
				m := make(map[uint64]bool, len(bucket))
				for id := range bucket {
					m[id] = true
				}
				indexed[n] = m
			}
			ish.mu.Unlock()
		}
		for n, bucket := range indexed {
			for id := range bucket {
				sub, ok := live[id]
				if !ok {
					return fmt.Errorf("verifier: instance %d index bucket %d holds dead sub %d", i, n, id)
				}
				found := false
				for _, fn := range sub.FP.Nodes() {
					if fn == n {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("verifier: instance %d index bucket %d holds sub %d whose footprint lacks it", i, n, id)
				}
			}
		}
		for id, sub := range live {
			for _, n := range sub.FP.Nodes() {
				if !indexed[n][id] {
					return fmt.Errorf("verifier: instance %d sub %d footprint node %d missing from index", i, id, n)
				}
			}
		}
	}
	return nil
}
