package verifier

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/headerspace"
)

// subShard is one slice of the subscription map.
type subShard struct {
	mu   sync.Mutex
	subs map[uint64]*Subscription
}

// indexShard is one slice of the inverted footprint index. buckets[n]
// holds every live subscription whose recorded footprint contains switch
// n.
type indexShard struct {
	mu      sync.Mutex
	buckets map[headerspace.NodeID]map[uint64]*Subscription
}

// instanceCounters are the hot-path statistics, kept as atomics so
// parallel recheck workers never serialize on a stats mutex.
type instanceCounters struct {
	registered, removed, restored   atomic.Uint64
	evaluated                       atomic.Uint64
	indexDispatched, deltaSkipped   atomic.Uint64
	violations, recoveries          atomic.Uint64
	isoPointsSwept, isoPointsReused atomic.Uint64
}

// Instance is one verifier: the sharded subscription engine previously
// embedded in the controller.
type Instance struct {
	id  int
	env Env

	// runMu serializes this instance's re-verification work (passes and
	// registration-time initial evaluations) so concurrent triggers
	// cannot interleave evaluations and double-report one transition. It
	// also guards every owned subscription's evaluation-only state
	// (isolation cones).
	runMu  sync.Mutex
	shards [ShardCount]subShard
	index  [ShardCount]indexShard

	// restoreMu guards pendingRestore: subscriptions rebuilt from the
	// persistence store that have not been re-verified yet; the next pass
	// evaluates them from scratch regardless of the dirty set.
	restoreMu      sync.Mutex
	pendingRestore []*Subscription

	stats instanceCounters
}

// NewInstance builds one engine instance. Most callers want NewFleet.
func NewInstance(id int, env Env) *Instance {
	ins := &Instance{id: id, env: env}
	for i := range ins.shards {
		ins.shards[i].subs = make(map[uint64]*Subscription)
	}
	for i := range ins.index {
		ins.index[i].buckets = make(map[headerspace.NodeID]map[uint64]*Subscription)
	}
	return ins
}

// ID returns the instance's fleet position.
func (ins *Instance) ID() int { return ins.id }

func (ins *Instance) shardFor(id uint64) *subShard {
	return &ins.shards[id&(ShardCount-1)]
}

func (ins *Instance) indexFor(n headerspace.NodeID) *indexShard {
	return &ins.index[uint32(n)&(ShardCount-1)]
}

// indexAdd/indexRemove maintain the inverted footprint index. Callers
// hold the subscription's shard mutex; index shard mutexes nest inside
// shard mutexes (never the other way around), so the lock order is
// acyclic.
func (ins *Instance) indexAdd(sub *Subscription, nodes []headerspace.NodeID) {
	for _, n := range nodes {
		ish := ins.indexFor(n)
		ish.mu.Lock()
		bucket := ish.buckets[n]
		if bucket == nil {
			bucket = make(map[uint64]*Subscription)
			ish.buckets[n] = bucket
		}
		bucket[sub.ID] = sub
		ish.mu.Unlock()
	}
}

func (ins *Instance) indexRemove(sub *Subscription, nodes []headerspace.NodeID) {
	for _, n := range nodes {
		ish := ins.indexFor(n)
		ish.mu.Lock()
		if bucket := ish.buckets[n]; bucket != nil {
			delete(bucket, sub.ID)
			if len(bucket) == 0 {
				delete(ish.buckets, n)
			}
		}
		ish.mu.Unlock()
	}
}

// removeLocked unlinks one subscription from its shard map and the
// inverted index. Callers hold sh.mu (the shard owning sub).
func (ins *Instance) removeLocked(sh *subShard, sub *Subscription) {
	sub.Removed = true
	delete(sh.subs, sub.ID)
	ins.indexRemove(sub, sub.FP.Nodes())
	ins.stats.removed.Add(1)
}

// activeCount sums the shard sizes.
func (ins *Instance) activeCount() uint64 {
	var n uint64
	for i := range ins.shards {
		sh := &ins.shards[i]
		sh.mu.Lock()
		n += uint64(len(sh.subs))
		sh.mu.Unlock()
	}
	return n
}

// RegisterBatch inserts the subscriptions (ids already assigned) and runs
// their initial evaluations under one run-lock acquisition, fanned across
// the worker pool. Initial verdicts are not pushed (Transition.Notify is
// false): the caller's ack or batch reply carries them, mirroring the
// single-subscribe ack semantics.
func (ins *Instance) RegisterBatch(subs []*Subscription, ec EvalContext) {
	if len(subs) == 0 {
		return
	}
	for _, sub := range subs {
		sh := ins.shardFor(sub.ID)
		sh.mu.Lock()
		sh.subs[sub.ID] = sub
		sh.mu.Unlock()
		ins.stats.registered.Add(1)
	}

	// Initial evaluation, serialized with re-verification passes so the
	// first verdict cannot race a concurrent recheck of the same
	// subscription.
	ins.runMu.Lock()
	defer ins.runMu.Unlock()
	net, snapID := ec.Build()
	workers := ec.Workers
	if workers > len(subs) {
		workers = len(subs)
	}
	pooled := workers > 1 && len(subs) > 1
	poolRun(len(subs), workers, func(i int) {
		sub := subs[i]
		v := ins.env.Evaluate(net, sub, nil, nil, true, pooled)
		ins.commit(sub, v, snapID, false)
	})
}

// Restore inserts a subscription rebuilt from the persistence store: its
// verdict state is already durable, its footprint is not, so it joins
// every pass (pendingRestore + NeedsFullEval) until re-verified.
func (ins *Instance) Restore(sub *Subscription) {
	sh := ins.shardFor(sub.ID)
	sh.mu.Lock()
	sh.subs[sub.ID] = sub
	sh.mu.Unlock()
	ins.restoreMu.Lock()
	ins.pendingRestore = append(ins.pendingRestore, sub)
	ins.restoreMu.Unlock()
	ins.stats.restored.Add(1)
}

// HasPendingRestore reports whether restored subscriptions still await
// their first re-verification.
func (ins *Instance) HasPendingRestore() bool {
	ins.restoreMu.Lock()
	defer ins.restoreMu.Unlock()
	return len(ins.pendingRestore) > 0
}

func (ins *Instance) drainRestore() []*Subscription {
	ins.restoreMu.Lock()
	defer ins.restoreMu.Unlock()
	restored := ins.pendingRestore
	ins.pendingRestore = nil
	return restored
}

// Unsubscribe removes a standing invariant; it reports whether the id was
// registered here to the given client.
func (ins *Instance) Unsubscribe(clientID, id uint64) bool {
	sh := ins.shardFor(id)
	sh.mu.Lock()
	sub, ok := sh.subs[id]
	if !ok || sub.ClientID != clientID {
		sh.mu.Unlock()
		return false
	}
	ins.removeLocked(sh, sub)
	sh.mu.Unlock()
	return true
}

// UnsubscribeByNonce removes a client's subscription by its registration
// nonce — the cleanup path for a client whose subscribe ack was lost and
// who therefore never learned the SubID.
func (ins *Instance) UnsubscribeByNonce(clientID, nonce uint64) (uint64, bool) {
	if nonce == 0 {
		return 0, false
	}
	for i := range ins.shards {
		sh := &ins.shards[i]
		sh.mu.Lock()
		for id, sub := range sh.subs {
			if sub.ClientID == clientID && sub.Nonce == nonce {
				ins.removeLocked(sh, sub)
				sh.mu.Unlock()
				return id, true
			}
		}
		sh.mu.Unlock()
	}
	return 0, false
}

// ApplyDeltas runs one re-verification pass over this instance's
// subscriptions, returning the number of invariants evaluated. Pass-level
// accounting (rechecks, revalidated-for-free) lives in the fleet, which
// sees every instance.
func (ins *Instance) ApplyDeltas(p Pass) int {
	ins.runMu.Lock()
	defer ins.runMu.Unlock()

	restored := ins.drainRestore()

	var targets []*Subscription
	if p.Force || p.Legacy {
		// Full enumeration: RevalidateAll re-runs everything; the legacy
		// ablation reproduces the pre-index engine's linear footprint
		// scan. Restored subscriptions are already in the shards, so the
		// enumeration covers them (their NeedsFullEval flag, not their
		// empty footprint, is what forces their evaluation).
		for i := range ins.shards {
			sh := &ins.shards[i]
			sh.mu.Lock()
			for _, sub := range sh.subs {
				if p.Force || sub.NeedsFullEval || sub.FP.Invalidated(p.Dirty) {
					targets = append(targets, sub)
				}
			}
			sh.mu.Unlock()
		}
	} else {
		// Indexed dirty dispatch: the union of the dispatch switches'
		// buckets is the set of invariants whose footprint was touched;
		// the rule-delta overlap filter then discards the ones whose
		// recorded traversal slice (and arrival ports) miss every delta.
		seen := make(map[uint64]*Subscription)
		for _, n := range p.Dispatch {
			ish := ins.indexFor(n)
			ish.mu.Lock()
			for id, sub := range ish.buckets[n] {
				seen[id] = sub
			}
			ish.mu.Unlock()
		}
		targets = make([]*Subscription, 0, len(seen))
		for _, sub := range seen {
			// sub.FP is written only under runMu (commit), which we hold:
			// the read is race-free. nil Deltas encodes per-switch
			// dispatch, captured at pass assembly — a concurrent tuning
			// flip cannot turn a per-switch pass into a delta-filtered
			// one mid-loop.
			if p.Deltas == nil || sub.FP.InvalidatedBy(p.Deltas) {
				targets = append(targets, sub)
			} else {
				ins.stats.deltaSkipped.Add(1)
			}
		}
		ins.stats.indexDispatched.Add(uint64(len(targets)))
		// Restored subscriptions have no footprint yet, so no index
		// bucket can dispatch them — they join every pass until
		// re-verified.
		targets = append(targets, restored...)
	}
	if len(targets) == 0 {
		return 0
	}

	net, snapID := p.Build()
	fullSweep := p.Force || p.Legacy
	workers := p.Workers
	if p.Legacy {
		workers = 1
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	pooled := workers > 1
	poolRun(len(targets), workers, func(i int) {
		sub := targets[i]
		// A restored subscription's first evaluation is always a full
		// sweep: it has no footprint or cone state to be incremental
		// against.
		v := ins.env.Evaluate(net, sub, p.Dirty, p.Deltas, fullSweep || sub.NeedsFullEval, pooled)
		ins.commit(sub, v, snapID, true)
	})
	return len(targets)
}

// commit publishes one evaluation outcome: re-syncs the inverted
// footprint index with the new footprint and, on the first commit or a
// verdict transition, hands a Transition to the host Env outside every
// engine lock (persistence, violation log, notification delivery happen
// there). Callers hold the instance's run lock; the shard mutex makes the
// publication atomic against concurrent register/unsubscribe on other
// subscriptions of the same shard.
func (ins *Instance) commit(sub *Subscription, v Verdict, snapID uint64, notify bool) {
	sh := ins.shardFor(sub.ID)
	sh.mu.Lock()
	if sub.Removed {
		// Unsubscribed while the evaluation ran: the index entries are
		// gone; publishing (or re-indexing) would resurrect a dead
		// invariant.
		sh.mu.Unlock()
		return
	}
	ins.stats.evaluated.Add(1)
	ins.stats.isoPointsSwept.Add(v.IsoPointsSwept)
	ins.stats.isoPointsReused.Add(v.IsoPointsReused)
	prevViolated, prevEvaluated := sub.Violated, sub.Evaluated
	added, removed := headerspace.DiffFootprints(sub.FP, v.FP)
	sub.Violated = v.Violated
	sub.Detail = v.Detail
	sub.FP = v.FP
	sub.Evaluated = true
	sub.NeedsFullEval = false
	ins.indexAdd(sub, added)
	ins.indexRemove(sub, removed)
	changed := (prevEvaluated && prevViolated != v.Violated) || (!prevEvaluated && v.Violated)
	if changed {
		sub.Seq++
		if v.Violated {
			ins.stats.violations.Add(1)
		} else {
			ins.stats.recoveries.Add(1)
		}
	}
	t := Transition{
		Sub:        sub,
		Violated:   v.Violated,
		Detail:     v.Detail,
		Seq:        sub.Seq,
		SnapshotID: snapID,
		Changed:    changed,
		First:      !prevEvaluated,
		Notify:     notify,
	}
	sh.mu.Unlock()
	if t.First || t.Changed {
		ins.env.Commit(t)
	}
}

// stateOfLocked snapshots one subscription; callers hold its shard mutex.
func (ins *Instance) stateOfLocked(sub *Subscription) SubState {
	return SubState{
		ID:            sub.ID,
		ClientID:      sub.ClientID,
		SessionID:     sub.SessionID,
		Nonce:         sub.Nonce,
		Proto:         sub.Proto,
		Kind:          sub.Kind,
		Param:         sub.Param,
		Anchor:        sub.Anchor,
		Violated:      sub.Violated,
		Evaluated:     sub.Evaluated,
		Detail:        sub.Detail,
		Seq:           sub.Seq,
		FootprintSize: sub.FP.Len(),
		Instance:      ins.id,
	}
}

// View snapshots one subscription by id.
func (ins *Instance) View(id uint64) (SubState, bool) {
	sh := ins.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sub, ok := sh.subs[id]
	if !ok {
		return SubState{}, false
	}
	return ins.stateOfLocked(sub), true
}

// List snapshots every subscription owned by the instance (unsorted; the
// fleet sorts the merged view).
func (ins *Instance) List() []SubState {
	var out []SubState
	for i := range ins.shards {
		sh := &ins.shards[i]
		sh.mu.Lock()
		for _, sub := range sh.subs {
			out = append(out, ins.stateOfLocked(sub))
		}
		sh.mu.Unlock()
	}
	return out
}

// ResumeSlice snapshots the instance's subscriptions of one client
// session, sorted by id.
func (ins *Instance) ResumeSlice(clientID, sessionID uint64) []SubState {
	var out []SubState
	for i := range ins.shards {
		sh := &ins.shards[i]
		sh.mu.Lock()
		for _, sub := range sh.subs {
			if sub.ClientID == clientID && sub.SessionID == sessionID {
				out = append(out, ins.stateOfLocked(sub))
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OwnsAny reports whether any dispatch node has a non-empty index bucket
// here — the fleet's per-pass instance selection.
func (ins *Instance) OwnsAny(nodes []headerspace.NodeID) bool {
	for _, n := range nodes {
		ish := ins.indexFor(n)
		ish.mu.Lock()
		occupied := len(ish.buckets[n]) > 0
		ish.mu.Unlock()
		if occupied {
			return true
		}
	}
	return false
}

// Stats returns the instance's counters.
func (ins *Instance) Stats() InstanceStats {
	st := InstanceStats{
		Instance:        ins.id,
		Registered:      ins.stats.registered.Load(),
		Removed:         ins.stats.removed.Load(),
		Restored:        ins.stats.restored.Load(),
		Evaluated:       ins.stats.evaluated.Load(),
		IndexDispatched: ins.stats.indexDispatched.Load(),
		DeltaSkipped:    ins.stats.deltaSkipped.Load(),
		Violations:      ins.stats.violations.Load(),
		Recoveries:      ins.stats.recoveries.Load(),
		IsoPointsSwept:  ins.stats.isoPointsSwept.Load(),
		IsoPointsReused: ins.stats.isoPointsReused.Load(),
	}
	for i := range ins.shards {
		sh := &ins.shards[i]
		sh.mu.Lock()
		st.Active += len(sh.subs)
		for _, sub := range sh.subs {
			if sub.Violated {
				st.Violated++
			}
		}
		sh.mu.Unlock()
	}
	for i := range ins.index {
		ish := &ins.index[i]
		ish.mu.Lock()
		st.IndexBuckets += len(ish.buckets)
		for _, bucket := range ish.buckets {
			st.IndexEntries += len(bucket)
		}
		ish.mu.Unlock()
	}
	ins.restoreMu.Lock()
	st.PendingRestore = len(ins.pendingRestore)
	ins.restoreMu.Unlock()
	return st
}

// ShardStats returns per-shard occupancy (subscription shards zipped with
// the same-numbered index shard).
func (ins *Instance) ShardStats() []ShardInfo {
	out := make([]ShardInfo, ShardCount)
	for i := range ins.shards {
		sh := &ins.shards[i]
		sh.mu.Lock()
		out[i].Shard = i
		out[i].Active = len(sh.subs)
		for _, sub := range sh.subs {
			if sub.Violated {
				out[i].Violated++
			}
		}
		sh.mu.Unlock()
	}
	for i := range ins.index {
		ish := &ins.index[i]
		ish.mu.Lock()
		out[i].IndexBuckets = len(ish.buckets)
		for _, bucket := range ish.buckets {
			out[i].IndexEntries += len(bucket)
		}
		ish.mu.Unlock()
	}
	return out
}
