// Package verifier hosts the standing-invariant verification engine,
// extracted from the controller so N instances can share the load.
//
// The paper's service model runs ONE verifier that owns the whole fabric.
// The ROADMAP north star (10⁶ standing invariants across a multi-region
// WAN, per-event work still O(touched)) breaks that assumption: this
// package turns the monolithic in-controller recheck engine into
// instances behind a fleet router.
//
//   - Instance is the engine core: sharded subscription map, inverted
//     switch → subscriptions footprint index, per-pass worker pool,
//     verdict commit with index re-sync. It is the former
//     rvaas/subscriptions.go engine, verbatim in semantics.
//   - Fleet owns global identity (subscription ids, replay nonces,
//     ownership) and partitions standing invariants across instances by
//     footprint: anchor-rooted invariants place by their anchor switch
//     (the inverted index's bucket key — invariants whose footprints
//     share a root land together, so a single-switch event touches few
//     instances), full-space cones (isolation) spread by rendezvous hash.
//   - The host (the controller) supplies an Env: invariant evaluation
//     stays domain logic above this package, and every committed verdict
//     transition is handed back OUT of the shard locks for persistence,
//     violation-log append and notification delivery — the per-session
//     ordered notifier is unchanged, so client-visible Notification.Seq
//     semantics survive the partitioning.
//
// With one instance the fleet is bit-compatible with the pre-extraction
// engine (same counters, same evaluation order discipline, same commit
// rules); experiment E18 keeps N=1 as the differential reference for
// N=4, like the per-switch dispatch reference of earlier PRs.
package verifier

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/headerspace"
	"repro/internal/topology"
	"repro/internal/wire"
)

// ShardCount fixes the number of subscription map shards and inverted
// index shards per instance (power of two so the shard pick is a mask).
const ShardCount = 32

// Anchor is the access point an invariant is registered at: the
// subscriber's network card, where notifications are injected.
type Anchor struct {
	Switch topology.SwitchID
	Port   topology.PortNo
	MAC    uint64
	IP     uint32
}

// Subscription is one standing invariant. Identity fields are immutable
// after registration; verdict state (Violated, Detail, FP, Seq, Removed)
// is guarded by the owning shard's mutex. The evaluation-only cone cache
// (Cones) is touched only during evaluation, which the owning instance's
// run lock serializes per subscription.
type Subscription struct {
	ID          uint64
	ClientID    uint64
	Nonce       uint64
	Kind        wire.QueryKind
	Constraints []wire.FieldConstraint
	Param       string
	Bound       int // parsed Param for path-length invariants
	Anchor      Anchor
	// SessionID is the client session the invariant was registered under
	// (protocol v2); session resume enumerates by it. Proto is the
	// envelope version notifications are encoded with.
	SessionID uint64
	Proto     uint8

	Violated  bool
	Detail    string
	FP        headerspace.Footprint
	Evaluated bool
	Removed   bool
	Seq       uint64

	// NeedsFullEval marks a subscription restored from the persistence
	// store: its verdict/seq are durable state but footprint and cones
	// are not, so the next pass re-evaluates it from scratch regardless
	// of the dirty set.
	NeedsFullEval bool

	// Cones is the host's per-subscription evaluation cache (the
	// controller's isolation cone cache); opaque to this package. It
	// moves with the subscription on rebalance.
	Cones any
}

// Source carries the wire-level provenance of a registration: the
// operation nonce (0 for in-process callers), the client session (v2) and
// the protocol version notifications must be encoded with.
type Source struct {
	Nonce     uint64
	SessionID uint64
	Proto     uint8
}

// NewSubscription validates an invariant spec and builds the
// (unregistered) subscription object. Shared by single registration,
// batch registration and persistence restore.
func NewSubscription(clientID uint64, src Source, kind wire.QueryKind, constraints []wire.FieldConstraint, param string, anchor Anchor) (*Subscription, error) {
	sub := &Subscription{
		ClientID:    clientID,
		Nonce:       src.Nonce,
		SessionID:   src.SessionID,
		Proto:       src.Proto,
		Kind:        kind,
		Constraints: append([]wire.FieldConstraint(nil), constraints...),
		Param:       param,
		Anchor:      anchor,
	}
	switch kind {
	case wire.QueryReachableDestinations, wire.QueryIsolation, wire.QueryWaypointAvoidance:
	case wire.QueryPathLength:
		bound, err := strconv.Atoi(param)
		if err != nil {
			return nil, fmt.Errorf("verifier: path-length subscription needs integer Param, got %q", param)
		}
		sub.Bound = bound
	default:
		return nil, fmt.Errorf("verifier: unsupported subscription kind %s", kind)
	}
	return sub, nil
}

// Verdict is one invariant evaluation outcome, produced by the host's
// Env.Evaluate. The isolation cone-cache counters ride along so the
// evaluator never touches engine state directly.
type Verdict struct {
	Violated bool
	Detail   string
	FP       headerspace.Footprint
	// IsoPointsSwept/IsoPointsReused count per-injection-point cone
	// evaluations re-run versus served from the cone cache during this
	// evaluation (zero for non-isolation kinds).
	IsoPointsSwept  uint64
	IsoPointsReused uint64
}

// Transition is one committed verdict publication, handed to Env.Commit
// OUTSIDE the shard lock — only on first commit or on a verdict flip.
// Identity fields are read through Sub (immutable after registration);
// the verdict fields are copies captured under the shard lock, so the
// record can never mix two commits.
type Transition struct {
	Sub      *Subscription
	Violated bool
	Detail   string
	// Seq is the subscription's notification sequence number after this
	// commit (incremented exactly when Changed).
	Seq        uint64
	SnapshotID uint64
	// First marks the subscription's first-ever commit; Changed marks a
	// verdict flip (the notification-worthy event). Durable state should
	// be written when First || Changed; log/notify when Changed.
	Changed bool
	First   bool
	// Notify is false for registration-time initial evaluations (the ack
	// carries the verdict) and true for recheck passes.
	Notify bool
}

// Env is the host side of the engine: invariant evaluation (domain logic
// over the compiled network) and commit fan-out (persistence, violation
// log, notification delivery). Evaluate is called with the owning
// instance's run lock held (directly or from a pass's worker pool);
// Commit is called outside every engine lock.
type Env interface {
	Evaluate(net *headerspace.Network, sub *Subscription, dirty []headerspace.NodeID, deltas map[headerspace.NodeID]headerspace.Delta, fullSweep, pooled bool) Verdict
	Commit(t Transition)
}

// EvalContext parameterizes registration-time initial evaluations. Build
// returns the compiled network and snapshot id; it is called inside the
// instance's run lock and must be idempotent (the fleet wraps it in a
// sync.Once when fanning one context across instances).
type EvalContext struct {
	Build   func() (*headerspace.Network, uint64)
	Workers int
}

// Pass describes one re-verification pass, assembled by the host from the
// drained snapshot deltas and fanned by the fleet to the owning
// instances.
type Pass struct {
	// Build returns the compiled network and snapshot id; called only if
	// an instance has evaluation targets (so a pass that revalidates
	// everything for free never compiles).
	Build func() (*headerspace.Network, uint64)
	// Dirty is the switches whose generation advanced since the previous
	// pass. Deltas refines each dispatch switch with its rule-delta
	// header space; nil Deltas selects per-switch dispatch (every
	// invariant in a dirty bucket re-runs). Dispatch is the dirty set
	// actually dispatched through the index (dirty minus switches whose
	// delta is semantically empty).
	Dirty    []headerspace.NodeID
	Deltas   map[headerspace.NodeID]headerspace.Delta
	Dispatch []headerspace.NodeID
	// Force re-evaluates everything from scratch (RevalidateAll); Legacy
	// reproduces the pre-sharding engine (linear scan, sequential
	// evaluation, full sweeps).
	Force  bool
	Legacy bool
	// Workers bounds the evaluation fan-out across the whole pass; the
	// fleet divides it among concurrently-running instances.
	Workers int
}

// SubState is a read-only snapshot of one standing invariant, taken under
// its shard lock.
type SubState struct {
	ID        uint64
	ClientID  uint64
	SessionID uint64
	Nonce     uint64
	Proto     uint8
	Kind      wire.QueryKind
	Param     string
	Anchor    Anchor
	Violated  bool
	Evaluated bool
	Detail    string
	Seq       uint64
	// FootprintSize is the number of switches the last evaluation
	// consulted; Instance is the owning fleet instance.
	FootprintSize int
	Instance      int
}

// InstanceStats is one instance's engine counters.
type InstanceStats struct {
	Instance       int
	Active         int
	Violated       int
	PendingRestore int
	IndexBuckets   int
	IndexEntries   int

	Registered      uint64
	Removed         uint64
	Restored        uint64
	Evaluated       uint64
	IndexDispatched uint64
	DeltaSkipped    uint64
	Violations      uint64
	Recoveries      uint64
	IsoPointsSwept  uint64
	IsoPointsReused uint64
}

// ShardInfo is one shard's occupancy within an instance.
type ShardInfo struct {
	Shard        int
	Active       int
	Violated     int
	IndexBuckets int
	IndexEntries int
}

// VerifierInstance is the narrow surface the fleet router drives. Instance
// implements it; tests substitute fakes.
type VerifierInstance interface {
	// RegisterBatch inserts pre-validated subscriptions (ids assigned by
	// the fleet) and runs their initial evaluations under one run-lock
	// acquisition.
	RegisterBatch(subs []*Subscription, ec EvalContext)
	// Unsubscribe removes one standing invariant; it reports whether the
	// id was registered here to the given client.
	Unsubscribe(clientID, id uint64) bool
	// ApplyDeltas runs one re-verification pass over this instance's
	// subscriptions, returning the number of invariants evaluated.
	ApplyDeltas(p Pass) int
	// ResumeSlice snapshots the instance's subscriptions of one client
	// session.
	ResumeSlice(clientID, sessionID uint64) []SubState
	// Stats returns the instance's counters.
	Stats() InstanceStats
}

var _ VerifierInstance = (*Instance)(nil)

// poolRun fans f(i) for i in [0,n) across the given number of workers
// (sequentially when workers <= 1).
func poolRun(n, workers int, f func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
