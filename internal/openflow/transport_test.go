package openflow

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

func transportPKI(t *testing.T) (*CA, *Identity, Certificate, *Identity, Certificate) {
	t.Helper()
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewIdentity("controller")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewIdentity("switch-1")
	if err != nil {
		t.Fatal(err)
	}
	return ca, ctl, ca.Issue(ctl), sw, ca.Issue(sw)
}

func TestUDPSecureHandshakeAndExchange(t *testing.T) {
	ca, ctl, ctlCert, sw, swCert := transportPKI(t)

	ta, tb, err := UDPPipe()
	if err != nil {
		t.Fatal(err)
	}
	connA, connB, err := ConnectSecureOver(ta, tb, ctl, ctlCert, sw, swCert, ca.Pub)
	if err != nil {
		t.Fatalf("handshake over udp: %v", err)
	}
	defer connA.Close()
	defer connB.Close()

	if got := connA.PeerName(); got != "switch-1" {
		t.Fatalf("peer name = %q, want switch-1", got)
	}
	if got := connB.PeerName(); got != "controller" {
		t.Fatalf("peer name = %q, want controller", got)
	}

	// Full-duplex message exchange over real sockets.
	const rounds = 50
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			m, err := connB.Recv()
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			hello, ok := m.(*Hello)
			if !ok || hello.XID != uint32(i) {
				t.Errorf("recv %d: got %#v", i, m)
				return
			}
			if err := connB.Send(&EchoReply{XID: uint32(i)}); err != nil {
				t.Errorf("reply %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < rounds; i++ {
		if err := connA.Send(&Hello{XID: uint32(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		m, err := connA.Recv()
		if err != nil {
			t.Fatalf("recv reply %d: %v", i, err)
		}
		if rep, ok := m.(*EchoReply); !ok || rep.XID != uint32(i) {
			t.Fatalf("reply %d: got %#v", i, m)
		}
	}
	wg.Wait()
	if lost := connA.RecvLost(); lost != 0 {
		t.Fatalf("loopback exchange recorded %d lost frames", lost)
	}
}

func TestUDPTransportPeerFiltering(t *testing.T) {
	ta, tb, err := UDPPipe()
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	defer tb.Close()

	// An off-path socket spraying datagrams at b must not surface in Recv.
	intruder, _, err := UDPPipe()
	if err != nil {
		t.Fatal(err)
	}
	defer intruder.Close()
	intruder.peer = tb.LocalAddr()
	if err := intruder.Send([]byte("off-path noise")); err != nil {
		t.Fatal(err)
	}
	if err := ta.Send([]byte("legit")); err != nil {
		t.Fatal(err)
	}
	got, err := tb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "legit" {
		t.Fatalf("recv = %q, want the legit datagram (off-path one filtered)", got)
	}
}

func TestUDPTransportCloseUnblocksRecv(t *testing.T) {
	ta, tb, err := UDPPipe()
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	done := make(chan error, 1)
	go func() {
		_, err := tb.Recv()
		done <- err
	}()
	tb.Close()
	if err := <-done; !errors.Is(err, io.EOF) {
		t.Fatalf("recv after close = %v, want EOF", err)
	}
	if err := tb.Send([]byte("x")); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("send after close = %v, want ErrChannelClosed", err)
	}
}

func TestUDPTransportMessageTooLarge(t *testing.T) {
	ta, tb, err := UDPPipe()
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	defer tb.Close()
	big := make([]byte, maxUDPMessage+1)
	if err := ta.Send(big); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("oversized send = %v, want ErrMessageTooLarge", err)
	}
	if sent, err := ta.TrySend(big); sent || err != nil {
		t.Fatalf("oversized trysend = (%v, %v), want (false, nil)", sent, err)
	}
}

// droppingTransport wraps a Transport and silently drops selected sends,
// simulating network loss on an otherwise reliable pipe.
type droppingTransport struct {
	Transport
	mu   sync.Mutex
	drop map[int]bool
	seq  int
}

func (d *droppingTransport) Lossy() bool { return true }

func (d *droppingTransport) Send(data []byte) error {
	d.mu.Lock()
	n := d.seq
	d.seq++
	dropped := d.drop[n]
	d.mu.Unlock()
	if dropped {
		return nil
	}
	return d.Transport.Send(data)
}

func TestSecureRecvTolerantOfLossOnLossyTransport(t *testing.T) {
	ca, ctl, ctlCert, sw, swCert := transportPKI(t)
	rawA, rawB := Pipe()
	// Drop frame index 3 (handshake sends are indexes 0–1 on this side:
	// round-1 and round-3 messages; data frames follow). The receiver side
	// is wrapped too so its secure channel knows the link is best-effort.
	lossA := &droppingTransport{Transport: rawA, drop: map[int]bool{3: true}}
	lossB := &droppingTransport{Transport: rawB, drop: map[int]bool{}}
	connA, connB, err := ConnectSecureOver(lossA, lossB, ctl, ctlCert, sw, swCert, ca.Pub)
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	defer connB.Close()

	for i := 0; i < 4; i++ {
		if err := connA.Send(&Hello{XID: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Frame with counter 1 was dropped; the receiver must accept 0, 2, 3
	// and record one lost frame.
	want := []uint32{0, 2, 3}
	for _, v := range want {
		m, err := connB.Recv()
		if err != nil {
			t.Fatalf("recv after loss: %v", err)
		}
		if h, ok := m.(*Hello); !ok || h.XID != v {
			t.Fatalf("recv = %#v, want Hello xid=%d", m, v)
		}
	}
	if lost := connB.RecvLost(); lost != 1 {
		t.Fatalf("RecvLost = %d, want 1", lost)
	}
}

func TestSecureRecvStillRejectsReplayOnLossyTransport(t *testing.T) {
	ca, ctl, ctlCert, sw, swCert := transportPKI(t)
	rawA, rawB := Pipe()
	lossA := &droppingTransport{Transport: rawA, drop: map[int]bool{}}
	lossB := &droppingTransport{Transport: rawB, drop: map[int]bool{}}
	connA, connB, err := ConnectSecureOver(lossA, lossB, ctl, ctlCert, sw, swCert, ca.Pub)
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	defer connB.Close()

	// Capture a ciphertext and replay it after the receiver has advanced.
	if err := connA.Send(&Hello{XID: 1}); err != nil {
		t.Fatal(err)
	}
	ct, err := rawB.Recv()
	if err != nil {
		t.Fatal(err)
	}
	replay := make([]byte, len(ct))
	copy(replay, ct)
	// Deliver the captured frame, then replay the identical bytes: the
	// second copy's counter sits below the high-water mark and must fail
	// even though the transport is lossy.
	if err := rawA.Send(replay); err != nil {
		t.Fatal(err)
	}
	if _, err := connB.Recv(); err != nil {
		t.Fatalf("first delivery: %v", err)
	}
	if err := rawA.Send(replay); err != nil {
		t.Fatal(err)
	}
	if _, err := connB.Recv(); err == nil {
		t.Fatal("replayed frame accepted on lossy transport")
	}
}

func TestStrictNonceOnReliablePipeUnchanged(t *testing.T) {
	ca, ctl, ctlCert, sw, swCert := transportPKI(t)
	rawA, rawB := Pipe()
	connA, connB, err := ConnectSecureOver(rawA, rawB, ctl, ctlCert, sw, swCert, ca.Pub)
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	defer connB.Close()

	// Hand-craft a frame with a skipped counter: on the reliable pipe this
	// must still fail (gap = tampering, not loss).
	if err := connA.Send(&Hello{XID: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := connB.Recv(); err != nil {
		t.Fatal(err)
	}
	connA.sendMu.Lock()
	connA.sendCtr += 5 // simulate a counter gap
	connA.sendMu.Unlock()
	if err := connA.Send(&Hello{XID: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := connB.Recv(); err == nil {
		t.Fatal("counter gap accepted on reliable pipe")
	}
}

func TestConnectSecureOverRejectsBadCA(t *testing.T) {
	_, ctl, _, sw, _ := transportPKI(t)
	otherCA, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	rogueCA, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	ta, tb, err := UDPPipe()
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	defer tb.Close()
	// Certs issued by a CA the verifier does not trust.
	_, _, err = ConnectSecureOver(ta, tb, ctl, rogueCA.Issue(ctl), sw, rogueCA.Issue(sw), otherCA.Pub)
	if err == nil {
		t.Fatal("handshake with untrusted CA succeeded")
	}
	if !errors.Is(err, ErrBadCert) {
		// Either side may fail first; both must report the cert failure.
		t.Fatalf("err = %v, want ErrBadCert", err)
	}
}

func TestUDPPipeManyConcurrentChannels(t *testing.T) {
	// A deployment brings up dozens of secure channels concurrently; make
	// sure handshakes don't cross-talk between socket pairs.
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewIdentity("controller")
	if err != nil {
		t.Fatal(err)
	}
	ctlCert := ca.Issue(ctl)
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sw, err := NewIdentity(fmt.Sprintf("switch-%d", i))
			if err != nil {
				errs <- err
				return
			}
			ta, tb, err := UDPPipe()
			if err != nil {
				errs <- err
				return
			}
			ca1, cb1, err := ConnectSecureOver(ta, tb, ctl, ctlCert, sw, ca.Issue(sw), ca.Pub)
			if err != nil {
				errs <- fmt.Errorf("channel %d: %w", i, err)
				return
			}
			defer ca1.Close()
			defer cb1.Close()
			if err := ca1.Send(&Hello{XID: uint32(i)}); err != nil {
				errs <- err
				return
			}
			m, err := cb1.Recv()
			if err != nil {
				errs <- fmt.Errorf("channel %d recv: %w", i, err)
				return
			}
			if h, ok := m.(*Hello); !ok || h.XID != uint32(i) {
				errs <- fmt.Errorf("channel %d cross-talk: %#v", i, m)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
