package openflow

import (
	"errors"
	"io"
	"sync"
	"testing"
)

// TestRawConnConcurrentSendClose is the regression test for the
// send-on-closed-channel race: many senders racing a Close must neither
// panic nor trip the race detector; every Send returns either nil or
// ErrChannelClosed.
func TestRawConnConcurrentSendClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		a, b := Pipe()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 50; j++ {
					if err := a.Send([]byte{byte(j)}); err != nil {
						if !errors.Is(err, ErrChannelClosed) {
							t.Errorf("send: %v", err)
						}
						return
					}
				}
			}()
		}
		// Drain concurrently so senders do not just fill the buffer.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := b.Recv(); err != nil {
					if err != io.EOF {
						t.Errorf("recv: %v", err)
					}
					return
				}
			}
		}()
		a.Close()
		wg.Wait()
	}
}

// TestRawConnCloseEitherEnd verifies close-from-either-end semantics: both
// directions die, like a TCP connection.
func TestRawConnCloseEitherEnd(t *testing.T) {
	a, b := Pipe()
	b.Close() // peer closes
	if err := a.Send([]byte("x")); !errors.Is(err, ErrChannelClosed) {
		t.Errorf("send after peer close: %v", err)
	}
	if _, err := a.Recv(); err != io.EOF {
		t.Errorf("recv after peer close: %v", err)
	}
	// Double close is safe from both ends.
	a.Close()
	b.Close()
}

// TestSecureConnConcurrentTraffic drives full-duplex encrypted traffic with
// concurrent send/receive on both ends.
func TestSecureConnConcurrentTraffic(t *testing.T) {
	ca, sw, swCert, ctl, ctlCert := testPKI(t)
	a, b, err := ConnectSecure(ctl, ctlCert, sw, swCert, ca.Pub)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	send := func(c *SecureConn) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := c.Send(&EchoRequest{XID: uint32(i)}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}
	recv := func(c *SecureConn) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			m, err := c.Recv()
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if m.XIDValue() != uint32(i) {
				t.Errorf("order: got %d want %d", m.XIDValue(), i)
				return
			}
		}
	}
	wg.Add(4)
	go send(a)
	go recv(b)
	go send(b)
	go recv(a)
	wg.Wait()
	a.Close()
	b.Close()
}
