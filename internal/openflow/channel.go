package openflow

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// The paper requires "encrypted OpenFlow sessions and a-priori configured
// switch certificates for authentication" (§III). This file implements that
// channel: mutual authentication with CA-issued Ed25519 certificates, an
// X25519 key agreement, and AES-GCM framing.

// Channel errors.
var (
	ErrChannelClosed = errors.New("openflow: channel closed")
	ErrBadCert       = errors.New("openflow: certificate verification failed")
	ErrBadHandshake  = errors.New("openflow: handshake verification failed")
)

// Identity is a named Ed25519 key pair (switch or controller).
type Identity struct {
	Name string
	Pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewIdentity generates a fresh identity.
func NewIdentity(name string) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate identity: %w", err)
	}
	return &Identity{Name: name, Pub: pub, priv: priv}, nil
}

// Sign signs msg with the identity's private key.
func (id *Identity) Sign(msg []byte) []byte {
	return ed25519.Sign(id.priv, msg)
}

// Certificate binds a name to a public key under a CA signature.
type Certificate struct {
	Name string
	Pub  ed25519.PublicKey
	Sig  []byte
}

func certSigningBytes(name string, pub ed25519.PublicKey) []byte {
	out := make([]byte, 0, 8+len(name)+len(pub))
	out = append(out, "ofcert.1"...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(name)))
	out = append(out, name...)
	out = append(out, pub...)
	return out
}

// Verify checks the certificate against the CA public key.
func (c *Certificate) Verify(caPub ed25519.PublicKey) bool {
	if len(c.Pub) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(caPub, certSigningBytes(c.Name, c.Pub), c.Sig)
}

func (c *Certificate) marshal() []byte {
	var e enc
	e.str(c.Name)
	e.bytesN(c.Pub)
	e.bytesN(c.Sig)
	return e.buf
}

func unmarshalCert(d *dec) Certificate {
	return Certificate{Name: d.str(), Pub: d.bytesN(), Sig: d.bytesN()}
}

// CA issues channel certificates. In the paper's deployment the CA role is
// played by whoever provisions switch certificates (the infrastructure
// owner), independent of the possibly-compromised control plane.
type CA struct {
	Pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewCA generates a certificate authority.
func NewCA() (*CA, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate ca: %w", err)
	}
	return &CA{Pub: pub, priv: priv}, nil
}

// Issue signs a certificate for the identity.
func (ca *CA) Issue(id *Identity) Certificate {
	return ca.IssueKey(id.Name, id.Pub)
}

// IssueKey signs a certificate binding name to a bare public key — the
// CSR-style path: a remote process generates its identity locally, sends
// only the public key, and receives a certificate back (the private key
// never crosses a process boundary).
func (ca *CA) IssueKey(name string, pub ed25519.PublicKey) Certificate {
	return Certificate{
		Name: name,
		Pub:  pub,
		Sig:  ed25519.Sign(ca.priv, certSigningBytes(name, pub)),
	}
}

// rawPipe is one direction of an in-memory byte-message pipe.
type rawPipe struct {
	ch chan []byte
}

// RawConn is an unauthenticated duplex byte-message connection (the
// "TCP socket" of the simulation). Both ends share a single done signal:
// closing either end tears the connection down, like a TCP close. The data
// channels themselves are never closed, so concurrent senders can never hit
// a send-on-closed-channel race.
type RawConn struct {
	send *rawPipe
	recv *rawPipe

	done      chan struct{} // shared by both ends
	closeOnce *sync.Once    // shared by both ends
}

// Pipe returns the two ends of an in-memory duplex connection. The buffer
// absorbs control-plane bursts (flow-monitor event storms) without
// deadlocking the switch pipeline against a slow controller.
func Pipe() (*RawConn, *RawConn) {
	const depth = 1024
	ab := &rawPipe{ch: make(chan []byte, depth)}
	ba := &rawPipe{ch: make(chan []byte, depth)}
	done := make(chan struct{})
	once := &sync.Once{}
	a := &RawConn{send: ab, recv: ba, done: done, closeOnce: once}
	b := &RawConn{send: ba, recv: ab, done: done, closeOnce: once}
	return a, b
}

// Send transmits one message, blocking if the peer is slow.
func (c *RawConn) Send(data []byte) error {
	select {
	case <-c.done:
		return ErrChannelClosed
	default:
	}
	select {
	case c.send.ch <- data:
		return nil
	case <-c.done:
		return ErrChannelClosed
	}
}

// TrySend transmits one message without ever blocking: if the peer's
// buffer is full the message is discarded and sent reports false. Callers
// use it for traffic that tolerates loss (notification pushes) where a
// wedged peer must not be able to stall the sender.
func (c *RawConn) TrySend(data []byte) (sent bool, err error) {
	select {
	case <-c.done:
		return false, ErrChannelClosed
	default:
	}
	select {
	case c.send.ch <- data:
		return true, nil
	case <-c.done:
		return false, ErrChannelClosed
	default:
		return false, nil
	}
}

// Recv blocks for the next message; io.EOF after close. Messages queued
// before the close are still drained.
func (c *RawConn) Recv() ([]byte, error) {
	select {
	case data := <-c.recv.ch:
		return data, nil
	case <-c.done:
		// Drain anything already queued before reporting EOF.
		select {
		case data := <-c.recv.ch:
			return data, nil
		default:
		}
		return nil, io.EOF
	}
}

// Close tears down the connection; both ends' Recv unblock with EOF once
// the queues drain.
func (c *RawConn) Close() {
	c.closeOnce.Do(func() { close(c.done) })
}

// SecureConn is an authenticated, encrypted OpenFlow message channel.
type SecureConn struct {
	raw      Transport
	peerName string
	lossy    bool

	sendAEAD cipher.AEAD
	recvAEAD cipher.AEAD

	sendMu  sync.Mutex
	sendCtr uint64
	recvMu  sync.Mutex
	recvCtr uint64
	// recvLost counts AEAD-counter gaps observed on a lossy transport —
	// frames the network dropped between successfully delivered ones.
	recvLost uint64
}

// PeerName returns the authenticated name of the remote end.
func (s *SecureConn) PeerName() string { return s.peerName }

// RecvLost reports how many inbound frames were observed lost (counter
// gaps) on a lossy transport; always 0 on in-memory pipes.
func (s *SecureConn) RecvLost() uint64 {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	return s.recvLost
}

// handshakeMsg is the single round-trip handshake payload.
type handshakeMsg struct {
	cert   Certificate
	ephPub []byte
	sig    []byte // present only in round 2/3
}

func (h *handshakeMsg) marshal() []byte {
	var e enc
	e.bytesN(h.cert.marshal())
	e.bytesN(h.ephPub)
	e.bytesN(h.sig)
	return e.buf
}

func unmarshalHandshake(data []byte) (*handshakeMsg, error) {
	d := &dec{buf: data}
	certBytes := d.bytesN()
	eph := d.bytesN()
	sig := d.bytesN()
	if d.err != nil {
		return nil, d.err
	}
	cd := &dec{buf: certBytes}
	cert := unmarshalCert(cd)
	if cd.err != nil {
		return nil, cd.err
	}
	return &handshakeMsg{cert: cert, ephPub: eph, sig: sig}, nil
}

func transcript(initEph, respEph []byte) []byte {
	out := make([]byte, 0, 8+len(initEph)+len(respEph))
	out = append(out, "ofhs.1"...)
	out = append(out, initEph...)
	out = append(out, respEph...)
	return out
}

// SecureClient runs the initiator side of the handshake over raw.
func SecureClient(raw Transport, id *Identity, cert Certificate, caPub ed25519.PublicKey) (*SecureConn, error) {
	return handshake(raw, id, cert, caPub, true)
}

// SecureServer runs the responder side of the handshake over raw.
func SecureServer(raw Transport, id *Identity, cert Certificate, caPub ed25519.PublicKey) (*SecureConn, error) {
	return handshake(raw, id, cert, caPub, false)
}

func handshake(raw Transport, id *Identity, cert Certificate, caPub ed25519.PublicKey, initiator bool) (*SecureConn, error) {
	curve := ecdh.X25519()
	ephPriv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("handshake keygen: %w", err)
	}
	ephPub := ephPriv.PublicKey().Bytes()

	var peer *handshakeMsg
	var initEph, respEph []byte
	if initiator {
		// Round 1: send cert + eph.
		if err := raw.Send((&handshakeMsg{cert: cert, ephPub: ephPub}).marshal()); err != nil {
			return nil, err
		}
		data, err := recvWithTimeout(raw)
		if err != nil {
			return nil, err
		}
		peer, err = unmarshalHandshake(data)
		if err != nil {
			return nil, err
		}
		initEph, respEph = ephPub, peer.ephPub
		// Round 3: prove possession of our identity key over the transcript.
		final := &handshakeMsg{cert: cert, ephPub: ephPub, sig: id.Sign(transcript(initEph, respEph))}
		if err := raw.Send(final.marshal()); err != nil {
			return nil, err
		}
	} else {
		data, err := recvWithTimeout(raw)
		if err != nil {
			return nil, err
		}
		peer, err = unmarshalHandshake(data)
		if err != nil {
			return nil, err
		}
		initEph, respEph = peer.ephPub, ephPub
		reply := &handshakeMsg{cert: cert, ephPub: ephPub, sig: id.Sign(transcript(initEph, respEph))}
		if err := raw.Send(reply.marshal()); err != nil {
			return nil, err
		}
		final, err := recvWithTimeout(raw)
		if err != nil {
			return nil, err
		}
		fm, err := unmarshalHandshake(final)
		if err != nil {
			return nil, err
		}
		peer.sig = fm.sig
	}

	if !peer.cert.Verify(caPub) {
		return nil, ErrBadCert
	}
	if !ed25519.Verify(peer.cert.Pub, transcript(initEph, respEph), peer.sig) {
		return nil, ErrBadHandshake
	}

	peerKey, err := curve.NewPublicKey(peer.ephPub)
	if err != nil {
		return nil, fmt.Errorf("peer ephemeral key: %w", err)
	}
	shared, err := ephPriv.ECDH(peerKey)
	if err != nil {
		return nil, fmt.Errorf("ecdh: %w", err)
	}
	ikSend, ikRecv := deriveKeys(shared, initEph, respEph, initiator)
	sendAEAD, err := newAEAD(ikSend)
	if err != nil {
		return nil, err
	}
	recvAEAD, err := newAEAD(ikRecv)
	if err != nil {
		return nil, err
	}
	lossy := false
	if lt, ok := raw.(LossyTransport); ok {
		lossy = lt.Lossy()
	}
	return &SecureConn{
		raw:      raw,
		peerName: peer.cert.Name,
		lossy:    lossy,
		sendAEAD: sendAEAD,
		recvAEAD: recvAEAD,
	}, nil
}

func deriveKeys(shared, initEph, respEph []byte, initiator bool) (sendKey, recvKey []byte) {
	mix := func(label byte) []byte {
		h := sha256.New()
		h.Write(shared)
		h.Write(initEph)
		h.Write(respEph)
		h.Write([]byte{label})
		return h.Sum(nil)
	}
	i2r := mix(1) // initiator → responder
	r2i := mix(2)
	if initiator {
		return i2r, r2i
	}
	return r2i, i2r
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:32])
	if err != nil {
		return nil, fmt.Errorf("aead: %w", err)
	}
	return cipher.NewGCM(block)
}

// Send encrypts and transmits one OpenFlow message.
func (s *SecureConn) Send(m Message) error {
	plain := Encode(m)
	s.sendMu.Lock()
	nonce := make([]byte, 12)
	binary.BigEndian.PutUint64(nonce[4:], s.sendCtr)
	s.sendCtr++
	ct := s.sendAEAD.Seal(nonce, nonce, plain, nil)
	s.sendMu.Unlock()
	return s.raw.Send(ct)
}

// TrySend encrypts and transmits one OpenFlow message without blocking;
// sent reports whether the peer accepted it. The AEAD nonce counter only
// advances on accepted sends, so a dropped frame cannot desynchronize the
// receiver's replay window (the discarded ciphertext is never transmitted,
// so reusing its nonce for the next frame reveals nothing).
func (s *SecureConn) TrySend(m Message) (sent bool, err error) {
	plain := Encode(m)
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	nonce := make([]byte, 12)
	binary.BigEndian.PutUint64(nonce[4:], s.sendCtr)
	ct := s.sendAEAD.Seal(nonce, nonce, plain, nil)
	sent, err = s.raw.TrySend(ct)
	if sent {
		s.sendCtr++
	}
	return sent, err
}

// Recv receives and decrypts the next OpenFlow message. It enforces nonce
// monotonicity, so replayed or reordered ciphertexts fail. On a lossy
// transport (real UDP) the check relaxes to forward-monotonicity: a counter
// jump means the network dropped frames (recorded in RecvLost), while a
// counter at or below the high-water mark is still rejected as a replay.
func (s *SecureConn) Recv() (Message, error) {
	data, err := s.raw.Recv()
	if err != nil {
		return nil, err
	}
	if len(data) < 12 {
		return nil, ErrShortMessage
	}
	nonce, ct := data[:12], data[12:]
	s.recvMu.Lock()
	want := s.recvCtr
	got := binary.BigEndian.Uint64(nonce[4:])
	if got != want {
		if !s.lossy || got < want {
			s.recvMu.Unlock()
			return nil, fmt.Errorf("openflow: nonce replay/reorder (got %d want %d)", got, want)
		}
		s.recvLost += got - want
	}
	s.recvCtr = got + 1
	s.recvMu.Unlock()
	plain, err := s.recvAEAD.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, fmt.Errorf("openflow: decrypt: %w", err)
	}
	m, _, err := Decode(plain)
	return m, err
}

// Close tears down the underlying connection.
func (s *SecureConn) Close() { s.raw.Close() }

// ConnectSecure is a convenience that wires an in-memory Pipe and runs both
// handshake sides concurrently, returning the two authenticated ends.
func ConnectSecure(a *Identity, aCert Certificate, b *Identity, bCert Certificate, caPub ed25519.PublicKey) (*SecureConn, *SecureConn, error) {
	rawA, rawB := Pipe()
	return ConnectSecureOver(rawA, rawB, a, aCert, b, bCert, caPub)
}
