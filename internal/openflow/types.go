// Package openflow implements the OpenFlow-subset control protocol the
// reproduction uses between switches and controllers: flow modification,
// packet-in/out, flow monitoring (the "add flow monitor" command the paper
// relies on for passive configuration monitoring), state polling, and an
// authenticated, encrypted channel (the paper's "encrypted OpenFlow
// sessions and a-priori configured switch certificates", §III).
package openflow

import (
	"fmt"

	"repro/internal/headerspace"
	"repro/internal/wire"
)

// Version is the protocol version byte of this OpenFlow subset.
const Version uint8 = 0x7A

// MsgType enumerates control messages.
type MsgType uint8

// Control message types.
const (
	TypeHello MsgType = iota + 1
	TypeEchoRequest
	TypeEchoReply
	TypeError
	TypeFlowMod
	TypePacketIn
	TypePacketOut
	TypeFlowMonitorRequest
	TypeFlowMonitorReply
	TypeStatsRequest
	TypeStatsReply
	TypeBarrierRequest
	TypeBarrierReply
	TypePortStatus
	TypeMeterMod
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeEchoRequest:
		return "echo-request"
	case TypeEchoReply:
		return "echo-reply"
	case TypeError:
		return "error"
	case TypeFlowMod:
		return "flow-mod"
	case TypePacketIn:
		return "packet-in"
	case TypePacketOut:
		return "packet-out"
	case TypeFlowMonitorRequest:
		return "flow-monitor-request"
	case TypeFlowMonitorReply:
		return "flow-monitor-reply"
	case TypeStatsRequest:
		return "stats-request"
	case TypeStatsReply:
		return "stats-reply"
	case TypeBarrierRequest:
		return "barrier-request"
	case TypeBarrierReply:
		return "barrier-reply"
	case TypePortStatus:
		return "port-status"
	case TypeMeterMod:
		return "meter-mod"
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Message is any OpenFlow control message.
type Message interface {
	Type() MsgType
	// XIDValue returns the transaction id used for request/reply pairing.
	XIDValue() uint32
}

// AnyPort matches packets from any ingress port in a Match.
const AnyPort uint32 = 0xFFFFFFFF

// ControllerPort as an action output sends the packet to the controller
// (packet-in).
const ControllerPort uint32 = 0xFFFFFFFE

// FloodPort as an action output sends the packet out all ports except the
// ingress.
const FloodPort uint32 = 0xFFFFFFFD

// FieldMatch constrains one header field under a mask.
type FieldMatch struct {
	Field wire.Field
	Value uint64
	Mask  uint64
}

// Match is the OpenFlow match: an optional in-port plus field constraints.
// An empty Match matches everything.
type Match struct {
	InPort uint32 // AnyPort (default 0 also treated as any) or a port number
	Fields []FieldMatch
}

// MatchAll returns a wildcard-everything match.
func MatchAll() Match { return Match{InPort: AnyPort} }

// HasInPort reports whether the match constrains the ingress port.
func (m Match) HasInPort() bool { return m.InPort != 0 && m.InPort != AnyPort }

// ToHeader converts the field constraints into a header-space expression
// (the in-port is handled separately by the transfer-function layer).
func (m Match) ToHeader() headerspace.Header {
	h := headerspace.AllX(wire.HeaderWidth)
	for _, f := range m.Fields {
		fh := wire.FieldHeader(f.Field, f.Value, f.Mask)
		x, err := h.Intersect(fh)
		if err != nil {
			continue
		}
		h = x
	}
	return h
}

// MatchesPacket evaluates the match against a concrete packet arriving on
// inPort.
func (m Match) MatchesPacket(p *wire.Packet, inPort uint32) bool {
	if m.HasInPort() && m.InPort != inPort {
		return false
	}
	for _, f := range m.Fields {
		var v uint64
		switch f.Field {
		case wire.FieldEthDst:
			v = p.EthDst
		case wire.FieldEthSrc:
			v = p.EthSrc
		case wire.FieldEthType:
			v = uint64(p.EthType)
		case wire.FieldVLAN:
			v = uint64(p.VLAN)
		case wire.FieldIPSrc:
			v = uint64(p.IPSrc)
		case wire.FieldIPDst:
			v = uint64(p.IPDst)
		case wire.FieldIPProto:
			v = uint64(p.IPProto)
		case wire.FieldL4Src:
			v = uint64(p.L4Src)
		case wire.FieldL4Dst:
			v = uint64(p.L4Dst)
		default:
			return false
		}
		if v&f.Mask != f.Value&f.Mask {
			return false
		}
	}
	return true
}

// ActionType enumerates flow actions.
type ActionType uint8

// Flow actions.
const (
	ActionOutput ActionType = iota + 1
	ActionSetField
	ActionPushVLAN
	ActionPopVLAN
)

// Action is one instruction applied to matched packets.
type Action struct {
	Type ActionType
	// Port is the output port for ActionOutput (may be ControllerPort or
	// FloodPort).
	Port uint32
	// Field/Value configure ActionSetField and ActionPushVLAN.
	Field wire.Field
	Value uint64
}

// Output builds an output action.
func Output(port uint32) Action { return Action{Type: ActionOutput, Port: port} }

// SetField builds a set-field action.
func SetField(f wire.Field, v uint64) Action {
	return Action{Type: ActionSetField, Field: f, Value: v}
}

// FlowEntry is one installed rule.
type FlowEntry struct {
	Priority    uint16
	Match       Match
	Actions     []Action
	Cookie      uint64
	IdleTimeout uint16
	HardTimeout uint16
	// MeterID attaches a rate-limiting meter (0 = none). The paper's
	// neutrality discussion explicitly covers "whether allocated routes and
	// meter tables meet network neutrality requirements" (§IV-C).
	MeterID uint32
}

// OutputPorts returns the concrete output ports of the entry's actions.
func (e FlowEntry) OutputPorts() []uint32 {
	var out []uint32
	for _, a := range e.Actions {
		if a.Type == ActionOutput {
			out = append(out, a.Port)
		}
	}
	return out
}

// FlowModCommand selects the flow-mod operation.
type FlowModCommand uint8

// Flow-mod commands.
const (
	FlowAdd FlowModCommand = iota + 1
	FlowModify
	FlowDelete
	FlowDeleteStrict
)

// Basic messages ------------------------------------------------------------

// Hello opens a session.
type Hello struct {
	XID        uint32
	DatapathID uint64 // sender identity (switch) or 0 (controller)
}

// Type implements Message.
func (m *Hello) Type() MsgType { return TypeHello }

// XIDValue implements Message.
func (m *Hello) XIDValue() uint32 { return m.XID }

// EchoRequest is a liveness probe.
type EchoRequest struct {
	XID  uint32
	Data []byte
}

// Type implements Message.
func (m *EchoRequest) Type() MsgType { return TypeEchoRequest }

// XIDValue implements Message.
func (m *EchoRequest) XIDValue() uint32 { return m.XID }

// EchoReply answers an EchoRequest.
type EchoReply struct {
	XID  uint32
	Data []byte
}

// Type implements Message.
func (m *EchoReply) Type() MsgType { return TypeEchoReply }

// XIDValue implements Message.
func (m *EchoReply) XIDValue() uint32 { return m.XID }

// ErrorMsg reports a protocol error.
type ErrorMsg struct {
	XID    uint32
	Code   uint16
	Reason string
}

// Error codes.
const (
	ErrCodeBadRequest uint16 = iota + 1
	ErrCodePermission
	ErrCodeBadMatch
	ErrCodeTableFull
)

// Type implements Message.
func (m *ErrorMsg) Type() MsgType { return TypeError }

// XIDValue implements Message.
func (m *ErrorMsg) XIDValue() uint32 { return m.XID }

// FlowMod installs, modifies or removes flow entries.
type FlowMod struct {
	XID     uint32
	Command FlowModCommand
	Entry   FlowEntry
}

// Type implements Message.
func (m *FlowMod) Type() MsgType { return TypeFlowMod }

// XIDValue implements Message.
func (m *FlowMod) XIDValue() uint32 { return m.XID }

// PacketInReason explains why a packet was sent to the controller.
type PacketInReason uint8

// Packet-in reasons.
const (
	ReasonNoMatch PacketInReason = iota + 1
	ReasonAction
)

// PacketIn delivers a data-plane packet to the controller.
type PacketIn struct {
	XID    uint32
	Reason PacketInReason
	InPort uint32
	// Cookie of the rule that triggered the packet-in (0 for table miss).
	Cookie uint64
	Data   []byte // full frame bytes
}

// Type implements Message.
func (m *PacketIn) Type() MsgType { return TypePacketIn }

// XIDValue implements Message.
func (m *PacketIn) XIDValue() uint32 { return m.XID }

// PacketOut injects a packet into the data plane.
type PacketOut struct {
	XID     uint32
	InPort  uint32 // treated as the packet's logical ingress (AnyPort ok)
	Actions []Action
	Data    []byte
}

// Type implements Message.
func (m *PacketOut) Type() MsgType { return TypePacketOut }

// XIDValue implements Message.
func (m *PacketOut) XIDValue() uint32 { return m.XID }

// FlowMonitorRequest subscribes the sender to flow-table change events
// (OpenFlow 1.4 "flow monitor"; the paper's passive monitoring primitive).
type FlowMonitorRequest struct {
	XID uint32
	// MonitorID distinguishes multiple subscriptions.
	MonitorID uint32
}

// Type implements Message.
func (m *FlowMonitorRequest) Type() MsgType { return TypeFlowMonitorRequest }

// XIDValue implements Message.
func (m *FlowMonitorRequest) XIDValue() uint32 { return m.XID }

// FlowEventKind is the kind of a flow monitor event.
type FlowEventKind uint8

// Flow monitor event kinds.
const (
	FlowEventAdded FlowEventKind = iota + 1
	FlowEventRemoved
	FlowEventModified
)

// FlowMonitorReply carries one table-change event.
type FlowMonitorReply struct {
	XID       uint32
	MonitorID uint32
	Kind      FlowEventKind
	Entry     FlowEntry
	// Seq is a per-switch monotonically increasing event number, letting
	// subscribers detect gaps (lost events force a full resync).
	Seq uint64
}

// Type implements Message.
func (m *FlowMonitorReply) Type() MsgType { return TypeFlowMonitorReply }

// XIDValue implements Message.
func (m *FlowMonitorReply) XIDValue() uint32 { return m.XID }

// StatsRequest polls the switch's full flow table (the paper's active
// "query the switch state").
type StatsRequest struct {
	XID uint32
}

// Type implements Message.
func (m *StatsRequest) Type() MsgType { return TypeStatsRequest }

// XIDValue implements Message.
func (m *StatsRequest) XIDValue() uint32 { return m.XID }

// MeterConfig is one meter-table entry: a token-bucket rate limiter flow
// entries can reference via MeterID.
type MeterConfig struct {
	MeterID  uint32
	RateKbps uint32
	BurstKB  uint32
}

// MeterModCommand selects the meter-mod operation.
type MeterModCommand uint8

// Meter-mod commands.
const (
	MeterAdd MeterModCommand = iota + 1
	MeterDelete
)

// MeterMod installs or removes a meter.
type MeterMod struct {
	XID     uint32
	Command MeterModCommand
	Config  MeterConfig
}

// Type implements Message.
func (m *MeterMod) Type() MsgType { return TypeMeterMod }

// XIDValue implements Message.
func (m *MeterMod) XIDValue() uint32 { return m.XID }

// StatsReply returns the full flow table plus port list and meter table.
type StatsReply struct {
	XID        uint32
	DatapathID uint64
	Entries    []FlowEntry
	Ports      []uint32
	Meters     []MeterConfig
	// TableSeq is the switch's current event sequence number at snapshot
	// time, aligning polls with the monitor event stream.
	TableSeq uint64
}

// Type implements Message.
func (m *StatsReply) Type() MsgType { return TypeStatsReply }

// XIDValue implements Message.
func (m *StatsReply) XIDValue() uint32 { return m.XID }

// BarrierRequest forces ordering: the switch answers after processing all
// preceding messages.
type BarrierRequest struct {
	XID uint32
}

// Type implements Message.
func (m *BarrierRequest) Type() MsgType { return TypeBarrierRequest }

// XIDValue implements Message.
func (m *BarrierRequest) XIDValue() uint32 { return m.XID }

// BarrierReply answers a BarrierRequest.
type BarrierReply struct {
	XID uint32
}

// Type implements Message.
func (m *BarrierReply) Type() MsgType { return TypeBarrierReply }

// XIDValue implements Message.
func (m *BarrierReply) XIDValue() uint32 { return m.XID }

// PortStatus reports a port coming up or going down.
type PortStatus struct {
	XID  uint32
	Port uint32
	Up   bool
}

// Type implements Message.
func (m *PortStatus) Type() MsgType { return TypePortStatus }

// XIDValue implements Message.
func (m *PortStatus) XIDValue() uint32 { return m.XID }

// Compile-time interface checks.
var (
	_ Message = (*Hello)(nil)
	_ Message = (*EchoRequest)(nil)
	_ Message = (*EchoReply)(nil)
	_ Message = (*ErrorMsg)(nil)
	_ Message = (*FlowMod)(nil)
	_ Message = (*PacketIn)(nil)
	_ Message = (*PacketOut)(nil)
	_ Message = (*FlowMonitorRequest)(nil)
	_ Message = (*FlowMonitorReply)(nil)
	_ Message = (*StatsRequest)(nil)
	_ Message = (*StatsReply)(nil)
	_ Message = (*BarrierRequest)(nil)
	_ Message = (*BarrierReply)(nil)
	_ Message = (*PortStatus)(nil)
	_ Message = (*MeterMod)(nil)
)
