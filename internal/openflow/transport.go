package openflow

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Transport is a duplex message-oriented connection the secure channel runs
// over. The in-memory Pipe (RawConn) is the in-process instance; UDPTransport
// carries the same messages over real loopback UDP sockets so a lab
// deployment exercises genuine socket I/O between components.
type Transport interface {
	// Send transmits one message, blocking if the peer is slow.
	Send(data []byte) error
	// TrySend transmits one message without blocking; sent reports whether
	// the message was accepted (best-effort traffic such as notification
	// pushes uses it).
	TrySend(data []byte) (sent bool, err error)
	// Recv blocks for the next message; io.EOF after close.
	Recv() ([]byte, error)
	// Close tears the connection down; both ends' Recv unblock.
	Close()
}

// LossyTransport marks a transport whose delivery is best-effort (datagrams
// may be dropped by the network or socket buffers). The secure channel
// relaxes its strict AEAD-counter equality check to forward-monotonicity on
// such transports: a counter jump is recorded as loss, while a counter
// regression is still rejected as a replay.
type LossyTransport interface {
	Transport
	Lossy() bool
}

// maxUDPMessage bounds one encrypted message to what a single UDP datagram
// can carry (65507 minus the 12-byte nonce prefix, rounded down).
const maxUDPMessage = 65000

// ErrMessageTooLarge reports a message that does not fit one UDP datagram.
var ErrMessageTooLarge = errors.New("openflow: message exceeds one UDP datagram")

// udpSocketBuffer sizes the kernel send/receive buffers. Control-plane
// bursts (flow-monitor storms, parallel poll replies) must be absorbed by
// the socket, not dropped: a drop costs the session a resync.
const udpSocketBuffer = 4 << 20

// UDPTransport is a Transport over one bound UDP socket exchanging
// datagrams with a fixed peer address. One datagram carries exactly one
// message. Delivery is genuinely best-effort — this is a real socket, and
// the kernel will drop datagrams under buffer pressure — so it implements
// LossyTransport and the secure channel treats counter gaps as loss.
type UDPTransport struct {
	conn *net.UDPConn
	peer *net.UDPAddr

	mu     sync.Mutex
	closed bool
}

// Lossy marks UDP delivery as best-effort.
func (u *UDPTransport) Lossy() bool { return true }

// LocalAddr returns the bound socket address.
func (u *UDPTransport) LocalAddr() *net.UDPAddr {
	return u.conn.LocalAddr().(*net.UDPAddr)
}

// Send transmits one datagram to the peer.
func (u *UDPTransport) Send(data []byte) error {
	if len(data) > maxUDPMessage {
		return fmt.Errorf("%w (%d bytes)", ErrMessageTooLarge, len(data))
	}
	_, err := u.conn.WriteToUDP(data, u.peer)
	if err != nil {
		if u.isClosed() {
			return ErrChannelClosed
		}
		return err
	}
	return nil
}

// TrySend transmits one datagram best-effort. UDP writes never block on the
// receiver, so this is Send with oversized messages counted as "not sent"
// rather than an error.
func (u *UDPTransport) TrySend(data []byte) (bool, error) {
	if len(data) > maxUDPMessage {
		return false, nil
	}
	if err := u.Send(data); err != nil {
		if errors.Is(err, ErrChannelClosed) {
			return false, ErrChannelClosed
		}
		// A transient kernel refusal (e.g. ENOBUFS) is a drop, not a
		// channel failure — exactly the loss best-effort traffic tolerates.
		return false, nil
	}
	return true, nil
}

// Recv blocks for the next datagram from the peer. Datagrams from any other
// source address are discarded: the secure channel's AEAD rejects forgeries
// anyway, but filtering here keeps off-path noise out of the decrypt path.
func (u *UDPTransport) Recv() ([]byte, error) {
	buf := make([]byte, maxUDPMessage+12)
	for {
		n, from, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			if u.isClosed() {
				return nil, io.EOF
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return nil, io.EOF
		}
		if from == nil || !from.IP.Equal(u.peer.IP) || from.Port != u.peer.Port {
			continue
		}
		out := make([]byte, n)
		copy(out, buf[:n])
		return out, nil
	}
}

// RecvTimeout receives one datagram from the peer with a deadline; a silent
// peer surfaces as an error instead of a hang. Datagrams from other source
// addresses are rejected as in Recv.
func (u *UDPTransport) RecvTimeout(d time.Duration) ([]byte, error) {
	_ = u.conn.SetReadDeadline(time.Now().Add(d))
	defer func() { _ = u.conn.SetReadDeadline(time.Time{}) }()
	buf := make([]byte, maxUDPMessage+12)
	n, from, err := u.conn.ReadFromUDP(buf)
	if err != nil {
		return nil, fmt.Errorf("openflow: bounded receive: %w", err)
	}
	if from == nil || !from.IP.Equal(u.peer.IP) || from.Port != u.peer.Port {
		return nil, errors.New("openflow: datagram from unexpected peer")
	}
	out := make([]byte, n)
	copy(out, buf[:n])
	return out, nil
}

// Close shuts the socket down; a blocked Recv unblocks with EOF.
func (u *UDPTransport) Close() {
	u.mu.Lock()
	already := u.closed
	u.closed = true
	u.mu.Unlock()
	if !already {
		_ = u.conn.Close()
	}
}

func (u *UDPTransport) isClosed() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.closed
}

// newUDPSocket binds one loopback UDP socket with deep kernel buffers.
func newUDPSocket() (*net.UDPConn, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("openflow: bind udp: %w", err)
	}
	// Best effort: some kernels clamp these, and a clamped buffer only
	// raises the loss rate the channel already tolerates.
	_ = conn.SetReadBuffer(udpSocketBuffer)
	_ = conn.SetWriteBuffer(udpSocketBuffer)
	return conn, nil
}

// UDPPipe returns the two ends of a duplex connection over a pair of real
// loopback UDP sockets — the socket-backed equivalent of Pipe().
func UDPPipe() (*UDPTransport, *UDPTransport, error) {
	ca, err := newUDPSocket()
	if err != nil {
		return nil, nil, err
	}
	cb, err := newUDPSocket()
	if err != nil {
		_ = ca.Close()
		return nil, nil, err
	}
	a := &UDPTransport{conn: ca, peer: cb.LocalAddr().(*net.UDPAddr)}
	b := &UDPTransport{conn: cb, peer: ca.LocalAddr().(*net.UDPAddr)}
	return a, b, nil
}

// ConnectSecureOver runs the authenticated handshake across an established
// transport pair (client side on a, server side on b), returning the two
// secure ends. ConnectSecure is the Pipe()-backed convenience; deployments
// bringing components up over real sockets use this with UDPPipe().
func ConnectSecureOver(a, b Transport, aID *Identity, aCert Certificate, bID *Identity, bCert Certificate, caPub ed25519.PublicKey) (*SecureConn, *SecureConn, error) {
	type result struct {
		conn *SecureConn
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		conn, err := SecureServer(b, bID, bCert, caPub)
		ch <- result{conn, err}
	}()
	connA, errA := SecureClient(a, aID, aCert, caPub)
	resB := <-ch
	if errA != nil {
		if resB.conn != nil {
			resB.conn.Close()
		}
		return nil, nil, errA
	}
	if resB.err != nil {
		if connA != nil {
			connA.Close()
		}
		return nil, nil, resB.err
	}
	return connA, resB.conn, nil
}

// handshakeTimeout bounds one handshake round over a lossy transport; a
// lost handshake datagram surfaces as an error instead of a hang.
const handshakeTimeout = 5 * time.Second

// deadlineRecver is a transport with a bounded receive (the UDP transports
// and mux conns implement it; wrappers that decorate them should forward it
// so handshakes over them stay bounded too).
type deadlineRecver interface {
	RecvTimeout(d time.Duration) ([]byte, error)
}

// recvWithTimeout receives one message with a deadline when the transport
// supports it (UDP); in-memory pipes block indefinitely as before.
func recvWithTimeout(t Transport) ([]byte, error) {
	if dr, ok := t.(deadlineRecver); ok {
		return dr.RecvTimeout(handshakeTimeout)
	}
	return t.Recv()
}
