package openflow

import (
	"errors"
	"io"
	"testing"
)

func testPKI(t *testing.T) (*CA, *Identity, Certificate, *Identity, Certificate) {
	t.Helper()
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewIdentity("switch-1")
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewIdentity("rvaas")
	if err != nil {
		t.Fatal(err)
	}
	return ca, sw, ca.Issue(sw), ctl, ca.Issue(ctl)
}

func TestSecureChannelRoundTrip(t *testing.T) {
	ca, sw, swCert, ctl, ctlCert := testPKI(t)
	a, b, err := ConnectSecure(ctl, ctlCert, sw, swCert, ca.Pub)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	if a.PeerName() != "switch-1" || b.PeerName() != "rvaas" {
		t.Errorf("peer names: %q %q", a.PeerName(), b.PeerName())
	}

	want := &PacketIn{XID: 7, Reason: ReasonNoMatch, InPort: 1, Data: []byte("frame")}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	pi, ok := got.(*PacketIn)
	if !ok || pi.XID != 7 || string(pi.Data) != "frame" {
		t.Errorf("got %#v", got)
	}

	// And the reverse direction.
	if err := b.Send(&EchoReply{XID: 7}); err != nil {
		t.Fatal(err)
	}
	if m, err := a.Recv(); err != nil || m.Type() != TypeEchoReply {
		t.Errorf("reverse recv: %v %v", m, err)
	}
}

func TestSecureChannelRejectsForgedCert(t *testing.T) {
	ca, sw, _, ctl, ctlCert := testPKI(t)
	// A second CA (the attacker) signs the switch cert.
	evilCA, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	forged := evilCA.Issue(sw)
	_, _, err = ConnectSecure(ctl, ctlCert, sw, forged, ca.Pub)
	if !errors.Is(err, ErrBadCert) {
		t.Errorf("err = %v, want ErrBadCert", err)
	}
}

func TestSecureChannelRejectsStolenCert(t *testing.T) {
	ca, sw, swCert, ctl, ctlCert := testPKI(t)
	// Attacker presents the switch's real certificate but signs the
	// transcript with its own key.
	attacker, err := NewIdentity("attacker")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ConnectSecure(ctl, ctlCert, attacker, swCert, ca.Pub)
	if !errors.Is(err, ErrBadHandshake) {
		t.Errorf("err = %v, want ErrBadHandshake", err)
	}
	_ = sw
}

func TestSecureChannelManyMessages(t *testing.T) {
	ca, sw, swCert, ctl, ctlCert := testPKI(t)
	a, b, err := ConnectSecure(ctl, ctlCert, sw, swCert, ca.Pub)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	const n = 500
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(&EchoRequest{XID: uint32(i)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.XIDValue() != uint32(i) {
			t.Fatalf("out of order: got %d want %d", m.XIDValue(), i)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRawConnCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe()
	go a.Close()
	for {
		_, err := b.Recv()
		if err != nil {
			if err != io.EOF {
				t.Errorf("err = %v, want EOF", err)
			}
			break
		}
	}
	if err := a.Send([]byte("x")); !errors.Is(err, ErrChannelClosed) {
		t.Errorf("send after close: %v", err)
	}
}

func TestRawConnDrainAfterClose(t *testing.T) {
	a, b := Pipe()
	if err := a.Send([]byte("queued")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	data, err := b.Recv()
	if err != nil || string(data) != "queued" {
		t.Errorf("drain: %q %v", data, err)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Errorf("after drain: %v, want EOF", err)
	}
}

func TestCertificateVerify(t *testing.T) {
	ca, sw, swCert, _, _ := testPKI(t)
	if !swCert.Verify(ca.Pub) {
		t.Error("valid cert rejected")
	}
	tampered := swCert
	tampered.Name = "switch-2"
	if tampered.Verify(ca.Pub) {
		t.Error("tampered cert accepted")
	}
	_ = sw
}

func TestIdentitySign(t *testing.T) {
	id, err := NewIdentity("x")
	if err != nil {
		t.Fatal(err)
	}
	sig := id.Sign([]byte("msg"))
	if len(sig) == 0 {
		t.Error("empty signature")
	}
}
