package openflow

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// UDPMux is a secure-channel listener over one bound UDP socket: datagrams
// are demultiplexed by source address into per-peer Transports, so a
// controller can accept attach dials from many separately-launched switch
// processes on a single well-known port. Each accepted MuxConn is the
// responder end of one handshake (SecureServer); the dialing process uses
// DialUDP + SecureClient.
type UDPMux struct {
	conn *net.UDPConn

	mu     sync.Mutex
	peers  map[string]*MuxConn
	closed bool

	accept chan *MuxConn
	done   chan struct{}
}

// ListenUDPMux binds addr ("" or host:0 for an ephemeral loopback port) and
// starts demultiplexing.
func ListenUDPMux(addr string) (*UDPMux, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("openflow: mux listen %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("openflow: mux listen %q: %w", addr, err)
	}
	_ = conn.SetReadBuffer(udpSocketBuffer)
	_ = conn.SetWriteBuffer(udpSocketBuffer)
	m := &UDPMux{
		conn:   conn,
		peers:  make(map[string]*MuxConn),
		accept: make(chan *MuxConn, 16),
		done:   make(chan struct{}),
	}
	go m.readLoop()
	return m, nil
}

// Addr returns the bound listen address.
func (m *UDPMux) Addr() *net.UDPAddr { return m.conn.LocalAddr().(*net.UDPAddr) }

// Accept blocks for the next new-peer connection; io.EOF after Close.
func (m *UDPMux) Accept() (*MuxConn, error) {
	select {
	case c := <-m.accept:
		return c, nil
	case <-m.done:
		return nil, io.EOF
	}
}

// Close shuts the socket down; every peer conn's Recv unblocks with EOF.
func (m *UDPMux) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	peers := make([]*MuxConn, 0, len(m.peers))
	for _, c := range m.peers {
		peers = append(peers, c)
	}
	m.mu.Unlock()
	close(m.done)
	_ = m.conn.Close()
	for _, c := range peers {
		c.Close()
	}
}

// readLoop pumps the shared socket, routing each datagram to its peer's
// receive queue (creating the peer conn on first sight).
func (m *UDPMux) readLoop() {
	buf := make([]byte, maxUDPMessage+12)
	for {
		n, from, err := m.conn.ReadFromUDP(buf)
		if err != nil {
			m.mu.Lock()
			closed := m.closed
			m.mu.Unlock()
			if closed {
				return
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			// Unrecoverable socket error: behave like Close.
			m.Close()
			return
		}
		if from == nil {
			continue
		}
		data := make([]byte, n)
		copy(data, buf[:n])
		c, fresh := m.connFor(from)
		if c == nil {
			continue // mux closing
		}
		if fresh {
			select {
			case m.accept <- c:
			case <-m.done:
				return
			}
		}
		// Per-peer queue; a full queue drops the datagram, which is exactly
		// the loss semantics the secure channel tolerates on UDP.
		select {
		case c.recv <- data:
		default:
		}
	}
}

func (m *UDPMux) connFor(from *net.UDPAddr) (*MuxConn, bool) {
	key := from.String()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false
	}
	if c, ok := m.peers[key]; ok {
		return c, false
	}
	c := &MuxConn{
		mux:  m,
		peer: from,
		key:  key,
		recv: make(chan []byte, 256),
		done: make(chan struct{}),
	}
	m.peers[key] = c
	return c, true
}

// forget drops a closed peer conn so a later dial from the same source
// address is surfaced as a fresh Accept.
func (m *UDPMux) forget(key string) {
	m.mu.Lock()
	delete(m.peers, key)
	m.mu.Unlock()
}

// MuxConn is one peer's Transport over the shared mux socket. UDP loss
// semantics apply (LossyTransport), same as UDPTransport.
type MuxConn struct {
	mux  *UDPMux
	peer *net.UDPAddr
	key  string
	recv chan []byte

	done      chan struct{}
	closeOnce sync.Once
}

// Lossy marks mux delivery as best-effort.
func (c *MuxConn) Lossy() bool { return true }

// PeerAddr returns the remote address this conn exchanges datagrams with.
func (c *MuxConn) PeerAddr() *net.UDPAddr { return c.peer }

// Send transmits one datagram to the peer through the shared socket.
func (c *MuxConn) Send(data []byte) error {
	if len(data) > maxUDPMessage {
		return fmt.Errorf("%w (%d bytes)", ErrMessageTooLarge, len(data))
	}
	select {
	case <-c.done:
		return ErrChannelClosed
	default:
	}
	if _, err := c.mux.conn.WriteToUDP(data, c.peer); err != nil {
		select {
		case <-c.done:
			return ErrChannelClosed
		default:
		}
		return err
	}
	return nil
}

// TrySend transmits best-effort: oversized or transiently-refused datagrams
// count as drops, not failures.
func (c *MuxConn) TrySend(data []byte) (bool, error) {
	if len(data) > maxUDPMessage {
		return false, nil
	}
	if err := c.Send(data); err != nil {
		if errors.Is(err, ErrChannelClosed) {
			return false, ErrChannelClosed
		}
		return false, nil
	}
	return true, nil
}

// Recv blocks for the next datagram from this peer; io.EOF after Close.
func (c *MuxConn) Recv() ([]byte, error) {
	select {
	case data := <-c.recv:
		return data, nil
	case <-c.done:
		// Drain anything routed before close so no message is lost on a
		// graceful shutdown race.
		select {
		case data := <-c.recv:
			return data, nil
		default:
			return nil, io.EOF
		}
	}
}

// RecvTimeout receives with a deadline (the handshake path's bounded read).
func (c *MuxConn) RecvTimeout(d time.Duration) ([]byte, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case data := <-c.recv:
		return data, nil
	case <-c.done:
		return nil, io.EOF
	case <-timer.C:
		return nil, fmt.Errorf("openflow: handshake receive: timeout after %v", d)
	}
}

// Close detaches the peer from the mux; the mux socket stays up for other
// peers, and a re-dial from the same address Accepts as a new conn.
func (c *MuxConn) Close() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.mux.forget(c.key)
	})
}

// DialUDP opens a Transport to a remote mux (or single-peer) UDP listener:
// a fresh local socket exchanging datagrams with addr. The dialer is the
// handshake initiator (SecureClient).
func DialUDP(addr string) (*UDPTransport, error) {
	peer, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("openflow: dial udp %q: %w", addr, err)
	}
	conn, err := newUDPSocket()
	if err != nil {
		return nil, err
	}
	return &UDPTransport{conn: conn, peer: peer}, nil
}
