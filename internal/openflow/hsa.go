package openflow

import (
	"fmt"

	"repro/internal/headerspace"
	"repro/internal/wire"
)

// BuildTransferFunction compiles a flow table into a header-space transfer
// function over the switch's port set. This is the bridge between the
// configuration snapshots RVaaS collects and its logical verification step
// (paper §IV-A2: "relevant routes are computed in the logical space, given
// the current network snapshot").
//
// Semantics:
//   - Output(port) emits on that port.
//   - Output(ControllerPort) is control traffic and is excluded from
//     data-plane reachability. Rules whose ONLY output is the controller
//     (e.g. RVaaS's own magic-header interception rules) are treated as
//     TRANSPARENT: they are omitted rather than modelled as drops. This is
//     a deliberate, conservative over-approximation — the tiny header
//     slivers they intercept are reported as reachable even though they
//     would be diverted to the controller — chosen because exact
//     subtraction of every interception match multiplies the term count of
//     every flow crossing every switch. Over-approximating reachability can
//     only add endpoints to a report (false alarms), never hide one.
//   - Output(FloodPort) is expanded into one HSA rule per ingress port,
//     emitting on every other port (matching data-plane flood semantics).
//   - SetField actions become rewrite masks.
//   - Entries with no output action at all act as drop rules (they still
//     consume their match, shadowing lower priorities).
func BuildTransferFunction(entries []FlowEntry, ports []uint32) *headerspace.TransferFunction {
	tf := headerspace.NewTransferFunction(wire.HeaderWidth)
	for i, e := range entries {
		if controllerOnly(e.Actions) {
			continue
		}
		match := e.Match.ToHeader()
		var inPorts []headerspace.PortID
		if e.Match.HasInPort() {
			inPorts = []headerspace.PortID{headerspace.PortID(e.Match.InPort)}
		}
		mask, value := rewriteOf(e.Actions)
		annotation := fmt.Sprintf("entry#%d cookie=%#x", i, e.Cookie)

		outPorts, flood := dataPlaneOutputs(e.Actions)
		if !flood {
			rule := headerspace.Rule{
				Priority:   int(e.Priority),
				Match:      match,
				InPorts:    inPorts,
				Mask:       mask,
				Value:      value,
				OutPorts:   outPorts,
				Annotation: annotation,
			}
			// AddRule cannot fail here: widths are fixed by construction.
			_ = tf.AddRule(rule)
			continue
		}
		// Flood: one rule per ingress port so "all except ingress" holds.
		candidates := ports
		if e.Match.HasInPort() {
			candidates = []uint32{e.Match.InPort}
		}
		for _, in := range candidates {
			var outs []headerspace.PortID
			outs = append(outs, outPorts...)
			for _, p := range ports {
				if p != in {
					outs = append(outs, headerspace.PortID(p))
				}
			}
			_ = tf.AddRule(headerspace.Rule{
				Priority:   int(e.Priority),
				Match:      match,
				InPorts:    []headerspace.PortID{headerspace.PortID(in)},
				Mask:       mask,
				Value:      value,
				OutPorts:   outs,
				Annotation: annotation + " (flood)",
			})
		}
	}
	return tf
}

// DataPlaneTransparent reports whether the entry is omitted from the
// compiled transfer function entirely (all its outputs target the
// controller — see the BuildTransferFunction semantics above). Such
// entries neither forward, drop, nor shadow data-plane traffic in the
// logical model, so adding or removing one cannot change any reachability
// evaluation; the snapshot store's rule-delta diff uses this to exclude
// them from both the change set and the shadow set.
func (e FlowEntry) DataPlaneTransparent() bool { return controllerOnly(e.Actions) }

// controllerOnly reports whether the action list has output actions and all
// of them target the controller.
func controllerOnly(actions []Action) bool {
	sawOutput := false
	for _, a := range actions {
		if a.Type != ActionOutput {
			continue
		}
		sawOutput = true
		if a.Port != ControllerPort {
			return false
		}
	}
	return sawOutput
}

// dataPlaneOutputs extracts concrete output ports and whether the action
// list floods.
func dataPlaneOutputs(actions []Action) (outs []headerspace.PortID, flood bool) {
	for _, a := range actions {
		if a.Type != ActionOutput {
			continue
		}
		switch a.Port {
		case ControllerPort:
			// excluded from data-plane reachability
		case FloodPort:
			flood = true
		default:
			outs = append(outs, headerspace.PortID(a.Port))
		}
	}
	return outs, flood
}

// rewriteOf folds SetField actions into a mask/value header pair. Mask is
// Bit1 at rewritten positions and Bit0 elsewhere; a zero-width pair means no
// rewrite.
func rewriteOf(actions []Action) (mask, value headerspace.Header) {
	hasRewrite := false
	m := headerspace.Filled(wire.HeaderWidth, headerspace.Bit0)
	v := headerspace.AllX(wire.HeaderWidth)
	for _, a := range actions {
		if a.Type != ActionSetField {
			continue
		}
		hasRewrite = true
		off, w := wire.FieldOffset(a.Field)
		for i := 0; i < w; i++ {
			m = m.SetBit(off+i, headerspace.Bit1)
			if a.Value>>uint(i)&1 == 1 {
				v = v.SetBit(off+i, headerspace.Bit1)
			} else {
				v = v.SetBit(off+i, headerspace.Bit0)
			}
		}
	}
	if !hasRewrite {
		return headerspace.Header{}, headerspace.Header{}
	}
	return m, v
}
