package openflow

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestUDPMuxDemuxByPeer: two dialers through one listener socket, each
// accepted conn only sees its own peer's datagrams.
func TestUDPMuxDemuxByPeer(t *testing.T) {
	mux, err := ListenUDPMux("")
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	d1, err := DialUDP(mux.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	d2, err := DialUDP(mux.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	if err := d1.Send([]byte("from-one")); err != nil {
		t.Fatal(err)
	}
	if err := d2.Send([]byte("from-two")); err != nil {
		t.Fatal(err)
	}

	// Accept both conns and read each one's first datagram; arrival order is
	// not deterministic, so match by payload.
	got := map[string]*MuxConn{}
	for i := 0; i < 2; i++ {
		c, err := mux.Accept()
		if err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
		defer c.Close()
		data, err := c.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("recv on conn %d: %v", i, err)
		}
		got[string(data)] = c
	}
	if got["from-one"] == nil || got["from-two"] == nil {
		t.Fatalf("demux payloads = %v", got)
	}

	// Replies route back through the shared socket to the right dialer.
	if err := got["from-one"].Send([]byte("ack-one")); err != nil {
		t.Fatal(err)
	}
	if err := got["from-two"].Send([]byte("ack-two")); err != nil {
		t.Fatal(err)
	}
	if data, err := d1.Recv(); err != nil || string(data) != "ack-one" {
		t.Fatalf("dialer one reply = %q, %v", data, err)
	}
	if data, err := d2.Recv(); err != nil || string(data) != "ack-two" {
		t.Fatalf("dialer two reply = %q, %v", data, err)
	}

	// Later datagrams from a known peer go to the existing conn, not Accept.
	if err := d1.Send([]byte("again")); err != nil {
		t.Fatal(err)
	}
	if data, err := got["from-one"].RecvTimeout(2 * time.Second); err != nil || string(data) != "again" {
		t.Fatalf("second datagram = %q, %v", data, err)
	}
}

// TestUDPMuxSecureHandshake: a full secure channel between a DialUDP client
// and a mux-accepted server conn — the exact shape a switchd child uses to
// attach to the controller's mux listener.
func TestUDPMuxSecureHandshake(t *testing.T) {
	ca, ctl, ctlCert, sw, swCert := transportPKI(t)

	mux, err := ListenUDPMux("")
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	type serverResult struct {
		conn *SecureConn
		err  error
	}
	srvCh := make(chan serverResult, 1)
	go func() {
		mc, err := mux.Accept()
		if err != nil {
			srvCh <- serverResult{nil, err}
			return
		}
		conn, err := SecureServer(mc, ctl, ctlCert, ca.Pub)
		srvCh <- serverResult{conn, err}
	}()

	dial, err := DialUDP(mux.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cli, err := SecureClient(dial, sw, swCert, ca.Pub)
	if err != nil {
		t.Fatalf("secure client over mux: %v", err)
	}
	defer cli.Close()
	res := <-srvCh
	if res.err != nil {
		t.Fatalf("secure server over mux: %v", res.err)
	}
	defer res.conn.Close()

	if got := res.conn.PeerName(); got != "switch-1" {
		t.Fatalf("server peer = %q, want switch-1", got)
	}
	if got := cli.PeerName(); got != "controller" {
		t.Fatalf("client peer = %q, want controller", got)
	}

	// Encrypted round trip both ways over the shared socket.
	if err := cli.Send(&Hello{XID: 7}); err != nil {
		t.Fatal(err)
	}
	m, err := res.conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := m.(*Hello); !ok || h.XID != 7 {
		t.Fatalf("server got %#v", m)
	}
	if err := res.conn.Send(&EchoReply{XID: 7}); err != nil {
		t.Fatal(err)
	}
	m, err = cli.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := m.(*EchoReply); !ok || r.XID != 7 {
		t.Fatalf("client got %#v", m)
	}
}

// TestUDPMuxHandshakeTimeout: a server handshake on a conn whose peer never
// answers fails within the handshake bound instead of hanging.
func TestUDPMuxHandshakeTimeout(t *testing.T) {
	ca, ctl, ctlCert, _, _ := transportPKI(t)

	mux, err := ListenUDPMux("")
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	// A bare dialer pokes the mux once, then goes silent mid-handshake.
	dial, err := DialUDP(mux.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer dial.Close()
	if err := dial.Send([]byte("client-hello-that-never-continues")); err != nil {
		t.Fatal(err)
	}
	mc, err := mux.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	done := make(chan error, 1)
	go func() {
		_, err := SecureServer(mc, ctl, ctlCert, ca.Pub)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("handshake with a silent peer succeeded")
		}
	case <-time.After(handshakeTimeout + 3*time.Second):
		t.Fatal("handshake did not time out")
	}
}

// TestUDPMuxConnCloseAndRedial: closing a peer conn detaches it; a fresh
// datagram from the same source address surfaces as a new Accept.
func TestUDPMuxConnCloseAndRedial(t *testing.T) {
	mux, err := ListenUDPMux("")
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	dial, err := DialUDP(mux.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer dial.Close()
	if err := dial.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	c1, err := mux.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if data, err := c1.RecvTimeout(2 * time.Second); err != nil || string(data) != "one" {
		t.Fatalf("first datagram = %q, %v", data, err)
	}
	c1.Close()
	if _, err := c1.Recv(); err != io.EOF {
		t.Fatalf("recv after close = %v, want EOF", err)
	}
	if err := c1.Send([]byte("x")); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("send after close = %v, want ErrChannelClosed", err)
	}

	// Same source address dials again: new conn, not the closed one.
	if err := dial.Send([]byte("two")); err != nil {
		t.Fatal(err)
	}
	c2, err := mux.Accept()
	if err != nil {
		t.Fatalf("re-accept after close: %v", err)
	}
	defer c2.Close()
	if data, err := c2.RecvTimeout(2 * time.Second); err != nil || string(data) != "two" {
		t.Fatalf("redial datagram = %q, %v", data, err)
	}
}

// TestUDPMuxCloseUnblocks: closing the mux unblocks Accept and every peer
// conn's Recv with EOF.
func TestUDPMuxCloseUnblocks(t *testing.T) {
	mux, err := ListenUDPMux("")
	if err != nil {
		t.Fatal(err)
	}
	dial, err := DialUDP(mux.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer dial.Close()
	if err := dial.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	c, err := mux.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvTimeout(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := mux.Accept(); err != io.EOF {
			t.Errorf("accept after close = %v, want EOF", err)
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := c.Recv(); err != io.EOF {
			t.Errorf("peer recv after close = %v, want EOF", err)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	mux.Close()
	mux.Close() // idempotent
	wg.Wait()
}

// TestUDPMuxManySecureChannels: N dialers handshake concurrently through one
// mux socket and exchange traffic — the multi-switchd attach pattern.
func TestUDPMuxManySecureChannels(t *testing.T) {
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewIdentity("controller")
	if err != nil {
		t.Fatal(err)
	}
	ctlCert := ca.Issue(ctl)

	mux, err := ListenUDPMux("")
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	const n = 8
	// Server side: accept and handshake each peer as it arrives.
	var srvWG sync.WaitGroup
	srvWG.Add(n)
	go func() {
		for i := 0; i < n; i++ {
			mc, err := mux.Accept()
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			go func() {
				defer srvWG.Done()
				conn, err := SecureServer(mc, ctl, ctlCert, ca.Pub)
				if err != nil {
					t.Errorf("server handshake: %v", err)
					return
				}
				defer conn.Close()
				if !strings.HasPrefix(conn.PeerName(), "switch-") {
					t.Errorf("peer name = %q", conn.PeerName())
				}
				m, err := conn.Recv()
				if err != nil {
					t.Errorf("server recv: %v", err)
					return
				}
				if err := conn.Send(&EchoReply{XID: m.(*EchoRequest).XID}); err != nil {
					t.Errorf("server send: %v", err)
				}
			}()
		}
	}()

	var cliWG sync.WaitGroup
	for i := 0; i < n; i++ {
		cliWG.Add(1)
		go func(i int) {
			defer cliWG.Done()
			id, err := NewIdentity(fmt.Sprintf("switch-%d", i+1))
			if err != nil {
				t.Errorf("identity %d: %v", i, err)
				return
			}
			dial, err := DialUDP(mux.Addr().String())
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			conn, err := SecureClient(dial, id, ca.Issue(id), ca.Pub)
			if err != nil {
				t.Errorf("client handshake %d: %v", i, err)
				return
			}
			defer conn.Close()
			if err := conn.Send(&EchoRequest{XID: uint32(i)}); err != nil {
				t.Errorf("client send %d: %v", i, err)
				return
			}
			m, err := conn.Recv()
			if err != nil {
				t.Errorf("client recv %d: %v", i, err)
				return
			}
			if r, ok := m.(*EchoReply); !ok || r.XID != uint32(i) {
				t.Errorf("client %d reply = %#v", i, m)
			}
		}(i)
	}
	cliWG.Wait()
	srvWG.Wait()
}

// TestIssueKeyCSRPath: a certificate issued from a bare public key (the
// cross-process CSR path) verifies and handshakes exactly like one issued
// from a local Identity.
func TestIssueKeyCSRPath(t *testing.T) {
	ca, ctl, ctlCert, _, _ := transportPKI(t)

	// The "remote process" generates its identity locally...
	remote, err := NewIdentity("switch-9")
	if err != nil {
		t.Fatal(err)
	}
	// ...and only the public key crosses the boundary.
	cert := ca.IssueKey(remote.Name, remote.Pub)
	if !cert.Verify(ca.Pub) {
		t.Fatal("IssueKey cert does not verify")
	}
	if cert.Name != "switch-9" {
		t.Fatalf("cert name = %q", cert.Name)
	}

	a, b := Pipe()
	connA, connB, err := ConnectSecureOver(a, b, remote, cert, ctl, ctlCert, ca.Pub)
	if err != nil {
		t.Fatalf("handshake with IssueKey cert: %v", err)
	}
	connA.Close()
	connB.Close()
}
