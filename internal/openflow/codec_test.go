package openflow

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/wire"
)

func sampleEntry() FlowEntry {
	return FlowEntry{
		Priority: 100,
		Match: Match{
			InPort: 3,
			Fields: []FieldMatch{
				{Field: wire.FieldIPDst, Value: uint64(wire.IPv4(10, 0, 1, 0)), Mask: 0xFFFFFF00},
				{Field: wire.FieldIPProto, Value: uint64(wire.IPProtoUDP), Mask: 0xFF},
			},
		},
		Actions: []Action{Output(7), SetField(wire.FieldVLAN, 42)},
		Cookie:  0xC00C1E,
	}
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	data := Encode(m)
	got, n, err := Decode(data)
	if err != nil {
		t.Fatalf("decode %s: %v", m.Type(), err)
	}
	if n != len(data) {
		t.Fatalf("consumed %d of %d bytes", n, len(data))
	}
	return got
}

func TestEncodeDecodeAllTypes(t *testing.T) {
	msgs := []Message{
		&Hello{XID: 1, DatapathID: 99},
		&EchoRequest{XID: 2, Data: []byte("ping")},
		&EchoReply{XID: 2, Data: []byte("ping")},
		&ErrorMsg{XID: 3, Code: ErrCodeBadMatch, Reason: "bad match"},
		&FlowMod{XID: 4, Command: FlowAdd, Entry: sampleEntry()},
		&PacketIn{XID: 5, Reason: ReasonNoMatch, InPort: 2, Cookie: 77, Data: []byte{1, 2, 3}},
		&PacketOut{XID: 6, InPort: AnyPort, Actions: []Action{Output(4)}, Data: []byte{9}},
		&FlowMonitorRequest{XID: 7, MonitorID: 1},
		&FlowMonitorReply{XID: 8, MonitorID: 1, Kind: FlowEventAdded, Entry: sampleEntry(), Seq: 12},
		&StatsRequest{XID: 9},
		&StatsReply{XID: 10, DatapathID: 5, Entries: []FlowEntry{sampleEntry()}, Ports: []uint32{1, 2, 3}, TableSeq: 44},
		&BarrierRequest{XID: 11},
		&BarrierReply{XID: 11},
		&PortStatus{XID: 12, Port: 3, Up: true},
		&MeterMod{XID: 13, Command: MeterAdd, Config: MeterConfig{MeterID: 9, RateKbps: 512, BurstKB: 64}},
		&StatsReply{XID: 14, DatapathID: 5, Entries: []FlowEntry{sampleEntry()},
			Ports: []uint32{1}, Meters: []MeterConfig{{MeterID: 2, RateKbps: 100, BurstKB: 8}}, TableSeq: 9},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s round trip mismatch:\n got %#v\nwant %#v", m.Type(), got, m)
		}
	}
}

func TestDecodeStream(t *testing.T) {
	a := Encode(&Hello{XID: 1})
	b := Encode(&BarrierRequest{XID: 2})
	stream := append(append([]byte{}, a...), b...)
	m1, n1, err := Decode(stream)
	if err != nil || m1.Type() != TypeHello {
		t.Fatalf("first: %v %v", m1, err)
	}
	m2, n2, err := Decode(stream[n1:])
	if err != nil || m2.Type() != TypeBarrierRequest {
		t.Fatalf("second: %v %v", m2, err)
	}
	if n1+n2 != len(stream) {
		t.Errorf("consumed %d, want %d", n1+n2, len(stream))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("nil input should fail")
	}
	bad := Encode(&Hello{XID: 1})
	bad[0] = 0x01
	if _, _, err := Decode(bad); err != ErrBadVersion {
		t.Errorf("version check: %v", err)
	}
	unknown := Encode(&Hello{XID: 1})
	unknown[1] = 0xEE
	if _, _, err := Decode(unknown); err == nil {
		t.Error("unknown type should fail")
	}
	short := Encode(&FlowMod{XID: 4, Command: FlowAdd, Entry: sampleEntry()})
	if _, _, err := Decode(short[:len(short)-3]); err == nil {
		t.Error("truncated body should fail")
	}
}

func TestMatchToHeader(t *testing.T) {
	m := Match{Fields: []FieldMatch{
		{Field: wire.FieldIPDst, Value: uint64(wire.IPv4(10, 0, 1, 2)), Mask: 0xFFFFFFFF},
	}}
	h := m.ToHeader()
	pkt := &wire.Packet{EthType: wire.EthTypeIPv4, IPDst: wire.IPv4(10, 0, 1, 2)}
	if !h.MatchesValue(wire.PacketBits(pkt)) {
		t.Error("header should match the packet")
	}
	pkt.IPDst = wire.IPv4(10, 0, 1, 3)
	if h.MatchesValue(wire.PacketBits(pkt)) {
		t.Error("header should not match a different dst")
	}
}

func TestMatchesPacket(t *testing.T) {
	m := Match{
		InPort: 2,
		Fields: []FieldMatch{
			{Field: wire.FieldL4Dst, Value: uint64(wire.PortRVaaSQuery), Mask: 0xFFFF},
			{Field: wire.FieldIPProto, Value: uint64(wire.IPProtoUDP), Mask: 0xFF},
		},
	}
	p := &wire.Packet{
		EthType: wire.EthTypeIPv4, IPProto: wire.IPProtoUDP, L4Dst: wire.PortRVaaSQuery,
	}
	if !m.MatchesPacket(p, 2) {
		t.Error("should match on port 2")
	}
	if m.MatchesPacket(p, 3) {
		t.Error("should not match on port 3")
	}
	p.L4Dst = 80
	if m.MatchesPacket(p, 2) {
		t.Error("should not match different dst port")
	}
}

func TestMatchAllMatchesEverything(t *testing.T) {
	m := MatchAll()
	p := &wire.Packet{EthType: wire.EthTypeIPv4, IPDst: 1}
	if !m.MatchesPacket(p, 99) {
		t.Error("MatchAll should match")
	}
	if m.HasInPort() {
		t.Error("MatchAll has no in-port constraint")
	}
}

func TestOutputPorts(t *testing.T) {
	e := sampleEntry()
	ports := e.OutputPorts()
	if len(ports) != 1 || ports[0] != 7 {
		t.Errorf("ports = %v", ports)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for mt := TypeHello; mt <= TypePortStatus; mt++ {
		if mt.String() == "" {
			t.Errorf("type %d unnamed", mt)
		}
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	m := &FlowMod{XID: 4, Command: FlowAdd, Entry: sampleEntry()}
	if !bytes.Equal(Encode(m), Encode(m)) {
		t.Error("encoding must be deterministic")
	}
}
