package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/wire"
)

// Codec errors.
var (
	ErrShortMessage = errors.New("openflow: short message")
	ErrBadVersion   = errors.New("openflow: bad version")
	ErrUnknownType  = errors.New("openflow: unknown message type")
)

const envelopeLen = 1 + 1 + 4 // version, type, body length

// Encode serializes a message with its envelope.
func Encode(m Message) []byte {
	body := encodeBody(m)
	out := make([]byte, envelopeLen+len(body))
	out[0] = Version
	out[1] = byte(m.Type())
	binary.BigEndian.PutUint32(out[2:], uint32(len(body)))
	copy(out[envelopeLen:], body)
	return out
}

// Decode parses one message from data and returns it along with the number
// of bytes consumed, allowing streams of concatenated messages.
func Decode(data []byte) (Message, int, error) {
	if len(data) < envelopeLen {
		return nil, 0, ErrShortMessage
	}
	if data[0] != Version {
		return nil, 0, ErrBadVersion
	}
	bodyLen := int(binary.BigEndian.Uint32(data[2:]))
	total := envelopeLen + bodyLen
	if len(data) < total {
		return nil, 0, ErrShortMessage
	}
	m, err := decodeBody(MsgType(data[1]), data[envelopeLen:total])
	if err != nil {
		return nil, 0, err
	}
	return m, total, nil
}

// enc is a byte-appending big-endian encoder.
type enc struct{ buf []byte }

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *enc) bytesN(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *enc) str(s string) { e.bytesN([]byte(s)) }

func (e *enc) bool(b bool) {
	if b {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// dec is a big-endian decoder with a sticky error.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) need(n int) bool {
	if d.err != nil || d.off+n > len(d.buf) {
		d.err = ErrShortMessage
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) bytesN() []byte {
	n := int(d.u32())
	if !d.need(n) {
		return nil
	}
	out := append([]byte(nil), d.buf[d.off:d.off+n]...)
	d.off += n
	return out
}

func (d *dec) str() string { return string(d.bytesN()) }

func (d *dec) bool() bool { return d.u8() == 1 }

func encodeMatch(e *enc, m Match) {
	e.u32(m.InPort)
	e.u16(uint16(len(m.Fields)))
	for _, f := range m.Fields {
		e.u8(uint8(f.Field))
		e.u64(f.Value)
		e.u64(f.Mask)
	}
}

func decodeMatch(d *dec) Match {
	m := Match{InPort: d.u32()}
	n := int(d.u16())
	for i := 0; i < n && d.err == nil; i++ {
		m.Fields = append(m.Fields, FieldMatch{
			Field: wire.Field(d.u8()),
			Value: d.u64(),
			Mask:  d.u64(),
		})
	}
	return m
}

func encodeActions(e *enc, as []Action) {
	e.u16(uint16(len(as)))
	for _, a := range as {
		e.u8(uint8(a.Type))
		e.u32(a.Port)
		e.u8(uint8(a.Field))
		e.u64(a.Value)
	}
}

func decodeActions(d *dec) []Action {
	n := int(d.u16())
	var as []Action
	for i := 0; i < n && d.err == nil; i++ {
		as = append(as, Action{
			Type:  ActionType(d.u8()),
			Port:  d.u32(),
			Field: wire.Field(d.u8()),
			Value: d.u64(),
		})
	}
	return as
}

func encodeEntry(e *enc, fe FlowEntry) {
	e.u16(fe.Priority)
	encodeMatch(e, fe.Match)
	encodeActions(e, fe.Actions)
	e.u64(fe.Cookie)
	e.u16(fe.IdleTimeout)
	e.u16(fe.HardTimeout)
	e.u32(fe.MeterID)
}

func decodeEntry(d *dec) FlowEntry {
	return FlowEntry{
		Priority:    d.u16(),
		Match:       decodeMatch(d),
		Actions:     decodeActions(d),
		Cookie:      d.u64(),
		IdleTimeout: d.u16(),
		HardTimeout: d.u16(),
		MeterID:     d.u32(),
	}
}

func encodeBody(m Message) []byte {
	var e enc
	switch v := m.(type) {
	case *Hello:
		e.u32(v.XID)
		e.u64(v.DatapathID)
	case *EchoRequest:
		e.u32(v.XID)
		e.bytesN(v.Data)
	case *EchoReply:
		e.u32(v.XID)
		e.bytesN(v.Data)
	case *ErrorMsg:
		e.u32(v.XID)
		e.u16(v.Code)
		e.str(v.Reason)
	case *FlowMod:
		e.u32(v.XID)
		e.u8(uint8(v.Command))
		encodeEntry(&e, v.Entry)
	case *PacketIn:
		e.u32(v.XID)
		e.u8(uint8(v.Reason))
		e.u32(v.InPort)
		e.u64(v.Cookie)
		e.bytesN(v.Data)
	case *PacketOut:
		e.u32(v.XID)
		e.u32(v.InPort)
		encodeActions(&e, v.Actions)
		e.bytesN(v.Data)
	case *FlowMonitorRequest:
		e.u32(v.XID)
		e.u32(v.MonitorID)
	case *FlowMonitorReply:
		e.u32(v.XID)
		e.u32(v.MonitorID)
		e.u8(uint8(v.Kind))
		encodeEntry(&e, v.Entry)
		e.u64(v.Seq)
	case *StatsRequest:
		e.u32(v.XID)
	case *StatsReply:
		e.u32(v.XID)
		e.u64(v.DatapathID)
		e.u16(uint16(len(v.Entries)))
		for _, fe := range v.Entries {
			encodeEntry(&e, fe)
		}
		e.u16(uint16(len(v.Ports)))
		for _, p := range v.Ports {
			e.u32(p)
		}
		e.u16(uint16(len(v.Meters)))
		for _, mc := range v.Meters {
			e.u32(mc.MeterID)
			e.u32(mc.RateKbps)
			e.u32(mc.BurstKB)
		}
		e.u64(v.TableSeq)
	case *BarrierRequest:
		e.u32(v.XID)
	case *BarrierReply:
		e.u32(v.XID)
	case *PortStatus:
		e.u32(v.XID)
		e.u32(v.Port)
		e.bool(v.Up)
	case *MeterMod:
		e.u32(v.XID)
		e.u8(uint8(v.Command))
		e.u32(v.Config.MeterID)
		e.u32(v.Config.RateKbps)
		e.u32(v.Config.BurstKB)
	default:
		// Unknown concrete type: encode nothing; Decode will fail loudly.
	}
	return e.buf
}

func decodeBody(t MsgType, body []byte) (Message, error) {
	d := &dec{buf: body}
	var m Message
	switch t {
	case TypeHello:
		m = &Hello{XID: d.u32(), DatapathID: d.u64()}
	case TypeEchoRequest:
		m = &EchoRequest{XID: d.u32(), Data: d.bytesN()}
	case TypeEchoReply:
		m = &EchoReply{XID: d.u32(), Data: d.bytesN()}
	case TypeError:
		m = &ErrorMsg{XID: d.u32(), Code: d.u16(), Reason: d.str()}
	case TypeFlowMod:
		m = &FlowMod{XID: d.u32(), Command: FlowModCommand(d.u8()), Entry: decodeEntry(d)}
	case TypePacketIn:
		m = &PacketIn{XID: d.u32(), Reason: PacketInReason(d.u8()), InPort: d.u32(), Cookie: d.u64(), Data: d.bytesN()}
	case TypePacketOut:
		m = &PacketOut{XID: d.u32(), InPort: d.u32(), Actions: decodeActions(d), Data: d.bytesN()}
	case TypeFlowMonitorRequest:
		m = &FlowMonitorRequest{XID: d.u32(), MonitorID: d.u32()}
	case TypeFlowMonitorReply:
		m = &FlowMonitorReply{XID: d.u32(), MonitorID: d.u32(), Kind: FlowEventKind(d.u8()), Entry: decodeEntry(d), Seq: d.u64()}
	case TypeStatsRequest:
		m = &StatsRequest{XID: d.u32()}
	case TypeStatsReply:
		sr := &StatsReply{XID: d.u32(), DatapathID: d.u64()}
		n := int(d.u16())
		for i := 0; i < n && d.err == nil; i++ {
			sr.Entries = append(sr.Entries, decodeEntry(d))
		}
		np := int(d.u16())
		for i := 0; i < np && d.err == nil; i++ {
			sr.Ports = append(sr.Ports, d.u32())
		}
		nm := int(d.u16())
		for i := 0; i < nm && d.err == nil; i++ {
			sr.Meters = append(sr.Meters, MeterConfig{
				MeterID: d.u32(), RateKbps: d.u32(), BurstKB: d.u32(),
			})
		}
		sr.TableSeq = d.u64()
		m = sr
	case TypeBarrierRequest:
		m = &BarrierRequest{XID: d.u32()}
	case TypeBarrierReply:
		m = &BarrierReply{XID: d.u32()}
	case TypePortStatus:
		m = &PortStatus{XID: d.u32(), Port: d.u32(), Up: d.bool()}
	case TypeMeterMod:
		m = &MeterMod{XID: d.u32(), Command: MeterModCommand(d.u8()), Config: MeterConfig{
			MeterID: d.u32(), RateKbps: d.u32(), BurstKB: d.u32(),
		}}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
	if d.err != nil {
		return nil, d.err
	}
	return m, nil
}
