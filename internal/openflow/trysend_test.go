package openflow

import (
	"testing"
	"time"
)

// TestRawConnTrySendNeverBlocks fills the pipe to capacity and verifies
// the overflowing send is reported dropped instead of blocking.
func TestRawConnTrySendNeverBlocks(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	accepted := 0
	for i := 0; i < 5000; i++ {
		sent, err := a.TrySend([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if !sent {
			break
		}
		accepted++
	}
	if accepted == 0 || accepted >= 5000 {
		t.Fatalf("accepted %d sends, want the pipe depth", accepted)
	}
	// Still non-blocking and dropped on a full pipe.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if sent, _ := a.TrySend([]byte{0xFF}); sent {
			t.Error("send accepted on a full pipe")
		}
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("TrySend blocked on a full pipe")
	}
	// The peer drains everything that was accepted.
	for i := 0; i < accepted; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
}

// TestSecureConnTrySendCounterIntegrity verifies a dropped TrySend does
// not desynchronize the AEAD nonce stream: the counter only advances on
// accepted sends, so the receiver decodes every delivered frame after an
// arbitrary number of drops.
func TestSecureConnTrySendCounterIntegrity(t *testing.T) {
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	idA, err := NewIdentity("a")
	if err != nil {
		t.Fatal(err)
	}
	idB, err := NewIdentity("b")
	if err != nil {
		t.Fatal(err)
	}
	connA, connB, err := ConnectSecure(idA, ca.Issue(idA), idB, ca.Issue(idB), ca.Pub)
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()

	// Saturate the channel with non-blocking sends.
	accepted, dropped := 0, 0
	for i := 0; i < 2000; i++ {
		sent, err := connA.TrySend(&EchoRequest{XID: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		if sent {
			accepted++
		} else {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatalf("no drops after 2000 sends into an undrained channel (accepted %d)", accepted)
	}
	// Every accepted frame decrypts in order despite the interleaved drops.
	for i := 0; i < accepted; i++ {
		if _, err := connB.Recv(); err != nil {
			t.Fatalf("recv %d/%d after drops: %v", i, accepted, err)
		}
	}
	// The stream continues cleanly with blocking sends afterwards.
	if err := connA.Send(&EchoRequest{XID: 9999}); err != nil {
		t.Fatal(err)
	}
	m, err := connB.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.XIDValue() != 9999 {
		t.Fatalf("post-drop message XID = %d", m.XIDValue())
	}
}
