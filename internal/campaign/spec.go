package campaign

import (
	"fmt"

	"repro/internal/labspec"
)

// FromSpec builds a campaign configuration from a validated lab spec with a
// campaign: section. The campaign reuses the spec's topology section (the
// single source of truth for lab shape) but always runs a fresh
// single-process deployment: placement, agents and declared invariants do
// not apply to campaign labs.
func FromSpec(s *labspec.Spec) (Config, error) {
	if s.Campaign == nil {
		return Config{}, fmt.Errorf("campaign: spec %q has no campaign section", s.Name)
	}
	if err := s.Validate(); err != nil {
		return Config{}, err
	}
	topo, err := topoFromSpec(s.Topology)
	if err != nil {
		return Config{}, err
	}
	mode, err := ParseOracleMode(s.Campaign.Oracle)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Topo:          topo,
		Seed:          s.Campaign.Seed,
		Steps:         s.Campaign.Steps,
		Weights:       s.Campaign.Weights,
		Oracle:        mode,
		Subscribers:   s.Campaign.Subscribers,
		LieStep:       s.Campaign.LieStep,
		SettleTimeout: s.Campaign.SettleTimeout.Std(),
	}, nil
}

// topoFromSpec maps the replayable subset of the spec topology grammar onto
// the campaign's serializable lab recipe.
func topoFromSpec(t labspec.TopologySpec) (Topo, error) {
	switch t.Generator {
	case "linear", "ring", "star":
		return Topo{Kind: t.Generator, A: t.Size}, nil
	case "grid":
		return Topo{Kind: "grid", A: t.Rows, B: t.Cols}, nil
	case "fattree":
		return Topo{Kind: "fattree", A: t.K}, nil
	}
	return Topo{}, fmt.Errorf("campaign: topology generator %q is not replayable in a campaign (want linear, ring, star, grid or fattree)", t.Generator)
}
