package campaign

import (
	"errors"
	"fmt"
)

// Shrink reduces a diverging action trace to a 1-minimal reproducer using
// delta debugging (ddmin): repeatedly re-executing candidate sub-traces
// against fresh lab+oracle pairs and keeping any that still produce a
// divergence of the same kind. Because every action is concrete (rule sets,
// targets and attack parameters derive from the action's own Key, never
// from trace position), any sub-trace is executable, which is what makes
// ddmin applicable at all.
//
// The result is 1-minimal: removing any single remaining action makes the
// divergence disappear. Each probe costs a full lab bring-up, so expect
// shrinking to dominate campaign wall time.
func Shrink(cfg Config, actions []Action) ([]Action, *Result, error) {
	cfg = cfg.withDefaults()
	base, err := New(cfg).Execute(actions)
	if err != nil {
		return nil, nil, err
	}
	if base.Divergence == nil {
		return nil, nil, errors.New("campaign: trace does not diverge; nothing to shrink")
	}
	kind := base.Divergence.Kind
	probes := 0
	fails := func(trace []Action) (*Result, bool) {
		probes++
		r, err := New(cfg).Execute(trace)
		if err != nil {
			// A sub-trace that breaks the lab itself (not the oracle) is
			// treated as non-reproducing: shrinking must converge on the
			// divergence, not on unrelated failures.
			return nil, false
		}
		return r, r.Divergence != nil && r.Divergence.Kind == kind
	}

	cur, res := actions, base
	n := 2
	for len(cur) >= 2 && n <= len(cur) {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Action, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) == 0 {
				continue
			}
			if r, ok := fails(cand); ok {
				cfg.Logf("shrink: %d -> %d actions (probe %d)", len(cur), len(cand), probes)
				cur, res = cand, r
				n = 2
				reduced = true
				break
			}
		}
		if !reduced {
			if n == len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	cfg.Logf("shrink: minimal trace has %d action(s) after %d probe(s): %s",
		len(cur), probes, summarize(cur))
	return cur, res, nil
}

func summarize(actions []Action) string {
	s := ""
	for i, a := range actions {
		if i > 0 {
			s += "; "
		}
		s += a.String()
	}
	if s == "" {
		s = "<empty>"
	}
	return fmt.Sprintf("[%s]", s)
}
