package campaign

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/history"
	"repro/internal/rvaas"
)

// fingerprints accumulate the campaign's three determinism/divergence
// streams: the committed event stream, the per-subscription verdict state,
// and the violation-log transition stream. Snapshot ids are deliberately
// excluded from every hash: concurrent committers on different switches
// race for global id assignment, so ids are not stable run-to-run even
// though the per-switch committed state sequence is.
type fingerprints struct {
	events      uint64
	verdicts    uint64
	transitions uint64
}

func (f *fingerprints) String() string {
	return fmt.Sprintf("ev:%016x verdicts:%016x transitions:%016x", f.events, f.verdicts, f.transitions)
}

func fold(acc uint64, s string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%016x|%s", acc, s)
	return h.Sum64()
}

// canonicalizeEvents orders one step's tapped events for replay and
// hashing. Replay order is commit order (snapshot id — total and correct:
// per-switch commits are serialized, and full-state replay makes
// cross-switch interleaving irrelevant to the end-of-step snapshot).
// The hash orders by (switch, seq, id) and hashes everything except the id,
// which makes the digest identical across runs of the same seed.
func canonicalizeEvents(evs []rvaas.TapEvent) []rvaas.TapEvent {
	sort.Slice(evs, func(i, j int) bool { return evs[i].SnapshotID < evs[j].SnapshotID })
	return evs
}

func hashEvents(acc uint64, evs []rvaas.TapEvent) uint64 {
	hashed := make([]rvaas.TapEvent, len(evs))
	copy(hashed, evs)
	sort.Slice(hashed, func(i, j int) bool {
		a, b := hashed[i], hashed[j]
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.SnapshotID < b.SnapshotID
	})
	for _, ev := range hashed {
		acc = fold(acc, fmt.Sprintf("sw=%d seq=%d src=%d entries=%v ports=%v meters=%v",
			ev.Switch, ev.Seq, ev.Source, ev.Entries, ev.Ports, ev.Meters))
	}
	return acc
}

// verdictLine is the comparable projection of one standing invariant's
// state. Session/instance/footprint fields are excluded: they legitimately
// differ between the primary (fleet placement, wire sessions) and the
// shadow reference.
func verdictLine(s rvaas.SubscriptionInfo) string {
	return fmt.Sprintf("id=%d kind=%s param=%q violated=%t detail=%q seq=%d",
		s.ID, s.Kind, s.Param, s.Violated, s.Detail, s.Seq)
}

func verdictLines(subs []rvaas.SubscriptionInfo) []string {
	sorted := make([]rvaas.SubscriptionInfo, len(subs))
	copy(sorted, subs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	out := make([]string, len(sorted))
	for i, s := range sorted {
		out[i] = verdictLine(s)
	}
	return out
}

func hashLines(acc uint64, lines []string) uint64 {
	for _, l := range lines {
		acc = fold(acc, l)
	}
	return acc
}

// transitionLines canonicalizes one step's new violation-log records:
// sorted by subscription id (a subscription transitions at most once per
// step — both controllers recheck exactly once), timestamps and snapshot
// ids dropped.
func transitionLines(recs []history.Violation) []string {
	sorted := make([]history.Violation, len(recs))
	copy(sorted, recs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].SubID != sorted[j].SubID {
			return sorted[i].SubID < sorted[j].SubID
		}
		return sorted[i].Event < sorted[j].Event
	})
	out := make([]string, len(sorted))
	for i, v := range sorted {
		out[i] = fmt.Sprintf("sub=%d event=%s kind=%s detail=%q", v.SubID, v.Event, v.Kind, v.Detail)
	}
	return out
}

// firstDiff returns the first position where two canonical line slices
// disagree, formatted for a divergence report.
func firstDiff(primary, shadow []string) string {
	n := len(primary)
	if len(shadow) > n {
		n = len(shadow)
	}
	for i := 0; i < n; i++ {
		var p, s string
		if i < len(primary) {
			p = primary[i]
		}
		if i < len(shadow) {
			s = shadow[i]
		}
		if p != s {
			return fmt.Sprintf("primary[%d]=%s shadow[%d]=%s", i, orMissing(p), i, orMissing(s))
		}
	}
	return ""
}

func orMissing(s string) string {
	if s == "" {
		return "<missing>"
	}
	return s
}
