package campaign

import (
	"encoding/json"
	"fmt"
	"os"
)

// Expectation values for Artifact.Expect.
const (
	// ExpectClean asserts the trace completes with no divergence (a
	// regression corpus of campaigns the engine must keep passing).
	ExpectClean = "clean"
	// ExpectDivergence asserts the trace reproduces a divergence of
	// Artifact.ExpectKind (shrunk reproducers of caught lies/bugs).
	ExpectDivergence = "divergence"
)

// Artifact is a self-contained, replayable campaign: everything needed to
// rebuild the lab and re-execute the exact action trace, plus the expected
// outcome. Graduated artifacts live in testdata/campaigns/ and are replayed
// by CI (TestCorpusReplay) and `attacksim replay`.
type Artifact struct {
	Name        string `json:"name"`
	Notes       string `json:"notes,omitempty"`
	Seed        int64  `json:"seed"`
	Topology    Topo   `json:"topology"`
	Subscribers int    `json:"subscribers"`
	Oracle      string `json:"oracle,omitempty"`
	// Expect is ExpectClean or ExpectDivergence.
	Expect string `json:"expect"`
	// ExpectKind pins the divergence stream ("verdict", "transition",
	// "stale-green") when Expect is ExpectDivergence.
	ExpectKind string   `json:"expect_kind,omitempty"`
	Actions    []Action `json:"actions"`
}

// Validate rejects malformed artifacts before any lab is built.
func (a *Artifact) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("campaign: artifact has no name")
	}
	if _, err := ParseOracleMode(a.Oracle); err != nil {
		return err
	}
	switch a.Expect {
	case ExpectClean:
		if a.ExpectKind != "" {
			return fmt.Errorf("campaign: artifact %q: expect_kind set on a clean expectation", a.Name)
		}
	case ExpectDivergence:
	default:
		return fmt.Errorf("campaign: artifact %q: expect must be %q or %q (got %q)",
			a.Name, ExpectClean, ExpectDivergence, a.Expect)
	}
	if len(a.Actions) == 0 {
		return fmt.Errorf("campaign: artifact %q has no actions", a.Name)
	}
	for i, act := range a.Actions {
		if !KnownOp(act.Op) {
			return fmt.Errorf("campaign: artifact %q: action %d has unknown op %q", a.Name, i, act.Op)
		}
	}
	return nil
}

// Config builds the engine configuration the artifact replays under.
func (a *Artifact) Config() (Config, error) {
	mode, err := ParseOracleMode(a.Oracle)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Topo:        a.Topology,
		Seed:        a.Seed,
		Subscribers: a.Subscribers,
		Oracle:      mode,
	}, nil
}

// Replay re-executes the artifact's trace against a fresh lab+oracle pair.
func (a *Artifact) Replay() (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	cfg, err := a.Config()
	if err != nil {
		return nil, err
	}
	return New(cfg).Execute(a.Actions)
}

// Check replays the artifact and verifies the recorded expectation holds.
func (a *Artifact) Check() (*Result, error) {
	res, err := a.Replay()
	if err != nil {
		return nil, err
	}
	switch a.Expect {
	case ExpectClean:
		if res.Divergence != nil {
			return res, fmt.Errorf("campaign: artifact %q expected a clean run, got: %s", a.Name, res.Divergence)
		}
	case ExpectDivergence:
		if res.Divergence == nil {
			return res, fmt.Errorf("campaign: artifact %q expected a %s divergence, got a clean run", a.Name, a.ExpectKind)
		}
		if a.ExpectKind != "" && res.Divergence.Kind != a.ExpectKind {
			return res, fmt.Errorf("campaign: artifact %q expected a %s divergence, got: %s",
				a.Name, a.ExpectKind, res.Divergence)
		}
	}
	return res, nil
}

// LoadArtifact reads and validates one artifact JSON file.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("campaign: artifact %s: %w", path, err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// Save writes the artifact as indented JSON (the checked-in corpus format).
func (a *Artifact) Save(path string) error {
	if err := a.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
