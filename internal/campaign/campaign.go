package campaign

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/deploy"
	"repro/internal/rvaas"
	"repro/internal/topology"
	"repro/internal/verifier"
)

// beatMissContract is the stale-green bound the fault plane measures
// (ROADMAP: detach-detect vs the 400 ms contract): from the instant a
// switch's control session is lost, degraded verdict transitions must be
// committed within this window.
const beatMissContract = 400 * time.Millisecond

// Topo is a serializable lab topology recipe, so shrunk reproducers can be
// replayed against a freshly built, byte-identical lab.
type Topo struct {
	Kind string `json:"kind"` // linear | ring | star | grid | fattree
	A    int    `json:"a"`
	B    int    `json:"b,omitempty"` // grid columns (unused otherwise)
}

// Build constructs the topology and deterministically assigns regions when
// the generator left switches unplaced (waypoint invariants need regions).
func (t Topo) Build() (*topology.Topology, error) {
	var (
		topo *topology.Topology
		err  error
	)
	switch t.Kind {
	case "", "linear":
		topo, err = topology.Linear(t.A, nil)
	case "ring":
		topo, err = topology.Ring(t.A)
	case "star":
		topo, err = topology.Star(t.A)
	case "grid":
		cols := t.B
		if cols == 0 {
			cols = t.A
		}
		topo, err = topology.Grid(t.A, cols)
	case "fattree":
		topo, err = topology.FatTree(t.A)
	default:
		return nil, fmt.Errorf("campaign: unknown topology kind %q", t.Kind)
	}
	if err != nil {
		return nil, err
	}
	for i, sw := range topo.Switches() {
		if topo.RegionOf(sw) == "" {
			topo.SetRegion(sw, topology.Region(fmt.Sprintf("r%d", i%3)))
		}
	}
	return topo, nil
}

// Config parameterizes one campaign.
type Config struct {
	// Topo is the lab recipe (default: linear/6).
	Topo Topo
	// Seed drives action generation; the same (Seed, Steps, Weights, Topo)
	// produces a byte-identical event stream and verdict fingerprints.
	Seed int64
	// Steps is the campaign length in actions (Run only).
	Steps int
	// Weights overrides the action-grammar distribution (nil = defaults).
	Weights map[string]int
	// Oracle selects the trusted reference path ("" = legacy scan).
	Oracle OracleMode
	// Subscribers is the number of standing invariants registered up front,
	// cycling reach/isolation/path-length/waypoint (default 8).
	Subscribers int
	// LieStep, when > 0, replaces that step's action with OpLie: a
	// reachability break whose verdict transitions the primary commits
	// corrupted (Byzantine verdict stream). The oracle differ must flag it.
	LieStep int
	// SettleTimeout bounds the per-step quiescence barrier (default 5s).
	SettleTimeout time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// OnLab, when set, receives the freshly built primary deployment before
	// the campaign starts (attacksim mounts the admin API on it so live
	// progress is visible at GET /v1/campaign while the campaign runs).
	OnLab func(*deploy.Deployment)
}

func (c Config) withDefaults() Config {
	if c.Topo.Kind == "" {
		c.Topo.Kind = "linear"
	}
	if c.Topo.A == 0 {
		c.Topo.A = 6
	}
	if c.Steps == 0 {
		c.Steps = 40
	}
	if c.Subscribers == 0 {
		c.Subscribers = 8
	}
	if c.SettleTimeout == 0 {
		c.SettleTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Divergence is one differential-oracle failure: the step it surfaced at
// and which of the compared streams disagreed.
type Divergence struct {
	Step   int    `json:"step"`
	Action string `json:"action"`
	// Kind is "verdict" (per-subscription state), "transition" (violation-
	// log stream) or "stale-green" (beat-miss contract breach).
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

func (d *Divergence) String() string {
	return fmt.Sprintf("step %d (%s): %s divergence: %s", d.Step, d.Action, d.Kind, d.Detail)
}

// Result summarizes one executed campaign.
type Result struct {
	Steps       int
	Actions     []Action
	Events      int
	Transitions int
	// Fingerprint is the canonical digest of (event stream, verdict
	// states, transition stream) — byte-identical across runs of one seed.
	Fingerprint string
	// Divergence is nil for a clean campaign.
	Divergence    *Divergence
	StaleGreenMax time.Duration
}

// Status is a read-only progress snapshot (admin GET /v1/campaign).
type Status struct {
	Running       bool        `json:"running"`
	Seed          int64       `json:"seed"`
	Oracle        string      `json:"oracle"`
	Step          int         `json:"step"`
	Steps         int         `json:"steps"`
	LastAction    string      `json:"last_action,omitempty"`
	Events        int         `json:"events"`
	Transitions   int         `json:"transitions"`
	Diverged      bool        `json:"diverged"`
	Divergence    *Divergence `json:"divergence,omitempty"`
	Fingerprint   string      `json:"fingerprint,omitempty"`
	StaleGreenMax string      `json:"stale_green_max,omitempty"`
}

// Engine executes campaigns and exposes live progress.
type Engine struct {
	cfg Config

	mu sync.Mutex
	st Status
}

// New returns an engine for one campaign configuration.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{cfg: cfg, st: Status{Seed: cfg.Seed, Oracle: string(cfg.Oracle), Steps: cfg.Steps}}
}

// Status returns the engine's current progress snapshot.
func (e *Engine) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st
}

func (e *Engine) update(fn func(*Status)) {
	e.mu.Lock()
	fn(&e.st)
	e.mu.Unlock()
}

// Run generates the seeded action trace and executes it.
func (e *Engine) Run() (*Result, error) {
	topo, err := e.cfg.Topo.Build()
	if err != nil {
		return nil, err
	}
	sws := topo.Switches()
	ids := make([]uint32, len(sws))
	for i, sw := range sws {
		ids[i] = uint32(sw)
	}
	actions := Generate(e.cfg.Seed, e.cfg.Steps, e.cfg.Weights, ids, e.cfg.LieStep)
	return e.Execute(actions)
}

// tapRecorder buffers the primary's committed event stream between steps.
type tapRecorder struct {
	mu  sync.Mutex
	buf []rvaas.TapEvent
}

func (r *tapRecorder) record(ev rvaas.TapEvent) {
	r.mu.Lock()
	r.buf = append(r.buf, ev)
	r.mu.Unlock()
}

func (r *tapRecorder) drain() []rvaas.TapEvent {
	r.mu.Lock()
	out := r.buf
	r.buf = nil
	r.mu.Unlock()
	return out
}

// Execute runs one explicit action trace against a freshly built lab +
// oracle pair and differentially checks every step. The returned error
// reports engine/lab failures; oracle disagreements come back as
// Result.Divergence.
func (e *Engine) Execute(actions []Action) (*Result, error) {
	cfg := e.cfg
	topo, err := cfg.Topo.Build()
	if err != nil {
		return nil, err
	}
	d, err := deploy.New(topo, deploy.Options{
		SkipAgents:    true,
		ManualRecheck: true,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: lab bring-up: %w", err)
	}
	defer d.Close()
	orc, err := newOracle(topo, cfg.Oracle, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	defer orc.Close()

	if cfg.OnLab != nil {
		cfg.OnLab(d)
	}
	x := newExecutor(d, topo)
	e.update(func(s *Status) {
		*s = Status{Running: true, Seed: cfg.Seed, Oracle: string(cfg.Oracle), Steps: len(actions)}
	})
	defer e.update(func(s *Status) { s.Running = false })

	// Quiesce bring-up, then install the tap and seed the oracle with the
	// primary's committed baseline before any subscriptions exist.
	if err := e.settle(x); err != nil {
		return nil, err
	}
	rec := &tapRecorder{}
	d.RVaaS.SetEventTap(rec.record)
	defer d.RVaaS.SetEventTap(nil)
	for _, ev := range d.RVaaS.ExportState() {
		orc.ctl.ReplayTap(ev)
	}

	// Identical registration order on both controllers ⇒ identical
	// subscription ids ⇒ verdict streams compare line-for-line.
	if err := x.registerBase(orc.ctl, cfg.Subscribers); err != nil {
		return nil, err
	}
	d.RVaaS.RecheckNow()
	orc.ctl.RecheckNow()
	if dv := e.compare(0, "setup", x, orc,
		d.RVaaS.ViolationLog().Appended(), orc.ctl.ViolationLog().Appended()); dv != nil {
		// Registration-time disagreement: report as a step-0 divergence.
		return e.finish(actions, 0, 0, 0, &fingerprints{}, dv, 0), nil
	}

	fp := &fingerprints{}
	events, transitions := 0, 0
	var staleMax time.Duration
	var dv *Divergence

	pCursor := d.RVaaS.ViolationLog().Appended()
	sCursor := orc.ctl.ViolationLog().Appended()

	for i, a := range actions {
		step := i + 1
		cfg.Logf("step %d/%d: %s", step, len(actions), a)
		e.update(func(s *Status) { s.Step = step; s.LastAction = a.String() })

		if a.Op == OpLie {
			d.RVaaS.SetCommitTap(lieTap)
		}
		if err := x.apply(a); err != nil {
			d.RVaaS.SetCommitTap(nil)
			return nil, fmt.Errorf("campaign: step %d (%s): %w", step, a, err)
		}
		if err := e.settle(x); err != nil {
			d.RVaaS.SetCommitTap(nil)
			return nil, fmt.Errorf("campaign: step %d (%s): %w", step, a, err)
		}
		d.RVaaS.RecheckNow()
		d.RVaaS.SetCommitTap(nil)
		if !x.lastDetach.IsZero() {
			if w := time.Since(x.lastDetach); w > staleMax {
				staleMax = w
			}
		}

		evs := canonicalizeEvents(rec.drain())
		for _, ev := range evs {
			orc.ctl.ReplayTap(ev)
		}
		orc.ctl.RecheckNow()

		events += len(evs)
		fp.events = hashEvents(fp.events, evs)
		pv := verdictLines(d.RVaaS.Subscriptions())
		fp.verdicts = hashLines(fp.verdicts, pv)
		pt := transitionLines(d.RVaaS.ViolationLog().Since(pCursor))
		transitions += len(pt)
		fp.transitions = hashLines(fp.transitions, pt)

		dv = e.compare(step, a.String(), x, orc, pCursor, sCursor)
		pCursor = d.RVaaS.ViolationLog().Appended()
		sCursor = orc.ctl.ViolationLog().Appended()
		if dv == nil && !x.lastDetach.IsZero() {
			if w := time.Since(x.lastDetach); w > beatMissContract {
				dv = &Divergence{Step: step, Action: a.String(), Kind: "stale-green",
					Detail: fmt.Sprintf("detach-to-degraded window %v exceeds the %v beat-miss contract", w, beatMissContract)}
			}
		}
		x.lastDetach = time.Time{}

		e.update(func(s *Status) {
			s.Events = events
			s.Transitions = transitions
			s.Fingerprint = fp.String()
			s.StaleGreenMax = staleMax.String()
			if dv != nil {
				s.Diverged = true
				s.Divergence = dv
			}
		})
		if dv != nil {
			cfg.Logf("DIVERGENCE at %s", dv)
			return e.finish(actions, step, events, transitions, fp, dv, staleMax), nil
		}
	}
	return e.finish(actions, len(actions), events, transitions, fp, nil, staleMax), nil
}

func (e *Engine) finish(actions []Action, steps, events, transitions int, fp *fingerprints, dv *Divergence, stale time.Duration) *Result {
	return &Result{
		Steps:         steps,
		Actions:       actions,
		Events:        events,
		Transitions:   transitions,
		Fingerprint:   fp.String(),
		Divergence:    dv,
		StaleGreenMax: stale,
	}
}

// compare differentially checks the primary against the oracle: the full
// per-subscription verdict state, then the transition streams appended
// since the given cursors.
func (e *Engine) compare(step int, action string, x *executor, orc *oracle, pCursor, sCursor uint64) *Divergence {
	pv := verdictLines(x.d.RVaaS.Subscriptions())
	sv := verdictLines(orc.ctl.Subscriptions())
	if diff := firstDiff(pv, sv); diff != "" {
		return &Divergence{Step: step, Action: action, Kind: "verdict", Detail: diff}
	}
	pt := transitionLines(x.d.RVaaS.ViolationLog().Since(pCursor))
	st := transitionLines(orc.ctl.ViolationLog().Since(sCursor))
	if diff := firstDiff(pt, st); diff != "" {
		return &Divergence{Step: step, Action: action, Kind: "transition", Detail: diff}
	}
	return nil
}

// settle blocks until the data plane and the primary's snapshot agree:
// every attached switch's table-change sequence is stable and fully
// ingested. Suppressed (lying) switches don't advance their sequence, so
// hidden mutations never block the barrier — exactly the stale view the
// campaign wants to exercise.
func (e *Engine) settle(x *executor) error {
	deadline := time.Now().Add(e.cfg.SettleTimeout)
	stable := 0
	var last []uint64
	for {
		seqs := make([]uint64, 0, len(x.switches))
		ok := true
		for _, sw := range x.switches {
			if x.detached[sw] {
				seqs = append(seqs, 0)
				continue
			}
			want := x.d.Fabric.Switch(sw).TableSeq()
			seqs = append(seqs, want)
			if x.d.RVaaS.SnapshotSeq(sw) < want {
				ok = false
			}
		}
		if ok && seqsEqual(seqs, last) {
			stable++
			if stable >= 3 {
				return nil
			}
		} else {
			stable = 0
		}
		last = seqs
		if time.Now().After(deadline) {
			return fmt.Errorf("campaign: settle barrier timed out after %v", e.cfg.SettleTimeout)
		}
		time.Sleep(300 * time.Microsecond)
	}
}

func seqsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lieTap is the Byzantine commit corruption OpLie arms on the primary: it
// inverts every transition's verdict before it reaches the violation log
// and the notification path, while the engine's internal state keeps the
// honest verdict — precisely a component lying on the client-visible
// stream.
func lieTap(t *verifier.Transition) {
	if !t.Changed {
		return
	}
	t.Violated = !t.Violated
	t.Detail = "liar: " + t.Detail
}
