package campaign

import (
	"fmt"

	"repro/internal/enclave"
	"repro/internal/rvaas"
	"repro/internal/topology"
)

// OracleMode selects which preserved slow-but-trusted recheck path the
// shadow controller runs. Both predate the incremental footprint/delta
// dispatcher and re-verify far more than necessary — which is exactly what
// makes them references: a verdict the fast path and the exhaustive path
// disagree on is a bug by definition.
type OracleMode string

// Oracle modes.
const (
	// OracleLegacyScan re-evaluates every standing invariant on every
	// committed change (RecheckTuning.LegacyScan).
	OracleLegacyScan OracleMode = "legacy"
	// OraclePerSwitch re-evaluates every invariant whose footprint touches
	// a dirty switch, ignoring rule deltas (RecheckTuning.PerSwitchDispatch).
	OraclePerSwitch OracleMode = "per-switch"
)

// ParseOracleMode validates a spec/CLI oracle-mode string ("" = legacy).
func ParseOracleMode(s string) (OracleMode, error) {
	switch OracleMode(s) {
	case "", OracleLegacyScan:
		return OracleLegacyScan, nil
	case OraclePerSwitch:
		return OraclePerSwitch, nil
	}
	return "", fmt.Errorf("campaign: unknown oracle mode %q (want %q or %q)", s, OracleLegacyScan, OraclePerSwitch)
}

// oracle is the trusted differential reference: a second rvaas.Controller
// on the same topology with no attached switches, fed exclusively through
// the replay API with the primary's committed event stream, rechecking
// manually once per campaign step on the trusted path. Subscriptions are
// registered in the identical order as on the primary, so the sequential
// fleet id allocator assigns identical ids and verdict streams compare
// line-for-line.
type oracle struct {
	ctl *rvaas.Controller
}

func newOracle(topo *topology.Topology, mode OracleMode, seed int64) (*oracle, error) {
	platform, err := enclave.NewPlatform()
	if err != nil {
		return nil, fmt.Errorf("campaign: oracle platform: %w", err)
	}
	ctl, err := rvaas.New(rvaas.Config{
		Topology:      topo,
		Platform:      platform,
		ManualRecheck: true,
		Seed:          seed,
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: oracle controller: %w", err)
	}
	ctl.SetRecheckTuning(rvaas.RecheckTuning{
		LegacyScan:        mode == OracleLegacyScan,
		PerSwitchDispatch: mode == OraclePerSwitch,
	})
	// Never Start()ed: the oracle needs no pollers, workers or notifier —
	// notifications to its (sessionless) subscribers drop non-blocking.
	return &oracle{ctl: ctl}, nil
}

func (o *oracle) Close() { o.ctl.Close() }
