package campaign

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/controlplane"
	"repro/internal/deploy"
	"repro/internal/openflow"
	"repro/internal/rvaas"
	"repro/internal/topology"
	"repro/internal/wire"
)

// CookieCampaign marks rules the campaign grammar installs (disjoint from
// CookieRouting, CookieAttack and CookieRVaaS so forensics stay readable).
const CookieCampaign uint64 = 0xCA3A_0000

// campaignPriorities: churn sits below routing, flap/lie drops outrank it.
const (
	churnPriority  uint16 = 5
	shadowHiPrio   uint16 = 700
	shadowLoPrio   uint16 = 300
	breakPriority  uint16 = 950
	campaignClient uint64 = 0xCA
)

// executor applies concrete actions to the lab. All bookkeeping (attached
// sessions, active attacks, churn sets, dynamic subscriptions) is a pure
// function of the executed trace prefix, which keeps shrunk sub-traces
// deterministic.
type executor struct {
	d        *deploy.Deployment
	topo     *topology.Topology
	switches []topology.SwitchID
	aps      []topology.AccessPoint

	shadow *rvaas.Controller // oracle controller for mirrored subscriber churn

	detached   map[topology.SwitchID]bool
	suppressed map[topology.SwitchID]bool
	attacks    map[string]controlplane.Attack
	churn      []Action // installed churn sets, oldest first
	dynSubs    []dynSub

	// lastDetach timestamps the most recent session loss of the current
	// step (zeroed by the engine after the stale-green check).
	lastDetach time.Time
}

type dynSub struct {
	clientID uint64
	id       uint64
}

func newExecutor(d *deploy.Deployment, topo *topology.Topology) *executor {
	return &executor{
		d:          d,
		topo:       topo,
		switches:   topo.Switches(),
		aps:        topo.AccessPoints(),
		detached:   make(map[topology.SwitchID]bool),
		suppressed: make(map[topology.SwitchID]bool),
		attacks:    make(map[string]controlplane.Attack),
	}
}

func ipConstraint(ip uint32) []wire.FieldConstraint {
	return []wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(ip), Mask: 0xFFFFFFFF}}
}

func ipMatch(ip uint32) openflow.Match {
	return openflow.Match{Fields: []openflow.FieldMatch{
		{Field: wire.FieldIPDst, Value: uint64(ip), Mask: 0xFFFFFFFF},
	}}
}

// registerBase registers the up-front standing invariants on the primary
// and the oracle in identical order, cycling the four supported kinds so
// the differ covers waypoint and path-length, not just reach/isolation.
func (x *executor) registerBase(shadow *rvaas.Controller, n int) error {
	x.shadow = shadow
	for i := 0; i < n; i++ {
		kind, constraints, param, at := x.deriveSub(uint64(i))
		if err := x.subscribeBoth(kind, constraints, param, at); err != nil {
			return err
		}
	}
	return nil
}

// deriveSub deterministically derives one subscription from a key.
func (x *executor) deriveSub(key uint64) (wire.QueryKind, []wire.FieldConstraint, string, topology.Endpoint) {
	n := uint64(len(x.aps))
	anchor := x.aps[key%n]
	dst := x.aps[(key+1+(key>>4))%n]
	if dst.HostIP == anchor.HostIP {
		dst = x.aps[(key%n+1)%n]
	}
	var (
		kind  wire.QueryKind
		param string
	)
	switch key % 4 {
	case 0:
		kind = wire.QueryReachableDestinations
	case 1:
		kind = wire.QueryIsolation
	case 2:
		kind = wire.QueryPathLength
		param = strconv.Itoa(3 + int(key>>3)%6)
	case 3:
		kind = wire.QueryWaypointAvoidance
		via := x.switches[(key>>3)%uint64(len(x.switches))]
		param = string(x.topo.RegionOf(via))
	}
	return kind, ipConstraint(dst.HostIP), param, anchor.Endpoint
}

// subscribeBoth registers the same invariant on primary and oracle and
// verifies the sequential id allocators stayed aligned.
func (x *executor) subscribeBoth(kind wire.QueryKind, constraints []wire.FieldConstraint, param string, at topology.Endpoint) error {
	pid, err := x.d.RVaaS.Subscribe(campaignClient, kind, constraints, param, at)
	if err != nil {
		return fmt.Errorf("campaign: primary subscribe %s: %w", kind, err)
	}
	sid, err := x.shadow.Subscribe(campaignClient, kind, constraints, param, at)
	if err != nil {
		return fmt.Errorf("campaign: oracle subscribe %s: %w", kind, err)
	}
	if pid != sid {
		return fmt.Errorf("campaign: subscription id skew: primary %d vs oracle %d", pid, sid)
	}
	x.dynSubs = append(x.dynSubs, dynSub{clientID: campaignClient, id: pid})
	return nil
}

// churnEntries derives a churn set: benign low-priority rules for unused
// 192.168/16 prefixes (the access-point plane lives in 10/8, so verdicts
// are untouched while tables, deltas and dispatch all churn).
func churnEntries(key uint64, count int) []openflow.FlowEntry {
	out := make([]openflow.FlowEntry, 0, count)
	for i := 0; i < count; i++ {
		ip := 0xC0A80000 | uint32((key+uint64(i)*7919)&0xFFFF)
		out = append(out, openflow.FlowEntry{
			Priority: churnPriority,
			Match:    ipMatch(ip),
			Actions:  []openflow.Action{openflow.Output(1)},
			Cookie:   CookieCampaign | uint64(i&0xFF),
		})
	}
	return out
}

// breakRule is a drop rule severing reachability to one access point at
// its own access switch — the canonical violation provoker.
func breakRule(ap topology.AccessPoint) (topology.SwitchID, openflow.FlowEntry) {
	return ap.Endpoint.Switch, openflow.FlowEntry{
		Priority: breakPriority,
		Match:    ipMatch(ap.HostIP),
		Cookie:   CookieCampaign | 0xF00,
	}
}

// buildAttack derives a concrete control-plane compromise from (name, key).
func (x *executor) buildAttack(name string, key uint64) controlplane.Attack {
	n := uint64(len(x.aps))
	victim := x.aps[key%n]
	other := x.aps[(key+1+(key>>4))%n]
	if other.HostIP == victim.HostIP {
		other = x.aps[(key%n+1)%n]
	}
	m := uint64(len(x.switches))
	via := x.switches[(key>>8)%m]
	if via == victim.Endpoint.Switch {
		via = x.switches[((key>>8)+1)%m]
	}
	switch name {
	case "traffic-diversion":
		return &controlplane.TrafficDiversion{VictimIP: victim.HostIP, Detour: via}
	case "exfiltration":
		return &controlplane.Exfiltration{VictimIP: victim.HostIP, Tap: other.Endpoint}
	case "geo-violation":
		return &controlplane.GeoViolation{SrcIP: other.HostIP, DstIP: victim.HostIP, Via: via}
	case "neutrality-violation":
		return &controlplane.NeutralityViolation{VictimIP: victim.HostIP, L4Dst: 443}
	case "meter-throttle":
		return &controlplane.MeterThrottle{VictimIP: victim.HostIP, L4Dst: 443, RateKbps: 512}
	}
	return nil
}

// pollIfHidden runs an active sweep after attacks that mutate state the
// passive channel never reports: meter mods bump the switch's table
// sequence without emitting a flow-monitor event, so only a poll can bring
// the snapshot (and the settle barrier) back in sync. Deterministic by
// construction — the sweep happens iff the action name demands it.
func (x *executor) pollIfHidden(name string) error {
	if name != "meter-throttle" {
		return nil
	}
	return x.d.RVaaS.PollAll(5 * time.Second)
}

// apply executes one action. Actions that reference state the trace prefix
// never created (revert of an inactive attack, reattach of an attached
// switch, unsub with no dynamic subscriptions) are deterministic no-ops,
// so any shrunk sub-trace stays executable.
func (x *executor) apply(a Action) error {
	sw := topology.SwitchID(a.Switch)
	switch a.Op {
	case OpChurn:
		for _, e := range churnEntries(a.Key, a.Count) {
			x.d.Provider.InstallEntry(sw, e)
		}
		x.churn = append(x.churn, a)
	case OpUnchurn:
		// Remove the oldest still-installed churn set (prefix-deterministic).
		if len(x.churn) == 0 {
			return nil
		}
		c := x.churn[0]
		x.churn = x.churn[1:]
		for _, e := range churnEntries(c.Key, c.Count) {
			x.d.Provider.RemoveEntry(topology.SwitchID(c.Switch), e)
		}
	case OpFlap:
		ap := x.aps[a.Key%uint64(len(x.aps))]
		e := openflow.FlowEntry{Priority: breakPriority, Match: ipMatch(ap.HostIP), Cookie: CookieCampaign | 0xA}
		x.d.Provider.InstallEntry(sw, e)
		x.d.Provider.RemoveEntry(sw, e)
	case OpShadow:
		ip := 0xC0A90000 | uint32(a.Key&0xFFFF)
		hi := openflow.FlowEntry{Priority: shadowHiPrio, Match: ipMatch(ip),
			Actions: []openflow.Action{openflow.Output(1)}, Cookie: CookieCampaign | 0xB}
		lo := openflow.FlowEntry{Priority: shadowLoPrio, Match: ipMatch(ip), Cookie: CookieCampaign | 0xC}
		x.d.Provider.InstallEntry(sw, hi)
		x.d.Provider.InstallEntry(sw, lo)
	case OpRestart:
		if !x.detached[sw] {
			x.d.RVaaS.Detach(sw)
			x.lastDetach = time.Now()
		}
		if err := x.d.ReattachSwitch(sw); err != nil {
			return err
		}
		x.detached[sw] = false
	case OpDetach:
		if x.detached[sw] {
			return nil
		}
		x.d.RVaaS.Detach(sw)
		x.detached[sw] = true
		x.lastDetach = time.Now()
	case OpReattach:
		if !x.detached[sw] {
			return nil
		}
		if err := x.d.ReattachSwitch(sw); err != nil {
			return err
		}
		x.detached[sw] = false
	case OpAttack:
		if _, active := x.attacks[a.Name]; active {
			return nil
		}
		atk := x.buildAttack(a.Name, a.Key)
		if atk == nil {
			return fmt.Errorf("unknown attack %q", a.Name)
		}
		// Launch failures (no detour path on tiny topologies) revert any
		// partial placement and no-op: the grammar is topology-agnostic.
		if err := atk.Launch(x.d.Provider); err != nil {
			_ = atk.Revert(x.d.Provider)
			return nil
		}
		x.attacks[a.Name] = atk
		return x.pollIfHidden(a.Name)
	case OpRevert:
		atk, active := x.attacks[a.Name]
		if !active {
			return nil
		}
		delete(x.attacks, a.Name)
		if err := atk.Revert(x.d.Provider); err != nil {
			return err
		}
		return x.pollIfHidden(a.Name)
	case OpSuppress:
		if x.detached[sw] && a.On {
			// A detached switch's hidden mutations would never surface
			// (nothing polls it); keep the lie on live sessions.
			return nil
		}
		x.d.Fabric.Switch(sw).SetEventSuppression(a.On)
		x.suppressed[sw] = a.On
	case OpPoll:
		// Sweep timeout is generous: a poll that misses the window would
		// desynchronize primary and oracle nondeterministically.
		return x.d.RVaaS.PollAll(5 * time.Second)
	case OpSub:
		kind, constraints, param, at := x.deriveSub(a.Key)
		return x.subscribeBoth(kind, constraints, param, at)
	case OpUnsub:
		if len(x.dynSubs) == 0 {
			return nil
		}
		i := int(a.Key % uint64(len(x.dynSubs)))
		s := x.dynSubs[i]
		x.dynSubs = append(x.dynSubs[:i], x.dynSubs[i+1:]...)
		x.d.RVaaS.Unsubscribe(s.clientID, s.id)
		x.shadow.Unsubscribe(s.clientID, s.id)
	case OpLie:
		// Provoke transitions (the lie needs something to lie about): break
		// reachability to one access point. The engine has already armed
		// the commit tap; the primary will log the transitions inverted.
		ap := x.aps[a.Key%uint64(len(x.aps))]
		bsw, e := breakRule(ap)
		x.d.Provider.InstallEntry(bsw, e)
	default:
		return fmt.Errorf("unknown action op %q", a.Op)
	}
	return nil
}
