package campaign

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/labspec"
)

func testConfig(seed int64) Config {
	return Config{
		Topo:          Topo{Kind: "linear", A: 5},
		Seed:          seed,
		Steps:         16,
		Subscribers:   8,
		SettleTimeout: 10 * time.Second,
	}
}

// TestGenerateDeterministic: the action trace is a pure function of the
// configuration.
func TestGenerateDeterministic(t *testing.T) {
	sws := []uint32{1, 2, 3, 4, 5}
	a := Generate(42, 50, nil, sws, 20)
	b := Generate(42, 50, nil, sws, 20)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different traces")
	}
	if a[19].Op != OpLie {
		t.Fatalf("lie step not placed: step 20 is %s", a[19].Op)
	}
	c := Generate(43, 50, nil, sws, 0)
	if reflect.DeepEqual(a[:10], c[:10]) {
		t.Fatalf("different seeds produced identical prefixes")
	}
	for _, act := range c {
		if act.Op == OpLie {
			t.Fatalf("lie drawn without LieStep")
		}
		if !KnownOp(act.Op) {
			t.Fatalf("generated unknown op %q", act.Op)
		}
	}
}

// TestCampaignCleanAndDeterministic is the heart of the differential
// harness: a seeded adversarial campaign (churn, flaps, restarts, attacks,
// suppression, subscriber churn) completes with zero divergence between the
// incremental primary and the trusted legacy-scan oracle, and two runs of
// the same seed produce byte-identical fingerprints over the event, verdict
// and transition streams.
func TestCampaignCleanAndDeterministic(t *testing.T) {
	cfg := testConfig(7)
	r1, err := New(cfg).Run()
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if r1.Divergence != nil {
		t.Fatalf("run 1 diverged: %s", r1.Divergence)
	}
	if r1.Events == 0 {
		t.Fatalf("campaign committed no events")
	}
	r2, err := New(cfg).Run()
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if r1.Fingerprint != r2.Fingerprint {
		t.Fatalf("same seed, different fingerprints:\n  run1 %s\n  run2 %s", r1.Fingerprint, r2.Fingerprint)
	}
	if !reflect.DeepEqual(r1.Actions, r2.Actions) {
		t.Fatalf("same seed, different action traces")
	}
}

// TestCampaignPerSwitchOracle runs the same differential check against the
// second preserved reference path (per-switch dispatch, no rule deltas).
func TestCampaignPerSwitchOracle(t *testing.T) {
	cfg := testConfig(11)
	cfg.Oracle = OraclePerSwitch
	cfg.Steps = 12
	r, err := New(cfg).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.Divergence != nil {
		t.Fatalf("diverged against per-switch oracle: %s", r.Divergence)
	}
}

// lieTrace is a hand-built campaign whose OpLie (Key 1 → the access point
// that subscription 1's reachability invariant watches on linear/5) breaks
// reachability while corrupting the primary's committed transitions.
func lieTrace() []Action {
	return []Action{
		{Op: OpChurn, Switch: 2, Count: 3, Key: 0x10},
		{Op: OpShadow, Switch: 3, Key: 0x20},
		{Op: OpLie, Key: 1},
	}
}

// TestLieCaughtByOracle injects a Byzantine verdict stream: the commit tap
// inverts the violation the lie provokes before it reaches the violation
// log, while the trusted oracle replays the same events honestly. The
// differ must flag the transition stream.
func TestLieCaughtByOracle(t *testing.T) {
	cfg := testConfig(3)
	res, err := New(cfg).Execute(lieTrace())
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.Divergence == nil {
		t.Fatalf("lying verdict stream not caught (fingerprint %s)", res.Fingerprint)
	}
	if res.Divergence.Kind != "transition" {
		t.Fatalf("expected a transition divergence, got: %s", res.Divergence)
	}
}

// TestShrinkLie reduces the lie campaign to a 1-minimal reproducer: the
// churn/shadow dressing must shrink away, leaving the single lie action.
func TestShrinkLie(t *testing.T) {
	cfg := testConfig(3)
	min, res, err := Shrink(cfg, lieTrace())
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if res.Divergence == nil || res.Divergence.Kind != "transition" {
		t.Fatalf("shrunk trace lost the divergence: %+v", res.Divergence)
	}
	if len(min) != 1 || min[0].Op != OpLie {
		t.Fatalf("expected the single lie action to survive, got %s", summarize(min))
	}
}

// TestOracleDifferentialWaypointAndPathLength pins the differ's coverage of
// the two invariant kinds beyond reach/isolation: a traffic-diversion
// attack reroutes a victim through a detour switch, moving verdicts on
// waypoint-avoidance and path-length subscriptions; the incremental primary
// and exhaustive oracle must track every transition identically.
func TestOracleDifferentialWaypointAndPathLength(t *testing.T) {
	cfg := testConfig(5)
	// Subscribers 8 on linear/5 cycles reach/isolation/path-length/waypoint
	// twice over the access points (keys 2,6 → path-length; 3,7 → waypoint).
	trace := []Action{
		{Op: OpAttack, Name: "traffic-diversion", Key: 3},
		{Op: OpPoll},
		{Op: OpAttack, Name: "meter-throttle", Key: 2},
		{Op: OpRevert, Name: "traffic-diversion"},
		{Op: OpFlap, Switch: 4, Key: 2},
		{Op: OpRevert, Name: "meter-throttle"},
		{Op: OpPoll},
	}
	res, err := New(cfg).Execute(trace)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.Divergence != nil {
		t.Fatalf("waypoint/path-length differential diverged: %s", res.Divergence)
	}
	if res.Transitions == 0 {
		t.Fatalf("attack trace moved no verdicts; differential coverage is vacuous")
	}
}

// TestArtifactRoundTrip pins the reproducer serialization format.
func TestArtifactRoundTrip(t *testing.T) {
	art := &Artifact{
		Name:        "roundtrip",
		Seed:        3,
		Topology:    Topo{Kind: "linear", A: 5},
		Subscribers: 8,
		Expect:      ExpectDivergence,
		ExpectKind:  "transition",
		Actions:     lieTrace(),
	}
	path := filepath.Join(t.TempDir(), "roundtrip.json")
	if err := art.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadArtifact(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(art, got) {
		a, _ := json.Marshal(art)
		b, _ := json.Marshal(got)
		t.Fatalf("artifact round-trip mismatch:\n  saved  %s\n  loaded %s", a, b)
	}
	if err := (&Artifact{Name: "bad", Expect: "maybe", Actions: lieTrace()}).Validate(); err == nil {
		t.Fatalf("bogus expectation passed validation")
	}
	if err := (&Artifact{Name: "bad", Expect: ExpectClean,
		Actions: []Action{{Op: "frobnicate"}}}).Validate(); err == nil {
		t.Fatalf("unknown op passed validation")
	}
}

// TestCorpusReplay replays every graduated artifact in testdata/campaigns/
// and asserts its recorded expectation still holds — the regression corpus
// the CI gate runs.
func TestCorpusReplay(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "campaigns", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no graduated campaign artifacts found")
	}
	for _, p := range paths {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			art, err := LoadArtifact(p)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if _, err := art.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSpecOpsInSync pins the contract between labspec's campaign weights
// validation (which cannot import this package) and the actual grammar.
func TestSpecOpsInSync(t *testing.T) {
	specOps := labspec.CampaignOps()
	listed := make(map[string]bool, len(specOps))
	for _, op := range specOps {
		if !KnownOp(op) {
			t.Errorf("labspec.CampaignOps lists %q, which the grammar does not know", op)
		}
		listed[op] = true
	}
	for op := range DefaultWeights() {
		if !listed[op] {
			t.Errorf("grammar op %q missing from labspec.CampaignOps", op)
		}
	}
	if !listed[OpLie] {
		t.Errorf("labspec.CampaignOps must list %q", OpLie)
	}
	if len(specOps) != len(DefaultWeights())+1 {
		t.Errorf("labspec.CampaignOps has %d ops, grammar has %d", len(specOps), len(DefaultWeights())+1)
	}
}

// TestFromSpec maps a lab spec's campaign section onto an engine config.
func TestFromSpec(t *testing.T) {
	doc := `name: c
topology:
  generator: grid
  rows: 2
  cols: 3
campaign:
  seed: 9
  steps: 12
  subscribers: 4
  oracle: per-switch
  lieStep: 6
  settleTimeout: 2s
`
	s, err := labspec.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := FromSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Topo:          Topo{Kind: "grid", A: 2, B: 3},
		Seed:          9,
		Steps:         12,
		Subscribers:   4,
		Oracle:        OraclePerSwitch,
		LieStep:       6,
		SettleTimeout: 2 * time.Second,
	}
	cfg.Weights, want.Weights = nil, nil
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("config = %+v, want %+v", cfg, want)
	}
	if _, err := FromSpec(&labspec.Spec{Name: "x",
		Topology: labspec.TopologySpec{Generator: "linear", Size: 3}}); err == nil {
		t.Fatal("spec without campaign section accepted")
	}
}
