// Package campaign is the adversarial campaign engine: seeded randomized
// attack/churn campaigns driven step-by-step against a full in-process
// RVaaS lab while a shadow controller running the slow-but-trusted
// reference recheck path (RecheckTuning.LegacyScan or PerSwitchDispatch)
// replays the identical committed event stream. Any divergence between the
// two verdict streams — per-subscription verdict/detail/seq state or the
// violation-log transition stream — fails the campaign, and the engine
// shrinks the failing action trace to a minimal reproducer serialized as a
// replayable JSON artifact (see artifact.go, testdata/campaigns/).
//
// The action grammar covers the scenario families the ROADMAP names: churn
// storms, short-lived rule flaps timed inside the poll interval,
// shadowed-rule smuggling, switch restarts mid-batch, lying switches
// (event suppression, Byzantine verdict-stream corruption via the commit
// tap), control-plane attacks, subscriber churn, and fault windows
// (session detach/reattach — the single-process analogue of the placed-lab
// faultinject trunk partitions).
package campaign

import (
	"fmt"
	"math/rand"
	"sort"
)

// Action ops. Every action is concrete and self-contained: executing a
// trace prefix fully determines lab state, so shrunk sub-traces replay
// deterministically.
const (
	// OpChurn installs Count benign low-priority rules derived from Key on
	// one switch; OpUnchurn removes exactly the same derived rules.
	OpChurn   = "churn"
	OpUnchurn = "unchurn"
	// OpFlap installs and immediately removes a drop rule inside one step —
	// a short-lived insertion timed inside the poll interval, visible only
	// through the passive event stream.
	OpFlap = "flap"
	// OpShadow smuggles a fully shadowed rule: a high-priority forwarder
	// followed by a lower-priority drop for the same (unused) prefix. The
	// incremental dispatcher must skip it; the trusted oracle re-verifies
	// everything and must agree.
	OpShadow = "shadow"
	// OpRestart detaches and immediately re-attaches one switch's control
	// session mid-batch (forced resync re-bases the wiped snapshot).
	OpRestart = "restart"
	// OpDetach / OpReattach open and close a fault window on one switch's
	// session — degraded verdicts must appear (never stale-green) while the
	// window is open.
	OpDetach   = "detach"
	OpReattach = "reattach"
	// OpAttack launches a named control-plane attack with deterministic
	// parameters derived from Key; OpRevert reverts it if active.
	OpAttack = "attack"
	OpRevert = "revert"
	// OpSuppress sets a switch's event suppression (a lying switch that
	// mutates state without reporting it); OpPoll runs a full active poll
	// sweep, the paper's defense that catches exactly that.
	OpSuppress = "suppress"
	OpPoll     = "poll"
	// OpSub / OpUnsub register/remove a standing invariant mid-run
	// (subscriber churn), mirrored identically on primary and shadow.
	OpSub   = "sub"
	OpUnsub = "unsub"
	// OpLie breaks reachability of one access point and simultaneously
	// corrupts every verdict transition the primary commits this step
	// (Byzantine verdict stream). The differential oracle must catch it.
	OpLie = "lie"
)

// Action is one concrete campaign step, serializable into replay artifacts.
type Action struct {
	Op     string `json:"op"`
	Switch uint32 `json:"switch,omitempty"`
	Count  int    `json:"count,omitempty"`
	// Key seeds deterministic derivation of rules, targets and attack
	// parameters, so the action means the same thing in any trace.
	Key  uint64 `json:"key,omitempty"`
	Name string `json:"name,omitempty"`
	On   bool   `json:"on,omitempty"`
}

func (a Action) String() string {
	s := a.Op
	if a.Switch != 0 {
		s += fmt.Sprintf(" sw=%d", a.Switch)
	}
	if a.Name != "" {
		s += " " + a.Name
	}
	if a.Count != 0 {
		s += fmt.Sprintf(" n=%d", a.Count)
	}
	if a.Key != 0 {
		s += fmt.Sprintf(" key=%#x", a.Key)
	}
	if a.Op == OpSuppress {
		s += fmt.Sprintf(" on=%t", a.On)
	}
	return s
}

// attackNames are the control-plane compromises the grammar can launch.
var attackNames = []string{
	"traffic-diversion",
	"exfiltration",
	"geo-violation",
	"neutrality-violation",
	"meter-throttle",
}

// DefaultWeights is the default action-grammar distribution. Keys are the
// Op* constants; OpLie is never drawn (it is placed explicitly by
// Config.LieStep) and OpReattach/OpRevert/OpUnchurn/OpPoll weights keep
// opened windows from accumulating without bound.
func DefaultWeights() map[string]int {
	return map[string]int{
		OpChurn:    8,
		OpUnchurn:  5,
		OpFlap:     5,
		OpShadow:   4,
		OpRestart:  2,
		OpDetach:   2,
		OpReattach: 3,
		OpAttack:   3,
		OpRevert:   3,
		OpSuppress: 3,
		OpPoll:     5,
		OpSub:      2,
		OpUnsub:    1,
	}
}

// KnownOp reports whether op names a grammar action.
func KnownOp(op string) bool {
	switch op {
	case OpChurn, OpUnchurn, OpFlap, OpShadow, OpRestart, OpDetach,
		OpReattach, OpAttack, OpRevert, OpSuppress, OpPoll, OpSub,
		OpUnsub, OpLie:
		return true
	}
	return false
}

// Generate derives the concrete action trace of a seeded campaign: a pure
// function of (seed, steps, weights, switch count), so the same
// configuration always produces the same program.
func Generate(seed int64, steps int, weights map[string]int, switches []uint32, lieStep int) []Action {
	if len(weights) == 0 {
		weights = DefaultWeights()
	}
	// Deterministic draw order regardless of map iteration.
	ops := make([]string, 0, len(weights))
	total := 0
	for op, w := range weights {
		if w > 0 && op != OpLie {
			ops = append(ops, op)
		}
	}
	sort.Strings(ops)
	for _, op := range ops {
		total += weights[op]
	}
	rng := rand.New(rand.NewSource(seed))
	pick := func() string {
		n := rng.Intn(total)
		for _, op := range ops {
			n -= weights[op]
			if n < 0 {
				return op
			}
		}
		return ops[len(ops)-1]
	}
	out := make([]Action, 0, steps)
	for i := 0; i < steps; i++ {
		if lieStep > 0 && i+1 == lieStep {
			out = append(out, Action{Op: OpLie, Key: rng.Uint64()})
			continue
		}
		op := pick()
		a := Action{Op: op, Key: rng.Uint64()}
		switch op {
		case OpChurn, OpUnchurn:
			a.Switch = switches[rng.Intn(len(switches))]
			a.Count = 1 + rng.Intn(4)
		case OpFlap, OpShadow, OpRestart, OpDetach, OpReattach:
			a.Switch = switches[rng.Intn(len(switches))]
		case OpSuppress:
			a.Switch = switches[rng.Intn(len(switches))]
			a.On = rng.Intn(2) == 0
		case OpAttack, OpRevert:
			a.Name = attackNames[rng.Intn(len(attackNames))]
		}
		out = append(out, a)
	}
	return out
}
