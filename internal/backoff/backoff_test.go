package backoff

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestJitterBounds: every delay stays inside [base*(1-j), base*(1+j)] with
// the exponential base capped at Max, across many draws.
func TestJitterBounds(t *testing.T) {
	pol := Policy{Initial: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Jitter: 0.5}
	b := NewSeeded(pol, 42)
	base := float64(pol.Initial)
	for i := 0; i < 50; i++ {
		d := b.Next()
		lo, hi := time.Duration(base*0.5), time.Duration(base*1.5)
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %s outside [%s, %s]", i, d, lo, hi)
		}
		base *= pol.Factor
		if base > float64(pol.Max) {
			base = float64(pol.Max)
		}
	}
}

// TestNoJitterIsExactExponential: Jitter can be disabled, yielding the
// bare capped exponential.
func TestNoJitterIsExactExponential(t *testing.T) {
	b := NewSeeded(Policy{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1}, 1)
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if d := b.Next(); d != w*time.Millisecond {
			t.Fatalf("attempt %d: delay = %s, want %s", i, d, w*time.Millisecond)
		}
	}
}

// TestDeterministicSequence: the same seed replays the same delays.
func TestDeterministicSequence(t *testing.T) {
	pol := Policy{Initial: 50 * time.Millisecond, Max: time.Second}
	a, b := NewSeeded(pol, 7), NewSeeded(pol, 7)
	for i := 0; i < 20; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("attempt %d: %s != %s with equal seeds", i, da, db)
		}
	}
}

// TestResetRestartsSchedule: Reset returns the schedule to the initial
// delay band.
func TestResetRestartsSchedule(t *testing.T) {
	pol := Policy{Initial: 10 * time.Millisecond, Max: 10 * time.Second}
	b := NewSeeded(pol, 3)
	for i := 0; i < 8; i++ {
		b.Next()
	}
	b.Reset()
	if d := b.Next(); d > 15*time.Millisecond {
		t.Fatalf("post-reset delay = %s, want within the initial band", d)
	}
	if got := b.Attempt(); got != 1 {
		t.Fatalf("post-reset attempt = %d, want 1", got)
	}
}

// TestWaitCancelled: a cancelled ctx unblocks Wait promptly with ctx.Err.
func TestWaitCancelled(t *testing.T) {
	b := NewSeeded(Policy{Initial: 10 * time.Second, Max: 10 * time.Second}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Wait(ctx) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not unblock on cancellation")
	}
}

// TestRetryBounded: Retry stops after MaxAttempts retries and reports the
// last error.
func TestRetryBounded(t *testing.T) {
	calls := 0
	errNope := errors.New("nope")
	err := Retry(context.Background(), Policy{Initial: time.Millisecond, Max: time.Millisecond, MaxAttempts: 3}, func() error {
		calls++
		return errNope
	})
	if !errors.Is(err, errNope) {
		t.Fatalf("Retry = %v, want %v", err, errNope)
	}
	if calls != 4 { // initial call + MaxAttempts retries
		t.Fatalf("calls = %d, want 4", calls)
	}
}

// TestRetrySucceeds: Retry returns nil as soon as fn does.
func TestRetrySucceeds(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Policy{Initial: time.Millisecond, Max: time.Millisecond}, func() error {
		calls++
		if calls < 3 {
			return errors.New("again")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Retry = %v after %d calls, want nil after 3", err, calls)
	}
}

// TestRetryCancelled: cancellation between attempts surfaces ctx.Err.
func TestRetryCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, Policy{Initial: time.Hour, Max: time.Hour}, func() error {
			calls++
			return errors.New("always")
		})
	}()
	// Let the first attempt land, then cancel during the backoff wait.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Retry = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Retry did not unblock on cancellation")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}
