// Package backoff is the repo's one retry-pacing helper: jittered
// exponential delays with a cap, deterministic when seeded, and
// context-aware waits. Every reconnect/retry loop (trunk rejoin, agentd
// subscribe bring-up, client gap recovery) paces itself through a Policy
// so retry behavior is tuned in one place.
package backoff

import (
	"context"
	"math/rand"
	"time"
)

// Policy describes a jittered exponential backoff schedule.
type Policy struct {
	// Initial is the base delay before the first retry (default 100ms).
	Initial time.Duration
	// Max caps the exponential growth (default 2s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter spreads each delay uniformly over
	// [d*(1-Jitter), d*(1+Jitter)]; 0 disables jitter, values are
	// clamped to [0, 1] (default 0.5).
	Jitter float64
	// MaxAttempts bounds Retry and callers' own loops; <= 0 means
	// unbounded.
	MaxAttempts int
}

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	if p.Initial <= 0 {
		p.Initial = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	if p.Max < p.Initial {
		p.Max = p.Initial
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Backoff produces the delay sequence for one retry loop. Not safe for
// concurrent use; each loop owns its Backoff.
type Backoff struct {
	pol     Policy
	rng     *rand.Rand
	attempt int
}

// New builds a Backoff seeded from the clock (independent loops desync).
func New(p Policy) *Backoff {
	return NewSeeded(p, time.Now().UnixNano())
}

// NewSeeded builds a Backoff with a fixed jitter seed, for deterministic
// tests.
func NewSeeded(p Policy, seed int64) *Backoff {
	if p.Jitter == 0 {
		// Callers that set Jitter explicitly keep it; the zero value
		// means "default" to match Policy's other fields.
		p.Jitter = 0.5
	}
	return &Backoff{pol: p.withDefaults(), rng: rand.New(rand.NewSource(seed))}
}

// Attempt reports how many delays have been produced since the last Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// Exhausted reports whether MaxAttempts delays have been produced.
func (b *Backoff) Exhausted() bool {
	return b.pol.MaxAttempts > 0 && b.attempt >= b.pol.MaxAttempts
}

// Next returns the next delay in the schedule.
func (b *Backoff) Next() time.Duration {
	base := float64(b.pol.Initial)
	for i := 0; i < b.attempt; i++ {
		base *= b.pol.Factor
		if base >= float64(b.pol.Max) {
			base = float64(b.pol.Max)
			break
		}
	}
	if base > float64(b.pol.Max) {
		base = float64(b.pol.Max)
	}
	b.attempt++
	if j := b.pol.Jitter; j > 0 {
		base *= 1 - j + 2*j*b.rng.Float64()
	}
	d := time.Duration(base)
	if d < 0 {
		d = 0
	}
	return d
}

// Reset restarts the schedule (e.g. after a successful attempt).
func (b *Backoff) Reset() { b.attempt = 0 }

// Wait sleeps for the next delay or until ctx is done, reporting ctx.Err
// in the latter case.
func (b *Backoff) Wait(ctx context.Context) error {
	d := b.Next()
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Retry runs fn until it succeeds, the policy's MaxAttempts is exhausted,
// or ctx is cancelled. It returns nil on success, ctx.Err() on
// cancellation, and the last fn error when attempts run out.
func Retry(ctx context.Context, p Policy, fn func() error) error {
	b := New(p)
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if b.Exhausted() {
			return err
		}
		if werr := b.Wait(ctx); werr != nil {
			return werr
		}
	}
}
