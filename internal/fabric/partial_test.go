package fabric

import (
	"testing"

	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

// bridge wires two partial fabrics together the way the deploy trunk does:
// each fabric's remote hand-off is injected into the other side.
func bridge(t *testing.T, topo *topology.Topology, ownA, ownB []topology.SwitchID) (*Fabric, *Fabric) {
	t.Helper()
	var fa, fb *Fabric
	toB := func(to topology.Endpoint, host bool, pkt *wire.Packet) {
		if host {
			fb.DeliverToHost(to, pkt)
			return
		}
		if err := fb.InjectAtPort(to, pkt); err != nil {
			t.Errorf("inject at %s: %v", to, err)
		}
	}
	toA := func(to topology.Endpoint, host bool, pkt *wire.Packet) {
		if host {
			fa.DeliverToHost(to, pkt)
			return
		}
		if err := fa.InjectAtPort(to, pkt); err != nil {
			t.Errorf("inject at %s: %v", to, err)
		}
	}
	var err error
	fa, err = NewPartial(topo, ownA, toB)
	if err != nil {
		t.Fatal(err)
	}
	fb, err = NewPartial(topo, ownB, toA)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fa.Close)
	t.Cleanup(fb.Close)
	return fa, fb
}

// routingRule is the exact-IPDst forwarding entry used across these tests.
func routingRule(dstIP uint32, outPort uint32) openflow.FlowEntry {
	return openflow.FlowEntry{
		Priority: 100,
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: uint64(dstIP), Mask: 0xFFFFFFFF},
		}},
		Actions: []openflow.Action{openflow.Output(outPort)},
	}
}

// TestPartialFabricCrossProcessDelivery splits a linear-4 lab into two
// "processes" (switches 1-2 and 3-4) and checks a frame crosses the seam
// with identical TTL semantics to the single-process fabric.
func TestPartialFabricCrossProcessDelivery(t *testing.T) {
	topo, err := topology.Linear(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := bridge(t, topo, []topology.SwitchID{1, 2}, []topology.SwitchID{3, 4})
	aps := topo.AccessPoints()
	src, dst := aps[0], aps[3]

	// Program each hop on the fabric that owns it.
	path := topo.ShortestPath(src.Endpoint.Switch, dst.Endpoint.Switch)
	for i, sw := range path {
		var out topology.PortNo
		if i == len(path)-1 {
			out = dst.Endpoint.Port
		} else {
			out = topo.PortTowards(sw, path[i+1])
		}
		owner := fa
		if !fa.Owns(sw) {
			owner = fb
		}
		owner.Switch(sw).InstallDirect(routingRule(dst.HostIP, uint32(out)))
	}

	var mb mailbox
	if err := fb.AttachHost(dst.Endpoint, mb.handler); err != nil {
		t.Fatal(err)
	}
	if err := fa.InjectFromHost(src.Endpoint, udp(src, dst)); err != nil {
		t.Fatal(err)
	}
	if mb.count() != 1 {
		t.Fatalf("delivered = %d, want 1", mb.count())
	}
	// Exactly one TTL decrement per internal link (3 links), no double
	// decrement at the process seam.
	if got := mb.last().TTL; got != 61 {
		t.Errorf("TTL = %d, want 61", got)
	}
	// The seam traversal is counted once, by the sending fabric.
	if got := fa.LinkDeliveries() + fb.LinkDeliveries(); got != 3 {
		t.Errorf("link deliveries = %d, want 3", got)
	}
}

// TestPartialFabricRemoteHostDelivery: a frame reaching an edge port with
// no local handler crosses to the process that hosts the agent.
func TestPartialFabricRemoteHostDelivery(t *testing.T) {
	topo, err := topology.Linear(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got mailbox
	// Fabric A owns both switches; the "agent process" B owns none and only
	// receives host deliveries.
	remote := func(to topology.Endpoint, host bool, pkt *wire.Packet) {
		if !host {
			t.Errorf("unexpected switch hand-off to %s", to)
			return
		}
		got.handler(pkt)
	}
	fa, err := NewPartial(topo, []topology.SwitchID{1, 2}, remote)
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	aps := topo.AccessPoints()
	src, dst := aps[0], aps[1]
	installPath(t, fa, src, dst)
	// No AttachHost for dst: delivery must go remote.
	if err := fa.InjectFromHost(src.Endpoint, udp(src, dst)); err != nil {
		t.Fatal(err)
	}
	if got.count() != 1 {
		t.Fatalf("remote host deliveries = %d, want 1", got.count())
	}
}

// TestPartialFabricValidation: unknown switches and a nil remote are
// rejected; InjectAtPort refuses unowned switches.
func TestPartialFabricValidation(t *testing.T) {
	topo, err := topology.Linear(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPartial(topo, []topology.SwitchID{1}, nil); err == nil {
		t.Error("nil remote accepted")
	}
	noop := func(topology.Endpoint, bool, *wire.Packet) {}
	if _, err := NewPartial(topo, []topology.SwitchID{99}, noop); err == nil {
		t.Error("unknown switch accepted")
	}
	f, err := NewPartial(topo, []topology.SwitchID{1}, noop)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Owns(1) || f.Owns(2) {
		t.Error("ownership wrong")
	}
	if err := f.InjectAtPort(topology.Endpoint{Switch: 2, Port: 1}, udp(topo.AccessPoints()[0], topo.AccessPoints()[1])); err == nil {
		t.Error("InjectAtPort accepted an unowned switch")
	}
}
