package fabric

import (
	"sync"
	"testing"

	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

// mailbox collects host-delivered frames.
type mailbox struct {
	mu  sync.Mutex
	got []*wire.Packet
}

func (m *mailbox) handler(pkt *wire.Packet) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.got = append(m.got, pkt)
}

func (m *mailbox) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.got)
}

func (m *mailbox) last() *wire.Packet {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.got) == 0 {
		return nil
	}
	return m.got[len(m.got)-1]
}

// installPath programs exact IPDst forwarding along the shortest path from
// the src access point to the dst access point.
func installPath(t *testing.T, f *Fabric, src, dst topology.AccessPoint) {
	t.Helper()
	topo := f.Topology()
	path := topo.ShortestPath(src.Endpoint.Switch, dst.Endpoint.Switch)
	if path == nil {
		t.Fatal("no path")
	}
	for i, sw := range path {
		var out topology.PortNo
		if i == len(path)-1 {
			out = dst.Endpoint.Port
		} else {
			out = topo.PortTowards(sw, path[i+1])
		}
		f.Switch(sw).InstallDirect(openflow.FlowEntry{
			Priority: 100,
			Match: openflow.Match{Fields: []openflow.FieldMatch{
				{Field: wire.FieldIPDst, Value: uint64(dst.HostIP), Mask: 0xFFFFFFFF},
			}},
			Actions: []openflow.Action{openflow.Output(uint32(out))},
			Cookie:  uint64(sw),
		})
	}
}

func linearFabric(t *testing.T, n int) (*Fabric, []topology.AccessPoint) {
	t.Helper()
	topo, err := topology.Linear(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, topo.AccessPoints()
}

func udp(src, dst topology.AccessPoint) *wire.Packet {
	return &wire.Packet{
		EthDst: dst.HostMAC, EthSrc: src.HostMAC, EthType: wire.EthTypeIPv4,
		IPSrc: src.HostIP, IPDst: dst.HostIP,
		IPProto: wire.IPProtoUDP, TTL: 64, L4Src: 40000, L4Dst: 9,
	}
}

func TestEndToEndDelivery(t *testing.T) {
	f, aps := linearFabric(t, 4)
	src, dst := aps[0], aps[3]
	installPath(t, f, src, dst)

	var mb mailbox
	if err := f.AttachHost(dst.Endpoint, mb.handler); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectFromHost(src.Endpoint, udp(src, dst)); err != nil {
		t.Fatal(err)
	}
	if mb.count() != 1 {
		t.Fatalf("delivered = %d, want 1", mb.count())
	}
	// TTL decremented once per internal link (3 links).
	if got := mb.last().TTL; got != 61 {
		t.Errorf("TTL = %d, want 61", got)
	}
	if f.LinkDeliveries() != 3 {
		t.Errorf("link deliveries = %d, want 3", f.LinkDeliveries())
	}
}

func TestNoRuleNoDelivery(t *testing.T) {
	f, aps := linearFabric(t, 3)
	var mb mailbox
	if err := f.AttachHost(aps[2].Endpoint, mb.handler); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectFromHost(aps[0].Endpoint, udp(aps[0], aps[2])); err != nil {
		t.Fatal(err)
	}
	if mb.count() != 0 {
		t.Error("packet delivered without installed rules")
	}
}

func TestTTLBoundsForwardingLoop(t *testing.T) {
	topo, err := topology.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Program every switch to forward everything clockwise: loop.
	for _, sw := range topo.Switches() {
		f.Switch(sw).InstallDirect(openflow.FlowEntry{
			Priority: 1,
			Match:    openflow.MatchAll(),
			Actions:  []openflow.Action{openflow.Output(2)},
		})
	}
	src := topo.AccessPoints()[0]
	pkt := udp(src, src)
	pkt.TTL = 16
	if err := f.InjectFromHost(src.Endpoint, pkt); err != nil {
		t.Fatal(err)
	}
	// The packet must die after TTL hops, not hang the test.
	if got := f.LinkDeliveries(); got > 16 {
		t.Errorf("loop traversals = %d, want <= 16", got)
	}
}

func TestTraceCapture(t *testing.T) {
	f, aps := linearFabric(t, 3)
	installPath(t, f, aps[0], aps[2])
	f.SetTracing(true)
	var mb mailbox
	if err := f.AttachHost(aps[2].Endpoint, mb.handler); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectFromHost(aps[0].Endpoint, udp(aps[0], aps[2])); err != nil {
		t.Fatal(err)
	}
	tr := f.Trace()
	// inject + 2 links + host delivery = 4 events.
	if len(tr) != 4 {
		t.Fatalf("trace events = %d: %+v", len(tr), tr)
	}
	if !tr[len(tr)-1].Host {
		t.Error("last event should be host delivery")
	}
	// Buffer cleared after read.
	if len(f.Trace()) != 0 {
		t.Error("trace not cleared")
	}
}

func TestAttachHostValidation(t *testing.T) {
	f, _ := linearFabric(t, 3)
	// Internal port rejected.
	if err := f.AttachHost(topology.Endpoint{Switch: 1, Port: 2}, nil); err == nil {
		t.Error("internal port accepted")
	}
	// Unknown switch rejected.
	if err := f.AttachHost(topology.Endpoint{Switch: 99, Port: 1}, nil); err == nil {
		t.Error("unknown switch accepted")
	}
}

func TestInjectUnknownSwitch(t *testing.T) {
	f, _ := linearFabric(t, 2)
	err := f.InjectFromHost(topology.Endpoint{Switch: 42, Port: 1}, &wire.Packet{})
	if err == nil {
		t.Error("unknown switch accepted")
	}
}

func TestMulticastToTwoHosts(t *testing.T) {
	topo, err := topology.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	aps := topo.AccessPoints()
	// Hub floods; leaves forward to their host port.
	f.Switch(1).InstallDirect(openflow.FlowEntry{
		Priority: 1, Match: openflow.MatchAll(),
		Actions: []openflow.Action{openflow.Output(openflow.FloodPort)},
	})
	for _, ap := range aps {
		f.Switch(ap.Endpoint.Switch).InstallDirect(openflow.FlowEntry{
			Priority: 1, Match: openflow.Match{InPort: 1},
			Actions: []openflow.Action{openflow.Output(uint32(ap.Endpoint.Port))},
		})
		// And from host toward hub.
		f.Switch(ap.Endpoint.Switch).InstallDirect(openflow.FlowEntry{
			Priority: 1, Match: openflow.Match{InPort: uint32(ap.Endpoint.Port)},
			Actions: []openflow.Action{openflow.Output(1)},
		})
	}
	var mb1, mb2 mailbox
	if err := f.AttachHost(aps[1].Endpoint, mb1.handler); err != nil {
		t.Fatal(err)
	}
	if err := f.AttachHost(aps[2].Endpoint, mb2.handler); err != nil {
		t.Fatal(err)
	}
	if err := f.InjectFromHost(aps[0].Endpoint, udp(aps[0], aps[1])); err != nil {
		t.Fatal(err)
	}
	if mb1.count() != 1 || mb2.count() != 1 {
		t.Errorf("multicast: mb1=%d mb2=%d", mb1.count(), mb2.count())
	}
}

func TestHostDeliveriesCounter(t *testing.T) {
	f, aps := linearFabric(t, 2)
	installPath(t, f, aps[0], aps[1])
	var mb mailbox
	if err := f.AttachHost(aps[1].Endpoint, mb.handler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := f.InjectFromHost(aps[0].Endpoint, udp(aps[0], aps[1])); err != nil {
			t.Fatal(err)
		}
	}
	if f.HostDeliveries() != 3 {
		t.Errorf("host deliveries = %d", f.HostDeliveries())
	}
}

func TestDetachHost(t *testing.T) {
	f, aps := linearFabric(t, 2)
	installPath(t, f, aps[0], aps[1])
	var mb mailbox
	if err := f.AttachHost(aps[1].Endpoint, mb.handler); err != nil {
		t.Fatal(err)
	}
	f.DetachHost(aps[1].Endpoint)
	if err := f.InjectFromHost(aps[0].Endpoint, udp(aps[0], aps[1])); err != nil {
		t.Fatal(err)
	}
	if mb.count() != 0 {
		t.Error("detached host still received frames")
	}
}
