// Package fabric binds topology, switches and hosts into a runnable network
// emulator. Frames are forwarded exclusively by consulting switch flow
// tables, so whatever the (possibly compromised) control plane installed is
// exactly what the data plane does — the property RVaaS's in-band tests
// depend on.
package fabric

import (
	"fmt"
	"sync"

	"repro/internal/switchsim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// HostHandler consumes frames delivered to a host NIC.
type HostHandler func(pkt *wire.Packet)

// TraceEvent records one link traversal or host delivery (ground truth for
// tests and experiments; invisible to RVaaS itself).
type TraceEvent struct {
	From topology.Endpoint
	To   topology.Endpoint // zero Switch for host deliveries
	Host bool
	Pkt  string // compact packet summary
}

// RemoteDeliver ships a frame to a lab component hosted outside this
// process: the ingress port of a switch this partial fabric does not own
// (host=false), or the host NIC at an edge endpoint with no local handler
// (host=true). A placed deployment wires this to the process trunk.
type RemoteDeliver func(to topology.Endpoint, host bool, pkt *wire.Packet)

// Fabric is the running network — all of it (New), or one process's share
// of a multi-process lab (NewPartial).
type Fabric struct {
	topo     *topology.Topology
	switches map[topology.SwitchID]*switchsim.Switch
	remote   RemoteDeliver

	mu      sync.Mutex
	hosts   map[topology.Endpoint]HostHandler
	tracing bool
	trace   []TraceEvent
	// delivered counts total link traversals (for overhead experiments).
	delivered uint64
	hostRx    uint64
}

// New builds a fabric (and its switches) from a wiring plan.
func New(topo *topology.Topology) (*Fabric, error) {
	return build(topo, topo.Switches(), nil)
}

// NewPartial builds a fabric hosting only the given subset of the wiring
// plan's switches. Frames leaving an owned switch toward an unowned peer —
// and frames for edge ports with no local host handler — are handed to
// remote instead of being forwarded in-process. The full topology is still
// required: link resolution and TTL semantics are identical to the
// single-process fabric, so the verification plane sees the same network
// regardless of how it is carved into processes.
func NewPartial(topo *topology.Topology, own []topology.SwitchID, remote RemoteDeliver) (*Fabric, error) {
	if remote == nil {
		return nil, fmt.Errorf("fabric: partial fabric needs a remote deliverer")
	}
	for _, id := range own {
		if topo.PortCount(id) == 0 {
			return nil, fmt.Errorf("fabric: switch %d is not in the topology", id)
		}
	}
	return build(topo, own, remote)
}

func build(topo *topology.Topology, own []topology.SwitchID, remote RemoteDeliver) (*Fabric, error) {
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("fabric: %w", err)
	}
	f := &Fabric{
		topo:     topo,
		switches: make(map[topology.SwitchID]*switchsim.Switch),
		remote:   remote,
		hosts:    make(map[topology.Endpoint]HostHandler),
	}
	for _, id := range own {
		sid := id
		f.switches[sid] = switchsim.New(sid, topo.PortCount(sid), func(port topology.PortNo, pkt *wire.Packet) {
			f.deliver(topology.Endpoint{Switch: sid, Port: port}, pkt)
		})
	}
	return f, nil
}

// Topology returns the wiring plan.
func (f *Fabric) Topology() *topology.Topology { return f.topo }

// Switch returns the datapath with the given id (nil if absent).
func (f *Fabric) Switch(id topology.SwitchID) *switchsim.Switch { return f.switches[id] }

// Switches returns all datapaths keyed by id.
func (f *Fabric) Switches() map[topology.SwitchID]*switchsim.Switch {
	out := make(map[topology.SwitchID]*switchsim.Switch, len(f.switches))
	for k, v := range f.switches {
		out[k] = v
	}
	return out
}

// AttachHost registers a host NIC handler at an access-point endpoint.
func (f *Fabric) AttachHost(ep topology.Endpoint, h HostHandler) error {
	if f.topo.IsInternal(ep) {
		return fmt.Errorf("fabric: %s is an internal port", ep)
	}
	if _, ok := f.switches[ep.Switch]; !ok {
		return fmt.Errorf("fabric: unknown switch %d", ep.Switch)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hosts[ep] = h
	return nil
}

// DetachHost removes a host handler.
func (f *Fabric) DetachHost(ep topology.Endpoint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.hosts, ep)
}

// InjectFromHost feeds a frame from a host NIC into its access switch.
func (f *Fabric) InjectFromHost(ep topology.Endpoint, pkt *wire.Packet) error {
	sw, ok := f.switches[ep.Switch]
	if !ok {
		return fmt.Errorf("fabric: unknown switch %d", ep.Switch)
	}
	f.recordTrace(TraceEvent{From: topology.Endpoint{}, To: ep, Pkt: pkt.String()})
	sw.ProcessPacket(ep.Port, pkt, 0)
	return nil
}

// deliver carries a frame out of (switch, port) to the far end: the peer
// switch's pipeline for internal ports (or the remote deliverer when the
// peer lives in another process), the host handler for edge ports.
func (f *Fabric) deliver(from topology.Endpoint, pkt *wire.Packet) {
	if peer, ok := f.topo.Peer(from); ok {
		// Internal link: decrement TTL for IPv4 to bound forwarding loops
		// exactly like a real router fabric does. The decrement happens at
		// the sending fabric — a remote hop must not decrement again.
		if pkt.EthType == wire.EthTypeIPv4 {
			if pkt.TTL <= 1 {
				return
			}
			pkt.TTL--
		}
		f.mu.Lock()
		f.delivered++
		f.mu.Unlock()
		f.recordTrace(TraceEvent{From: from, To: peer, Pkt: pkt.String()})
		if dp, owned := f.switches[peer.Switch]; owned {
			dp.ProcessPacket(peer.Port, pkt, 0)
		} else if f.remote != nil {
			f.remote(peer, false, pkt)
		}
		return
	}
	// Edge port: host delivery — locally when a handler is attached, over
	// the trunk when the host's agent lives in another process.
	f.mu.Lock()
	h := f.hosts[from]
	if h == nil && f.remote != nil {
		f.mu.Unlock()
		f.remote(from, true, pkt)
		return
	}
	f.hostRx++
	f.mu.Unlock()
	f.recordTrace(TraceEvent{From: from, Host: true, Pkt: pkt.String()})
	if h != nil {
		h(pkt)
	}
}

// InjectAtPort feeds a frame arriving from another process's fabric into an
// owned switch's pipeline at the given ingress port. TTL was already
// handled by the sending fabric's link traversal.
func (f *Fabric) InjectAtPort(ep topology.Endpoint, pkt *wire.Packet) error {
	sw, ok := f.switches[ep.Switch]
	if !ok {
		return fmt.Errorf("fabric: switch %d is not hosted here", ep.Switch)
	}
	f.recordTrace(TraceEvent{To: ep, Pkt: pkt.String()})
	sw.ProcessPacket(ep.Port, pkt, 0)
	return nil
}

// DeliverToHost hands a trunk-delivered frame to the local host handler at
// ep (the partial-fabric counterpart of the edge-port path in deliver).
func (f *Fabric) DeliverToHost(ep topology.Endpoint, pkt *wire.Packet) {
	f.mu.Lock()
	h := f.hosts[ep]
	f.hostRx++
	f.mu.Unlock()
	f.recordTrace(TraceEvent{From: ep, Host: true, Pkt: pkt.String()})
	if h != nil {
		h(pkt)
	}
}

// Owns reports whether this fabric hosts the given switch's datapath.
func (f *Fabric) Owns(id topology.SwitchID) bool {
	_, ok := f.switches[id]
	return ok
}

// SetTracing toggles ground-truth trace capture.
func (f *Fabric) SetTracing(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tracing = on
	if !on {
		f.trace = nil
	}
}

// Trace returns a copy of captured events and clears the buffer.
func (f *Fabric) Trace() []TraceEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]TraceEvent, len(f.trace))
	copy(out, f.trace)
	f.trace = f.trace[:0]
	return out
}

func (f *Fabric) recordTrace(ev TraceEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.tracing {
		return
	}
	f.trace = append(f.trace, ev)
}

// LinkDeliveries returns the number of internal-link traversals so far.
func (f *Fabric) LinkDeliveries() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delivered
}

// HostDeliveries returns the number of frames handed to host NICs.
func (f *Fabric) HostDeliveries() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hostRx
}

// Close shuts down every switch.
func (f *Fabric) Close() {
	for _, sw := range f.switches {
		sw.Close()
	}
}
