package experiments

import (
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/wire"
)

func TestQueryLatencySmall(t *testing.T) {
	nt := NamedTopology{"linear-4", func() (*topology.Topology, error) { return topology.Linear(4, nil) }}
	row, err := QueryLatency(nt, wire.QueryReachableDestinations, 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.Switches != 4 || row.Rules == 0 {
		t.Errorf("row = %+v", row)
	}
	if row.Mean <= 0 || row.Mean > 2*time.Second {
		t.Errorf("implausible latency %v", row.Mean)
	}
}

func TestMonitoringOverheadSmall(t *testing.T) {
	nt := NamedTopology{"linear-4", func() (*topology.Topology, error) { return topology.Linear(4, nil) }}
	row, err := MonitoringOverhead(nt, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if row.PollAllMean <= 0 {
		t.Errorf("poll mean = %v", row.PollAllMean)
	}
	if row.EventsApplied != 40 {
		t.Errorf("events applied = %d, want 40", row.EventsApplied)
	}
}

func TestMultiProviderChain(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		elapsed, eps, err := MultiProviderChain(n)
		if err != nil {
			t.Fatalf("chain %d: %v", n, err)
		}
		if elapsed <= 0 || eps == 0 {
			t.Errorf("chain %d: elapsed=%v eps=%d", n, elapsed, eps)
		}
	}
}

func TestStandardSweepBuilds(t *testing.T) {
	for _, nt := range StandardSweep() {
		topo, err := nt.Build()
		if err != nil {
			t.Fatalf("%s: %v", nt.Name, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s: %v", nt.Name, err)
		}
	}
}
