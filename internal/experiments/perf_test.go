package experiments

import (
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/wire"
)

func TestQueryLatencySmall(t *testing.T) {
	nt := NamedTopology{"linear-4", func() (*topology.Topology, error) { return topology.Linear(4, nil) }}
	row, err := QueryLatency(nt, wire.QueryReachableDestinations, 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.Switches != 4 || row.Rules == 0 {
		t.Errorf("row = %+v", row)
	}
	if row.Mean <= 0 || row.Mean > 2*time.Second {
		t.Errorf("implausible latency %v", row.Mean)
	}
}

func TestMonitoringOverheadSmall(t *testing.T) {
	nt := NamedTopology{"linear-4", func() (*topology.Topology, error) { return topology.Linear(4, nil) }}
	row, err := MonitoringOverhead(nt, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if row.PollAllMean <= 0 {
		t.Errorf("poll mean = %v", row.PollAllMean)
	}
	if row.EventsApplied != 40 {
		t.Errorf("events applied = %d, want 40", row.EventsApplied)
	}
}

func TestMultiProviderChain(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		elapsed, eps, err := MultiProviderChain(n)
		if err != nil {
			t.Fatalf("chain %d: %v", n, err)
		}
		if elapsed <= 0 || eps == 0 {
			t.Errorf("chain %d: elapsed=%v eps=%d", n, elapsed, eps)
		}
	}
}

func TestReachScalingSmall(t *testing.T) {
	nt := NamedTopology{"linear-4", func() (*topology.Topology, error) { return topology.Linear(4, nil) }}
	rows, err := ReachScaling(nt, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Points == 0 || r.Mean <= 0 || r.Sweeps <= 0 {
			t.Errorf("implausible row %+v", r)
		}
	}
	if rows[0].Workers != 1 || rows[1].Workers != 2 {
		t.Errorf("worker columns = %d/%d", rows[0].Workers, rows[1].Workers)
	}
}

func TestEdgePoints(t *testing.T) {
	topo, err := topology.Linear(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	points := EdgePoints(topo)
	if len(points) == 0 {
		t.Fatal("no edge points on linear-3")
	}
	for _, p := range points {
		ep := topology.Endpoint{Switch: topology.SwitchID(p.Node), Port: topology.PortNo(p.Port)}
		if topo.IsInternal(ep) {
			t.Errorf("point %v is an internal port", p)
		}
	}
}

func TestStandardSweepBuilds(t *testing.T) {
	for _, nt := range StandardSweep() {
		topo, err := nt.Build()
		if err != nil {
			t.Fatalf("%s: %v", nt.Name, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s: %v", nt.Name, err)
		}
	}
}
