package experiments

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestFleetSweepSmall is the E18 harness at a toy population, mixed with
// isolation invariants: three arms (N=1 baseline, N=4 footprint, N=4
// rendezvous) over the same WAN, churn and registration sequence. The
// differential gate — fleet verdict streams byte-identical to the single
// engine — holds at any scale, so the small run checks it too.
func TestFleetSweepSmall(t *testing.T) {
	leakcheck.Check(t)
	rows, err := FleetSweep(60, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.VerdictsMatch {
			t.Errorf("arm n=%d/%s: verdict stream diverged from the N=1 baseline", r.Instances, r.Placement)
		}
		if r.Subs != 60 {
			t.Errorf("arm n=%d/%s: registered %d invariants, want 60", r.Instances, r.Placement, r.Subs)
		}
		if r.Violations == 0 {
			t.Errorf("arm n=%d/%s: churn produced no verdict transitions", r.Instances, r.Placement)
		}
	}
	if rows[0].TouchedPerPass != 1 {
		t.Errorf("N=1 touched %.2f instances per pass, want exactly 1", rows[0].TouchedPerPass)
	}
}

// TestFleetConfinement gates the dispatch-confinement claim on an
// anchor-rooted (no isolation) population: invariants place by anchor
// switch, so a single-switch event must reach only the instances owning
// the dirty buckets — strictly fewer than the fleet size. (Isolation
// invariants sweep every switch, putting a bucket for every switch on
// every instance, so the mixed population legitimately fans out; that arm
// is covered by TestFleetSweepSmall's differential gate instead.)
func TestFleetConfinement(t *testing.T) {
	leakcheck.Check(t)
	rows, err := FleetSweep(60, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	footprint := rows[1]
	if footprint.Placement != "footprint" || footprint.Instances != 4 {
		t.Fatalf("arm order changed: rows[1] = n=%d/%s", footprint.Instances, footprint.Placement)
	}
	if footprint.TouchedPerPass >= float64(footprint.Instances) {
		t.Errorf("footprint fleet touched %.2f of %d instances per single-switch pass, want < %d",
			footprint.TouchedPerPass, footprint.Instances, footprint.Instances)
	}
	for _, r := range rows {
		if !r.VerdictsMatch {
			t.Errorf("arm n=%d/%s: verdict stream diverged from the N=1 baseline", r.Instances, r.Placement)
		}
	}
}
