package experiments

import (
	"fmt"
	"time"

	"repro/internal/deploy"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Experiment E12: standing-invariant re-check latency — incremental
// (dirty-set-aware) versus naive re-query. A population of long-lived
// tenant invariants is registered once; then a single switch's
// configuration churns, as in a targeted reconfiguration attack, and we
// measure how long it takes the controller to re-establish every
// invariant's verdict (a) incrementally, re-running only invariants whose
// recorded footprint crosses the dirty switch, and (b) naively,
// re-evaluating all of them — the cost clients would collectively pay by
// re-issuing their queries after every change.

// SubscriptionRow is one row of the E12 table.
type SubscriptionRow struct {
	Topology string
	Switches int
	Subs     int
	// EvalsPerCheck is how many invariants one incremental pass actually
	// re-evaluated (the rest revalidated for free).
	EvalsPerCheck float64
	// IncrementalMean is the mean latency of one incremental re-check pass
	// after a single-switch change.
	IncrementalMean time.Duration
	// NaiveMean is the mean latency of re-evaluating every invariant.
	NaiveMean time.Duration
	// Speedup is NaiveMean / IncrementalMean.
	Speedup float64
}

// subscriptionChurnEntry is a rule matching traffic no invariant cares
// about: installing/removing it dirties the switch (forcing a transfer
// function recompile and a re-check) without flipping any verdict.
func subscriptionChurnEntry(i int) openflow.FlowEntry {
	return openflow.FlowEntry{
		Priority: uint16(3000 + i%64),
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: uint64(0xCB007100 + i%251), Mask: 0xFFFFFFFF},
		}},
		Actions: []openflow.Action{openflow.Output(1)},
		Cookie:  uint64(0xE1200000 + i),
	}
}

// SubscriptionRecheck measures E12 on one topology. It registers a mix of
// standing invariants (reachability, waypoint avoidance, path length — one
// per adjacent access-point pair, the long-lived multi-tenant population),
// then repeatedly dirties one switch and times incremental re-check versus
// naive full re-evaluation.
func SubscriptionRecheck(nt NamedTopology, iters int) (SubscriptionRow, error) {
	if iters < 1 {
		iters = 1
	}
	row := SubscriptionRow{Topology: nt.Name}
	topo, err := nt.Build()
	if err != nil {
		return row, err
	}
	d, err := deploy.New(topo, deploy.Options{SkipAgents: true, ManualRecheck: true})
	if err != nil {
		return row, err
	}
	defer d.Close()
	row.Switches = len(topo.Switches())

	aps := topo.AccessPoints()
	if len(aps) < 2 {
		return row, fmt.Errorf("experiments: %s has %d access points, need >= 2", nt.Name, len(aps))
	}
	// Three standing invariants per adjacent tenant pair (reachability,
	// waypoint avoidance, path length on the same scope): each invariant's
	// footprint is the short path segment between the two access points.
	kinds := []struct {
		kind  wire.QueryKind
		param string
	}{
		{wire.QueryReachableDestinations, ""},
		{wire.QueryWaypointAvoidance, "no-such-region"},
		{wire.QueryPathLength, "1000"},
	}
	for i := 0; i+1 < len(aps); i++ {
		dst := aps[i+1]
		for _, k := range kinds {
			if _, err := d.RVaaS.Subscribe(aps[i].ClientID, k.kind,
				[]wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(dst.HostIP), Mask: 0xFFFFFFFF}},
				k.param, aps[i].Endpoint); err != nil {
				return row, err
			}
			row.Subs++
		}
	}

	// The churned switch: an end of the topology, so most footprints miss
	// it — the steady-state case where a targeted attack touches one box.
	sws := topo.Switches()
	victim := sws[len(sws)-1]
	settle := func(i int) error {
		want := d.RVaaS.SnapshotID() + 2
		e := subscriptionChurnEntry(i)
		d.Fabric.Switch(victim).InstallDirect(e)
		d.Fabric.Switch(victim).RemoveDirect(e)
		// Absorb the two passive events deterministically before timing.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if d.RVaaS.SnapshotID() >= want {
				return nil
			}
			time.Sleep(50 * time.Microsecond)
		}
		return fmt.Errorf("experiments: churn events not absorbed on %s", nt.Name)
	}

	// Warm up: populate footprints and the compile cache baseline.
	if err := settle(0); err != nil {
		return row, err
	}
	d.RVaaS.RecheckNow()

	before := d.RVaaS.SubscriptionStats()
	var incTotal time.Duration
	for i := 1; i <= iters; i++ {
		if err := settle(i); err != nil {
			return row, err
		}
		start := time.Now()
		d.RVaaS.RecheckNow()
		incTotal += time.Since(start)
	}
	after := d.RVaaS.SubscriptionStats()
	row.IncrementalMean = incTotal / time.Duration(iters)
	if checks := after.Rechecks - before.Rechecks; checks > 0 {
		row.EvalsPerCheck = float64(after.Evaluated-before.Evaluated) / float64(checks)
	}

	var naiveTotal time.Duration
	for i := 1; i <= iters; i++ {
		start := time.Now()
		d.RVaaS.RevalidateAll()
		naiveTotal += time.Since(start)
	}
	row.NaiveMean = naiveTotal / time.Duration(iters)
	if row.IncrementalMean > 0 {
		row.Speedup = float64(row.NaiveMean) / float64(row.IncrementalMean)
	}
	return row, nil
}

// SubscriptionSweep runs E12 over the standard linear ladder.
func SubscriptionSweep(iters int) ([]SubscriptionRow, error) {
	tops := []NamedTopology{
		{Name: "linear-10", Build: func() (*topology.Topology, error) { return topology.Linear(10, nil) }},
		{Name: "linear-20", Build: func() (*topology.Topology, error) { return topology.Linear(20, nil) }},
		{Name: "linear-40", Build: func() (*topology.Topology, error) { return topology.Linear(40, nil) }},
	}
	rows := make([]SubscriptionRow, 0, len(tops))
	for _, nt := range tops {
		row, err := SubscriptionRecheck(nt, iters)
		if err != nil {
			return nil, fmt.Errorf("e12 %s: %w", nt.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
