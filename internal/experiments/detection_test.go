package experiments

import "testing"

// TestDetectionMatrixUnderLyingProvider is experiment E4 under the paper's
// threat model: the compromised control plane falsifies its reports. RVaaS
// must detect every attack; the report-dependent baselines must miss the
// ones the provider can lie about.
func TestDetectionMatrixUnderLyingProvider(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is expensive")
	}
	results := DetectionMatrix(true)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s/%s: %v", r.Attack, r.Detector, r.Err)
		}
	}
	byCell := make(map[[2]string]bool)
	for _, r := range results {
		byCell[[2]string{r.Attack, r.Detector}] = r.Detected
	}
	attacks := []string{
		"traffic-diversion", "exfiltration", "join-attack",
		"geo-violation", "neutrality-violation", "meter-throttle", "flap-attack",
	}
	for _, a := range attacks {
		if !byCell[[2]string{a, "rvaas"}] {
			t.Errorf("rvaas missed %s", a)
		}
		if byCell[[2]string{a, "traceroute"}] {
			t.Errorf("traceroute detected %s despite a lying provider", a)
		}
		if byCell[[2]string{a, "trajectory-sampling"}] {
			t.Errorf("trajectory sampling detected %s despite a lying provider", a)
		}
	}
	t.Logf("\n%s", FormatMatrix(results))
}

// TestDetectionMatrixHonestProvider is the ablation: with an honest
// provider, path-observing baselines do catch path-changing attacks but
// remain blind to attacks that do not alter the observed flow's path.
func TestDetectionMatrixHonestProvider(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is expensive")
	}
	results := DetectionMatrix(false)
	byCell := make(map[[2]string]bool)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s/%s: %v", r.Attack, r.Detector, r.Err)
		}
		byCell[[2]string{r.Attack, r.Detector}] = r.Detected
	}
	// Path-changing attacks are visible to honest trajectory sampling.
	for _, a := range []string{"traffic-diversion", "geo-violation", "neutrality-violation"} {
		if !byCell[[2]string{a, "trajectory-sampling"}] {
			t.Errorf("honest trajectory sampling should catch %s", a)
		}
	}
	// Join attacks never alter the observed flow: all baselines blind.
	if byCell[[2]string{"join-attack", "traceroute"}] ||
		byCell[[2]string{"join-attack", "trajectory-sampling"}] {
		t.Error("baselines cannot see a join attack even with an honest provider")
	}
	// RVaaS still detects everything.
	score := DetectionScore(results)
	if score["rvaas"] != 7 {
		t.Errorf("rvaas score = %d/7", score["rvaas"])
	}
	// The covert meter throttle is invisible to path observation even with
	// an honest provider: the probe passes the burst allowance.
	if byCell[[2]string{"meter-throttle", "trajectory-sampling"}] {
		t.Error("trajectory sampling cannot see rate starvation")
	}
}
