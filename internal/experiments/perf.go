package experiments

import (
	"fmt"
	"time"

	"repro/internal/deploy"
	"repro/internal/headerspace"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

// NamedTopology couples a label with a topology builder, for sweeps.
type NamedTopology struct {
	Name  string
	Build func() (*topology.Topology, error)
}

// StandardSweep returns the topology ladder used by E1/E3/E6/E7.
func StandardSweep() []NamedTopology {
	return []NamedTopology{
		{"linear-5", func() (*topology.Topology, error) { return topology.Linear(5, nil) }},
		{"linear-20", func() (*topology.Topology, error) { return topology.Linear(20, nil) }},
		{"linear-40", func() (*topology.Topology, error) { return topology.Linear(40, nil) }},
		{"grid-4x4", func() (*topology.Topology, error) { return topology.Grid(4, 4) }},
		{"fattree-4", func() (*topology.Topology, error) { return topology.FatTree(4) }},
		{"wan-3x3", func() (*topology.Topology, error) {
			return topology.MultiRegionWAN([]topology.Region{"eu-west", "offshore", "us-east"}, 3)
		}},
	}
}

// LatencyRow is one row of the E1 table.
type LatencyRow struct {
	Topology  string
	Switches  int
	Rules     int
	Kind      wire.QueryKind
	Mean      time.Duration
	PerSwitch time.Duration
}

// QueryLatency measures the mean end-to-end latency (Fig. 1+2 round trip:
// query injection to verified signed response) of `iters` queries of the
// given kind on a deployment built from nt.
func QueryLatency(nt NamedTopology, kind wire.QueryKind, iters int) (LatencyRow, error) {
	row := LatencyRow{Topology: nt.Name, Kind: kind}
	topo, err := nt.Build()
	if err != nil {
		return row, err
	}
	d, err := deploy.New(topo, deploy.Options{AuthTimeout: 500 * time.Millisecond})
	if err != nil {
		return row, err
	}
	defer d.Close()
	row.Switches = len(topo.Switches())
	for _, sw := range d.Fabric.Switches() {
		row.Rules += len(sw.Table())
	}
	aps := topo.AccessPoints()
	src, dst := aps[0], aps[len(aps)-1]
	agent := d.Agent(src.ClientID)
	if agent == nil {
		return row, fmt.Errorf("no agent for client %d", src.ClientID)
	}
	constraints := []wire.FieldConstraint{
		{Field: wire.FieldIPDst, Value: uint64(dst.HostIP), Mask: 0xFFFFFFFF},
	}
	// Warm up once.
	if _, err := agent.Query(kind, constraints, warmParam(kind)); err != nil {
		return row, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := agent.Query(kind, constraints, warmParam(kind)); err != nil {
			return row, err
		}
	}
	row.Mean = time.Since(start) / time.Duration(iters)
	if row.Switches > 0 {
		row.PerSwitch = row.Mean / time.Duration(row.Switches)
	}
	return row, nil
}

func warmParam(kind wire.QueryKind) string {
	if kind == wire.QueryPathLength {
		return "1000"
	}
	return ""
}

// IsolationLatency measures E6: the mean latency of the isolation case
// study's full query (logical sweep over every edge port plus in-band
// authentication of the tenant's partners) on a tenant-routed deployment.
func IsolationLatency(nt NamedTopology, iters int) (LatencyRow, error) {
	row := LatencyRow{Topology: nt.Name, Kind: wire.QueryIsolation}
	topo, err := nt.Build()
	if err != nil {
		return row, err
	}
	d, err := deploy.New(topo, deploy.Options{
		TenantRouting: true,
		AuthTimeout:   500 * time.Millisecond,
	})
	if err != nil {
		return row, err
	}
	defer d.Close()
	row.Switches = len(topo.Switches())
	for _, sw := range d.Fabric.Switches() {
		row.Rules += len(sw.Table())
	}
	ap := topo.AccessPoints()[0]
	agent := d.Agent(ap.ClientID)
	if agent == nil {
		return row, fmt.Errorf("no agent for client %d", ap.ClientID)
	}
	constraints := []wire.FieldConstraint{
		{Field: wire.FieldIPDst, Value: uint64(ap.HostIP), Mask: 0xFFFFFFFF},
	}
	if _, err := agent.Query(wire.QueryIsolation, constraints, ""); err != nil {
		return row, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := agent.Query(wire.QueryIsolation, constraints, ""); err != nil {
			return row, err
		}
	}
	row.Mean = time.Since(start) / time.Duration(iters)
	if row.Switches > 0 {
		row.PerSwitch = row.Mean / time.Duration(row.Switches)
	}
	return row, nil
}

// MonitoringRow is one row of the E3 table.
type MonitoringRow struct {
	Topology      string
	Switches      int
	PollAllMean   time.Duration
	EventApply    time.Duration // mean passive-event ingestion latency
	EventsApplied uint64
}

// MonitoringOverhead measures E3: the cost of one full active poll of every
// switch, and the throughput of the passive event path (driven by a burst
// of provider flow-mods).
func MonitoringOverhead(nt NamedTopology, polls, churnRules int) (MonitoringRow, error) {
	row := MonitoringRow{Topology: nt.Name}
	topo, err := nt.Build()
	if err != nil {
		return row, err
	}
	d, err := deploy.New(topo, deploy.Options{SkipAgents: true})
	if err != nil {
		return row, err
	}
	defer d.Close()
	row.Switches = len(topo.Switches())

	start := time.Now()
	for i := 0; i < polls; i++ {
		if err := d.RVaaS.PollAll(5 * time.Second); err != nil {
			return row, err
		}
	}
	row.PollAllMean = time.Since(start) / time.Duration(polls)

	// Passive path: install/remove churnRules rules and wait until the
	// snapshot has absorbed every event.
	before := d.RVaaS.Stats().PassiveEvents
	sws := topo.Switches()
	startEv := time.Now()
	for i := 0; i < churnRules; i++ {
		sw := sws[i%len(sws)]
		e := openflow.FlowEntry{
			Priority: uint16(2000 + i%1000),
			Match: openflow.Match{Fields: []openflow.FieldMatch{
				{Field: wire.FieldIPDst, Value: uint64(0x0A000000 + i), Mask: 0xFFFFFFFF},
			}},
			Actions: []openflow.Action{openflow.Output(1)},
			Cookie:  uint64(0xE3000000 + i),
		}
		d.Fabric.Switch(sw).InstallDirect(e)
		d.Fabric.Switch(sw).RemoveDirect(e)
	}
	want := before + uint64(2*churnRules)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if d.RVaaS.Stats().PassiveEvents >= want {
			break
		}
		time.Sleep(time.Millisecond)
	}
	applied := d.RVaaS.Stats().PassiveEvents - before
	row.EventsApplied = applied
	if applied > 0 {
		row.EventApply = time.Since(startEv) / time.Duration(applied)
	}
	return row, nil
}

// EdgePoints maps the topology's edge (access) ports to header-space
// injection points — the sweep set of a "which sources reach me" query,
// and the unit of work ReachAll parallelises over.
func EdgePoints(topo *topology.Topology) []headerspace.InjectionPoint {
	edges := topo.EdgePorts()
	points := make([]headerspace.InjectionPoint, len(edges))
	for i, ep := range edges {
		points[i] = headerspace.InjectionPoint{
			Node: headerspace.NodeID(ep.Switch), Port: headerspace.PortID(ep.Port),
		}
	}
	return points
}

// ReachScalingRow is one row of the E11 table: throughput of a full
// injection sweep at a given worker count.
type ReachScalingRow struct {
	Topology string
	Points   int
	Workers  int
	Mean     time.Duration // one full ReachAll sweep over all points
	Sweeps   float64       // sweeps per second
	Speedup  float64       // vs the workers=1 row of the same topology
}

// ReachScaling measures E11: ReachAll sweep throughput over every edge port
// of the deployed topology at each worker count. The network is compiled
// once (through the controller's compile cache) and shared read-only by all
// workers, so the measurement isolates traversal parallelism.
func ReachScaling(nt NamedTopology, workers []int, iters int) ([]ReachScalingRow, error) {
	if iters < 1 {
		iters = 1
	}
	topo, err := nt.Build()
	if err != nil {
		return nil, err
	}
	d, err := deploy.New(topo, deploy.Options{SkipAgents: true})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	net := d.RVaaS.CompiledNetwork()
	points := EdgePoints(topo)
	aps := topo.AccessPoints()
	if len(aps) == 0 {
		return nil, fmt.Errorf("experiments: %s has no access points", nt.Name)
	}
	space := headerspace.NewSpace(wire.HeaderWidth,
		wire.FieldHeader(wire.FieldIPDst, uint64(aps[len(aps)-1].HostIP), 0xFFFFFFFF))

	rows := make([]ReachScalingRow, 0, len(workers))
	var serialMean time.Duration
	for _, w := range workers {
		opt := headerspace.ReachOptions{Parallelism: w}
		// Warm up once (also populates the compile cache path).
		net.ReachAll(points, space, opt)
		start := time.Now()
		for i := 0; i < iters; i++ {
			net.ReachAll(points, space, opt)
		}
		mean := time.Since(start) / time.Duration(iters)
		row := ReachScalingRow{
			Topology: nt.Name,
			Points:   len(points),
			Workers:  w,
			Mean:     mean,
			Sweeps:   float64(time.Second) / float64(mean),
		}
		if w == 1 {
			serialMean = mean
		}
		if serialMean > 0 && mean > 0 {
			row.Speedup = float64(serialMean) / float64(mean)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MultiProviderChain builds a chain of n federated providers and measures
// one recursive FederatedReachable query across all of them (E9).
func MultiProviderChain(n int) (time.Duration, int, error) {
	if n < 1 {
		return 0, 0, fmt.Errorf("experiments: chain needs n >= 1")
	}
	type prov struct {
		d     *deploy.Deployment
		topo  *topology.Topology
		entry topology.Endpoint
	}
	provs := make([]prov, 0, n)
	defer func() {
		for _, p := range provs {
			p.d.Close()
		}
	}()
	for i := 0; i < n; i++ {
		topo, err := topology.Linear(3, nil)
		if err != nil {
			return 0, 0, err
		}
		d, err := deploy.New(topo, deploy.Options{SkipAgents: true})
		if err != nil {
			return 0, 0, err
		}
		provs = append(provs, prov{d: d, topo: topo})
	}
	// Destination host lives in the last provider.
	last := provs[n-1]
	dst := last.topo.AccessPoints()[2]

	// Wire provider i to provider i+1: egress at the free right-edge port
	// of the last switch (linear switch n has port 2 unwired), entry at
	// the free left-edge port of switch 1 (port 1).
	for i := 0; i < n; i++ {
		p := provs[i]
		if i > 0 {
			provs[i].entry = topology.Endpoint{Switch: 1, Port: 1}
		}
		if i == n-1 {
			continue
		}
		egress := topology.Endpoint{Switch: 3, Port: 2}
		// Route the destination prefix toward the egress.
		for _, sw := range p.topo.Switches() {
			var out topology.PortNo
			if sw == egress.Switch {
				out = egress.Port
			} else {
				path := p.topo.ShortestPath(sw, egress.Switch)
				if path == nil || len(path) < 2 {
					continue
				}
				out = p.topo.PortTowards(sw, path[1])
			}
			p.d.Fabric.Switch(sw).InstallDirect(openflow.FlowEntry{
				Priority: 150,
				Match: openflow.Match{Fields: []openflow.FieldMatch{
					{Field: wire.FieldIPDst, Value: uint64(dst.HostIP), Mask: 0xFFFFFFFF},
				}},
				Actions: []openflow.Action{openflow.Output(uint32(out))},
				Cookie:  0x9900 + uint64(i),
			})
		}
		if err := p.d.RVaaS.PollAll(2 * time.Second); err != nil {
			return 0, 0, err
		}
	}
	// In the last provider the default all-pairs tree reaches dst; resync
	// anyway for a fair measurement.
	if err := last.d.RVaaS.PollAll(2 * time.Second); err != nil {
		return 0, 0, err
	}
	for i := 0; i+1 < n; i++ {
		egress := topology.Endpoint{Switch: 3, Port: 2}
		provs[i].d.RVaaS.AddPeer(fmt.Sprintf("p%d", i+1), egress, provs[i+1].d.RVaaS, topology.Endpoint{Switch: 1, Port: 1})
	}

	src := provs[0].topo.AccessPoints()[0]
	constraints := []wire.FieldConstraint{
		{Field: wire.FieldIPDst, Value: uint64(dst.HostIP), Mask: 0xFFFFFFFF},
	}
	start := time.Now()
	eps := provs[0].d.RVaaS.FederatedReachable(src.Endpoint, constraints)
	elapsed := time.Since(start)
	found := 0
	for _, e := range eps {
		if e == dst.Endpoint.String() {
			found++
		}
	}
	if found == 0 {
		return elapsed, len(eps), fmt.Errorf("experiments: chain query missed the destination (%v)", eps)
	}
	return elapsed, len(eps), nil
}
