package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/controlplane"
	"repro/internal/deploy"
	"repro/internal/topology"
)

// Experiment E5: randomized polling against short-term reconfiguration
// (flap) attacks. The paper argues active polls "need to happen at random
// times, which are hard to guess for the adversary. This is important as
// otherwise, the adversary may simply set the correct rules for the short
// time periods in which the box checks the configuration" (§IV-A).
//
// The simulation suppresses the switches' flow-monitor channel (a stealthy
// adversary), leaving polls as the only observation mechanism, and runs on
// a virtual clock:
//
//   - The attacker flaps with period P, keeping its malicious rules
//     installed for a window W of each period. It knows the NOMINAL poll
//     schedule (one poll per interval I starting at phase 0) and aligns its
//     windows to start just after each nominal poll time.
//   - Fixed polling polls exactly at the nominal times, so the attacker
//     evades every check.
//   - Randomized polling draws each gap from [I/2, 3I/2] (the controller's
//     actual distribution), so polls drift away from the nominal times the
//     attacker aims around.
type FlapResult struct {
	Randomized   bool
	Window       time.Duration
	PollInterval time.Duration
	Polls        int
	PollsHit     int
	// DetectionRate is PollsHit / Polls: the per-poll probability of
	// catching the attack rules installed.
	DetectionRate float64
	// Detected reports whether the attack was caught at least once over
	// the horizon.
	Detected bool
}

// FlapDetection runs one E5 configuration.
//
// window is the attacker's active window per poll interval (the attack
// period equals the nominal poll interval: the attacker re-installs after
// every nominal poll). horizon/pollInterval polls are simulated.
func FlapDetection(randomized bool, window, pollInterval, horizon time.Duration, seed int64) (FlapResult, error) {
	res := FlapResult{Randomized: randomized, Window: window, PollInterval: pollInterval}
	if window > pollInterval {
		return res, fmt.Errorf("experiments: window %v exceeds poll interval %v", window, pollInterval)
	}
	topo, err := topology.Linear(3, nil)
	if err != nil {
		return res, err
	}
	// Virtual clock (mutex-guarded: controller goroutines read it).
	var clkMu sync.Mutex
	now := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time {
		clkMu.Lock()
		defer clkMu.Unlock()
		return now
	}
	setNow := func(t time.Time) {
		clkMu.Lock()
		defer clkMu.Unlock()
		now = t
	}

	d, err := deploy.New(topo, deploy.Options{
		Clock:      clock,
		Seed:       seed,
		SkipAgents: true,
	})
	if err != nil {
		return res, err
	}
	defer d.Close()
	// The stealthy adversary suppresses monitor events on every switch.
	for _, sw := range d.Fabric.Switches() {
		sw.SetEventSuppression(true)
	}

	victim := topo.AccessPoints()[2]
	flap := &controlplane.FlapAttack{
		Inner: &controlplane.NeutralityViolation{VictimIP: victim.HostIP, L4Dst: 443},
	}
	rng := rand.New(rand.NewSource(seed))
	start := clock()

	// Generate this run's actual poll times.
	var pollTimes []time.Duration
	elapsed := time.Duration(0)
	for elapsed < horizon {
		var gap time.Duration
		if randomized {
			gap = pollInterval/2 + time.Duration(rng.Int63n(int64(pollInterval)))
		} else {
			gap = pollInterval
		}
		elapsed += gap
		pollTimes = append(pollTimes, elapsed)
	}

	// attackActive: the attacker's window starts just after each NOMINAL
	// poll time k*I (it cannot observe the actual randomized polls).
	attackActive := func(t time.Duration) bool {
		phase := t % pollInterval
		// Active in (epsilon, epsilon+window] after the nominal poll.
		const epsilon = time.Millisecond
		return phase > epsilon && phase <= epsilon+window
	}

	for _, pt := range pollTimes {
		// Advance the world to the poll instant: set attack phase first.
		setNow(start.Add(pt))
		wantActive := attackActive(pt)
		if wantActive && !flap.Active() {
			if err := flap.Launch(d.Provider); err != nil {
				return res, err
			}
		}
		if !wantActive && flap.Active() {
			if err := flap.Revert(d.Provider); err != nil {
				return res, err
			}
		}
		if err := d.RVaaS.PollAll(2 * time.Second); err != nil {
			return res, err
		}
		res.Polls++
		if snapshotHasAttack(d) {
			res.PollsHit++
		}
	}
	res.Detected = res.PollsHit > 0
	if res.Polls > 0 {
		res.DetectionRate = float64(res.PollsHit) / float64(res.Polls)
	}
	return res, nil
}

// snapshotHasAttack checks the latest polled snapshot for attack-cookie
// rules.
func snapshotHasAttack(d *deploy.Deployment) bool {
	rec, ok := d.RVaaS.History().Latest()
	if !ok {
		return false
	}
	for _, entries := range rec.Tables {
		for _, e := range entries {
			if e.Cookie&controlplane.CookieAttack == controlplane.CookieAttack {
				return true
			}
		}
	}
	return false
}

// FlapSweep runs E5 across window fractions for both strategies.
type FlapSweepRow struct {
	WindowFraction float64
	FixedRate      float64
	RandomRate     float64
}

// FlapSweep sweeps the attacker's duty cycle (window / poll interval) and
// reports per-poll detection rates for fixed and randomized polling.
func FlapSweep(fractions []float64, pollInterval, horizon time.Duration, seed int64) ([]FlapSweepRow, error) {
	var rows []FlapSweepRow
	for _, f := range fractions {
		window := time.Duration(float64(pollInterval) * f)
		fixed, err := FlapDetection(false, window, pollInterval, horizon, seed)
		if err != nil {
			return nil, err
		}
		random, err := FlapDetection(true, window, pollInterval, horizon, seed+1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FlapSweepRow{
			WindowFraction: f,
			FixedRate:      fixed.DetectionRate,
			RandomRate:     random.DetectionRate,
		})
	}
	return rows, nil
}
