package experiments

import (
	"fmt"
	"time"

	"repro/internal/deploy"
	"repro/internal/faultinject"
	"repro/internal/labspec"
	"repro/internal/rvaas"
	"repro/internal/rvaas/admin"
)

// Experiment E16: measured degradation envelopes under injected faults.
// The paper's core promise is that the verification plane never lies about
// network state; the fault plane is how we audit that promise under the
// conditions where lying is easiest — a partitioned trunk and a lossy
// attach path. Each row runs a real multi-process lab (two switchd
// children, one agentd child), schedules a trunk partition against the
// group hosting the far switches — optionally under sustained channel
// loss — and measures the envelope: how long until the partition is
// *detected* (first hosted switch detached), whether the standing
// invariants ever report green while their switches are known-detached
// (stale-green — the one unacceptable outcome), and how long after the
// partition heals until the children have rejoined through their own
// backoff loops and every invariant is green again.

// envelopeSpecYAML is the placed lab the envelope rows run: linear-4 with
// the middle and far switches in child processes and the far client's
// agent in a third, under a fast trunk liveness contract so detection
// and rejoin happen at bench speed.
const envelopeSpecYAML = `
name: envelope-lab
schemaVersion: 2
topology:
  generator: linear
  size: 4
transport:
  kind: udp
placement:
  joinTimeout: 30s
  beatInterval: 50ms
  beatMissTimeout: 400ms
  rejoin:
    maxAttempts: 60
    backoff: 50ms
    maxBackoff: 250ms
  groups:
    - name: left
      proc: local-exec
      switches: [2]
    - name: right
      proc: local-exec
      switches: [3, 4]
    - name: edge
      proc: local-exec
      agents: [3]
invariants:
  - client: 1
    kind: reachable-destinations
    constraints:
      - field: ip_dst
        value: 0x0A000401
        mask: 0xFFFFFFFF
  - client: 3
    kind: path-length
    param: "10"
`

// FaultEnvelopeRow is one row of the E16 table.
type FaultEnvelopeRow struct {
	Lab string
	// LossPct is the sustained channel drop percentage active for the
	// whole row; Partition the scheduled trunk partition length.
	LossPct   int
	Partition time.Duration
	// DetachDetect is partition start -> first hosted switch marked
	// detached: how long the controller could, in principle, have served
	// stale state before noticing.
	DetachDetect time.Duration
	// ReattachConverge is partition end -> children rejoined, every
	// switch re-attached and every invariant green again.
	ReattachConverge time.Duration
	// StaleGreen counts poll samples during the partition where the
	// invariants reported green AFTER the degradation had been surfaced,
	// while the partitioned switches were still detached. Must be zero.
	StaleGreen int
	// Rejoins counts trunk join handshakes beyond the initial ones: the
	// children's own backoff rejoin doing the healing (no respawn).
	Rejoins int
	// ChannelDropped is the injector's count of channel messages eaten by
	// the loss profile (0 for the loss-free row).
	ChannelDropped uint64
}

// FaultEnvelopeSweep runs the three envelope rows: a clean partition, the
// same partition under 5% channel loss, and a longer partition under the
// same loss. childCmd spawns the lab's child processes (the benchharness
// re-execs itself); logf receives child/deploy logs (nil discards); seed
// drives the loss profiles' RNG so a sweep is reproducible end to end.
func FaultEnvelopeSweep(childCmd func(string) []string, logf func(string, ...any), seed int64) ([]FaultEnvelopeRow, error) {
	cases := []struct {
		loss      int
		partition time.Duration
	}{
		{0, 1200 * time.Millisecond},
		{5, 1200 * time.Millisecond},
		{5, 2500 * time.Millisecond},
	}
	rows := make([]FaultEnvelopeRow, 0, len(cases))
	for _, c := range cases {
		row, err := faultEnvelope(childCmd, logf, c.loss, c.partition, seed)
		if err != nil {
			return nil, fmt.Errorf("loss=%d%%/partition=%s: %w", c.loss, c.partition, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func faultEnvelope(childCmd func(string) []string, logf func(string, ...any), loss int, partition time.Duration, seed int64) (FaultEnvelopeRow, error) {
	row := FaultEnvelopeRow{Lab: "placed4", LossPct: loss, Partition: partition}
	spec, err := labspec.Parse([]byte(envelopeSpecYAML))
	if err != nil {
		return row, err
	}
	spec.Name = fmt.Sprintf("envelope-loss%d", loss)
	if loss > 0 {
		spec.Faults = &labspec.FaultsSpec{
			Seed: seed,
			Profiles: []labspec.FaultProfileSpec{{
				Name:    "lossy",
				Drop:    float64(loss) / 100,
				Latency: labspec.Duration(2 * time.Millisecond),
			}},
		}
	}
	d, err := deploy.FromSpecPlaced(spec, deploy.PlacedConfig{ChildCommand: childCmd, Logf: logf})
	if err != nil {
		return row, err
	}
	defer d.Close()
	p := d.Placed

	green := func() bool {
		subs := d.RVaaS.Subscriptions()
		if len(subs) != 2 {
			return false
		}
		for _, s := range subs {
			if s.Violated {
				return false
			}
		}
		return true
	}
	rightDetached := func() bool {
		for _, ss := range d.RVaaS.SwitchSessions() {
			if (ss.Switch == 3 || ss.Switch == 4) && ss.State == rvaas.SwitchDetached {
				return true
			}
		}
		return false
	}
	allAttached := func() bool {
		for _, ss := range d.RVaaS.SwitchSessions() {
			if !ss.Attached() {
				return false
			}
		}
		return true
	}
	rightRunning := func() bool {
		for _, h := range p.ProcHealth() {
			if h.Name == "right" {
				return h.State == admin.ProcStateRunning
			}
		}
		return false
	}
	totalJoins := func() int {
		n := 0
		for _, h := range p.ProcHealth() {
			n += h.Joins
		}
		return n
	}

	if err := waitUntil(30*time.Second, green); err != nil {
		return row, fmt.Errorf("bring-up: %w", err)
	}
	if loss > 0 {
		if _, err := p.InjectFault(admin.FaultInjectRequest{
			Target: faultinject.TargetChannel, Profile: "lossy",
		}); err != nil {
			return row, fmt.Errorf("inject channel loss: %w", err)
		}
		// Let the loss profile bite before the partition starts, so the
		// partition rows under loss really measure detection *under* loss.
		time.Sleep(500 * time.Millisecond)
	}

	joinsBefore := totalJoins()
	start := time.Now()
	if _, err := p.InjectFault(admin.FaultInjectRequest{
		Target: faultinject.TargetTrunk, Group: "right",
		Kind: faultinject.KindPartition, DurationMS: partition.Milliseconds(),
	}); err != nil {
		return row, fmt.Errorf("inject partition: %w", err)
	}

	// Ride the partition out sampling the controller's story. Stale-green
	// only counts after the degradation has been surfaced once: the window
	// between detach and the first re-evaluation IS the detection latency,
	// measured separately.
	surfaced := false
	for time.Since(start) < partition {
		detached := rightDetached()
		g := green()
		if detached && row.DetachDetect == 0 {
			row.DetachDetect = time.Since(start)
		}
		if detached && !g {
			surfaced = true
		}
		if detached && surfaced && g {
			row.StaleGreen++
		}
		time.Sleep(5 * time.Millisecond)
	}
	if row.DetachDetect == 0 {
		return row, fmt.Errorf("partition of %s never detected", partition)
	}

	healed := start.Add(partition)
	if err := waitUntil(30*time.Second, func() bool {
		return allAttached() && rightRunning() && green()
	}); err != nil {
		return row, fmt.Errorf("reconvergence after heal: %w", err)
	}
	row.ReattachConverge = time.Since(healed)
	row.Rejoins = totalJoins() - joinsBefore
	if row.Rejoins < 1 {
		return row, fmt.Errorf("healed with %d rejoins: children must rejoin through their own backoff", row.Rejoins)
	}
	row.ChannelDropped = p.Faults().Counters.ChannelDropped
	return row, nil
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %s", d)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}
