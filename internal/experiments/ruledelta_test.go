package experiments

import (
	"testing"

	"repro/internal/topology"
)

// TestRuleDeltaExperiment smoke-runs the E14 driver on a small star and
// checks its headline claim deterministically: per-switch dispatch
// re-evaluates (essentially) the whole population after a hub change,
// rule-delta dispatch re-evaluates none of it, and no verdict differs.
func TestRuleDeltaExperiment(t *testing.T) {
	row, err := RuleDeltaRecheck(NamedTopology{
		Name:  "star-8",
		Build: func() (*topology.Topology, error) { return topology.Star(8) },
	}, 40, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if row.Subs != 40 {
		t.Fatalf("subs = %d, want 40", row.Subs)
	}
	if row.PerSwitchMean <= 0 || row.DeltaMean <= 0 {
		t.Fatalf("degenerate timings: %+v", row)
	}
	// Every invariant crosses the hub: the per-switch dirty bucket is the
	// whole population.
	if row.PerSwitchEvals < 0.9*float64(row.Subs) {
		t.Errorf("per-switch evals/check = %.1f, want ≈ %d (hub topology)", row.PerSwitchEvals, row.Subs)
	}
	// The churn rule's header space overlaps no invariant's traversal
	// slice: rule-delta dispatch runs nothing at all.
	if row.DeltaEvals != 0 {
		t.Errorf("rule-delta evals/check = %.1f, want 0", row.DeltaEvals)
	}
	if row.DeltaSkipped < 0.9*float64(row.Subs) {
		t.Errorf("delta-skipped/check = %.1f, want ≈ %d (whole bucket filtered)", row.DeltaSkipped, row.Subs)
	}
	if row.DeltaEvals >= row.PerSwitchEvals {
		t.Errorf("delta dispatch (%.1f evals) not below per-switch dirty bucket (%.1f)", row.DeltaEvals, row.PerSwitchEvals)
	}
}
