package experiments

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/rvaas"
	"repro/internal/topology"
	"repro/internal/wire"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// normalizeResponse strips the per-exchange fields (nonce, signature,
// attestation quote) so two responses to the same question can be compared
// byte-for-byte.
func normalizeResponse(resp *wire.QueryResponse) string {
	r := *resp
	r.Nonce = 0
	r.Signature = nil
	r.Quote = nil
	return string(r.Marshal())
}

// TestProtocolDifferentialV1V2 drives every v1 client query flow twice
// against one unchanged deployment — once over legacy v1 frames, once over
// protocol v2 envelopes — and requires byte-identical verdicts: the
// envelope is framing, never semantics.
func TestProtocolDifferentialV1V2(t *testing.T) {
	topo, err := topology.Linear(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(topo, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	aps := topo.AccessPoints()
	ag := d.Agent(aps[0].ClientID)

	kinds := []struct {
		kind  wire.QueryKind
		param string
	}{
		{wire.QueryReachableDestinations, ""},
		{wire.QueryReachingSources, ""},
		{wire.QueryIsolation, ""},
		{wire.QueryGeoRegions, ""},
		{wire.QueryPathLength, "100"},
		{wire.QueryWaypointAvoidance, "no-such-region"},
		{wire.QueryNeutrality, ""},
		{wire.QueryTransferFunction, ""},
	}
	cons := []wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(aps[1].HostIP), Mask: 0xFFFFFFFF}}
	for _, k := range kinds {
		ag.SetProtocol(1)
		v1, err := ag.Query(k.kind, cons, k.param)
		if err != nil {
			t.Fatalf("%s over v1: %v", k.kind, err)
		}
		ag.SetProtocol(wire.EnvelopeVersion)
		v2, err := ag.Query(k.kind, cons, k.param)
		if err != nil {
			t.Fatalf("%s over v2: %v", k.kind, err)
		}
		if normalizeResponse(v1) != normalizeResponse(v2) {
			t.Fatalf("%s: v1 and v2 verdicts differ:\nv1: %+v\nv2: %+v", k.kind, v1, v2)
		}
	}

	// Subscription lifecycle: register → verdict query → unsubscribe, in
	// both protocol versions, must yield identical verdicts and acks.
	type subRun struct {
		initialStatus wire.ResponseStatus
		initialDetail string
		verdictStatus wire.ResponseStatus
		verdictDetail string
		verdictSeq    uint64
	}
	runSub := func(proto uint8) subRun {
		ag.SetProtocol(proto)
		sub, err := ag.Subscribe(wire.QueryReachableDestinations, cons, "")
		if err != nil {
			t.Fatalf("subscribe over v%d: %v", proto, err)
		}
		ack, err := ag.QueryVerdict(sub)
		if err != nil {
			t.Fatalf("verdict query over v%d: %v", proto, err)
		}
		out := subRun{
			initialStatus: sub.InitialStatus,
			initialDetail: sub.InitialDetail,
			verdictStatus: ack.Status,
			verdictDetail: ack.Detail,
			verdictSeq:    ack.Seq,
		}
		if err := ag.Unsubscribe(sub); err != nil {
			t.Fatalf("unsubscribe over v%d: %v", proto, err)
		}
		return out
	}
	r1 := runSub(1)
	r2 := runSub(wire.EnvelopeVersion)
	if r1 != r2 {
		t.Fatalf("subscription flow differs across protocols:\nv1: %+v\nv2: %+v", r1, r2)
	}
	if n := len(d.RVaaS.Subscriptions()); n != 0 {
		t.Fatalf("subscriptions leaked: %d", n)
	}
}

// TestBatchSubscribeEndToEnd registers a batch through the real in-band
// path (one signed envelope), including a rejected item, and checks that
// batch-registered subscriptions receive ordinary violation pushes routed
// by their derived per-item nonces.
func TestBatchSubscribeEndToEnd(t *testing.T) {
	topo, err := topology.Linear(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(topo, deploy.Options{AgentProtocol: wire.EnvelopeVersion})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	aps := topo.AccessPoints()
	ag := d.Agent(aps[0].ClientID)

	cons := []wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(aps[1].HostIP), Mask: 0xFFFFFFFF}}
	items := []wire.BatchItem{
		{Kind: wire.QueryReachableDestinations, Constraints: cons},
		{Kind: wire.QueryPathLength, Constraints: cons, Param: "not-a-number"}, // rejected
		{Kind: wire.QueryWaypointAvoidance, Constraints: cons, Param: "no-such-region"},
	}
	subs, err := ag.BatchSubscribe(items)
	if err != nil {
		t.Fatal(err)
	}
	if subs[0] == nil || subs[2] == nil {
		t.Fatalf("valid batch items rejected: %+v", subs)
	}
	if subs[1] != nil {
		t.Fatalf("invalid batch item accepted: %+v", subs[1])
	}
	if st := d.RVaaS.SubscriptionStats(); st.Active != 2 {
		t.Fatalf("want 2 active subscriptions, have %d", st.Active)
	}

	// A routing change that blackholes the destination must push a
	// violation to the batch-registered reachability invariant.
	d.Provider.UninstallDestination(aps[1].HostIP)
	select {
	case n := <-subs[0].C:
		if n.Event != wire.NotifyViolation {
			t.Fatalf("want violation push, got %v (%s)", n.Event, n.Detail)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no violation push for batch-registered subscription")
	}
}

// TestRestartRecoverySessionResume is the end-to-end durability test: the
// controller is killed while a notification is in flight, restarted on its
// persistence store, and must (a) restore every subscription's verdict and
// sequence number, and (b) let the client heal its notification gap with
// OpSessionResume — not by re-subscribing.
func TestRestartRecoverySessionResume(t *testing.T) {
	topo, err := topology.Linear(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	store, err := rvaas.OpenFileStore(filepath.Join(t.TempDir(), "subs.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	d, err := deploy.New(topo, deploy.Options{
		Persist:       store,
		AgentProtocol: wire.EnvelopeVersion,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	aps := topo.AccessPoints()
	ag := d.Agent(aps[0].ClientID)

	cons := []wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(aps[1].HostIP), Mask: 0xFFFFFFFF}}
	reach, err := ag.Subscribe(wire.QueryReachableDestinations, cons, "")
	if err != nil {
		t.Fatal(err)
	}
	way, err := ag.Subscribe(wire.QueryWaypointAvoidance, cons, "no-such-region")
	if err != nil {
		t.Fatal(err)
	}
	plen, err := ag.Subscribe(wire.QueryPathLength, cons, "100")
	if err != nil {
		t.Fatal(err)
	}
	_ = way

	// Establish a verdict history: violate (push seq 1, delivered) ...
	d.Provider.UninstallDestination(aps[1].HostIP)
	select {
	case n := <-reach.C:
		if n.Event != wire.NotifyViolation || n.Seq != 1 {
			t.Fatalf("unexpected first push: %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no violation push")
	}

	// ... then lose the recovery push: the client NIC goes away (frames
	// drop in flight), routing recovers, the controller pushes seq 2 into
	// the void, and is killed "mid-notification".
	d.Fabric.DetachHost(aps[0].Endpoint)
	if err := d.Provider.InstallDestinationTree(aps[1]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "recovery transition", func() bool {
		return d.RVaaS.SubscriptionStats().Recoveries >= 1
	})
	before := d.RVaaS.Subscriptions()
	if len(before) != 3 {
		t.Fatalf("want 3 subscriptions before the kill, have %d", len(before))
	}

	// Kill + restore.
	if err := d.RestartRVaaS(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restore re-verification", func() bool {
		st := d.RVaaS.SubscriptionStats()
		return st.Restored == 3 && st.Evaluated >= 3
	})
	after := d.RVaaS.Subscriptions()
	if len(after) != len(before) {
		t.Fatalf("restore lost subscriptions: %d -> %d", len(before), len(after))
	}
	for i := range before {
		b, a := before[i], after[i]
		if a.ID != b.ID || a.ClientID != b.ClientID || a.SessionID != b.SessionID ||
			a.Kind != b.Kind || a.Violated != b.Violated || a.Seq != b.Seq {
			t.Fatalf("subscription state did not survive the restart:\nbefore: %+v\nafter:  %+v", b, a)
		}
	}
	if ses := ag.SessionID(); after[0].SessionID != ses {
		t.Fatalf("restored session id %d != agent session %d", after[0].SessionID, ses)
	}

	// Client comes back online and the next transition exposes the gap
	// (its last delivered seq is 1; the next push is seq 3). Recovery must
	// resynchronize via OpSessionResume against the RESTORED subscription —
	// zero re-subscribes.
	if err := d.Fabric.AttachHost(aps[0].Endpoint, ag.HandlerFor(aps[0])); err != nil {
		t.Fatal(err)
	}
	regBefore := d.RVaaS.SubscriptionStats().Registered
	d.Provider.UninstallDestination(aps[1].HostIP)

	select {
	case n := <-reach.C:
		if n.Event != wire.NotifyViolation || n.Seq != 3 {
			t.Fatalf("unexpected post-restart push: %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no post-restart violation push")
	}
	select {
	case gap := <-ag.Gaps():
		if gap.Err != nil {
			t.Fatalf("gap recovery failed: %v", gap.Err)
		}
		if gap.NewSubID != gap.SubID || gap.SubID != reach.ID {
			t.Fatalf("gap recovery re-subscribed instead of resuming: %+v", gap)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gap recovery never completed")
	}
	st := d.RVaaS.SubscriptionStats()
	if st.SessionResumes == 0 {
		t.Fatal("gap recovery did not use OpSessionResume")
	}
	if st.Registered != regBefore {
		t.Fatalf("gap recovery re-subscribed (%d -> %d registrations)", regBefore, st.Registered)
	}
	if ag.SessionResumesSent() == 0 {
		t.Fatal("agent reports no session resumes")
	}
	// The resumed stream keeps flowing: one more transition is delivered
	// seamlessly at seq 4.
	if err := d.Provider.InstallDestinationTree(aps[1]); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-reach.C:
		if n.Event != wire.NotifyRecovery || n.Seq != 4 {
			t.Fatalf("unexpected post-resume push: %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no post-resume recovery push")
	}
	_ = plen
}

// TestE15Smoke runs the E15 experiment at reduced scale so CI exercises
// the full batch + restart pipeline on every commit.
func TestE15Smoke(t *testing.T) {
	nt := NamedTopology{Name: "linear-10", Build: func() (*topology.Topology, error) { return topology.Linear(10, nil) }}
	row, err := ProtocolScale(nt, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Speedup <= 1 {
		t.Fatalf("batch registration slower than sequential: %+v", row)
	}
	if row.Restored != 300 || row.Reverified < 300 {
		t.Fatalf("restart recovery incomplete: %+v", row)
	}
	if testing.Verbose() {
		fmt.Printf("e15 smoke: %+v\n", row)
	}
}
