package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/deploy"
	"repro/internal/rvaas"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Experiment E15: protocol v2 batch registration and durable restart
// recovery. A tenant bringing a fleet of standing invariants online over
// one-at-a-time exchanges pays, per invariant: a client signature, a frame
// round-trip through the fabric, server-side signature verification, a
// serialized initial evaluation, ack signing + attestation quote, and
// client-side ack verification. Protocol v2's OpBatchSubscribe registers
// the same population in ONE signed in-band exchange — one signature and
// one verification each way, with the initial evaluations fanned across
// the engine's worker pool. Both phases run fully end-to-end: a real v2
// agent injecting frames at its access point, interception rules, and
// signed replies verified against the attested enclave key.
//
// The second half measures the ROADMAP's persistence hole being closed:
// the controller is killed and relaunched on its subscription store, and
// we time how long until every invariant is restored, every switch
// re-attached, and every restored invariant re-verified against the
// freshly monitored network.

// ProtocolRow is one row of the E15 table.
type ProtocolRow struct {
	Topology string
	Subs     int
	// SequentialTotal is the wall time to register Subs invariants one
	// signed in-band exchange at a time; BatchTotal the wall time for one
	// signed in-band batch exchange covering all of them.
	SequentialTotal time.Duration
	BatchTotal      time.Duration
	// Speedup is SequentialTotal / BatchTotal.
	Speedup float64
	// RestartRestore is the wall time from killing the controller to a
	// fresh instance having restored the subscription set, re-attached to
	// every switch, and re-verified every restored invariant.
	RestartRestore time.Duration
	// Restored counts subscriptions rebuilt from the store; Reverified
	// counts invariant evaluations the recovery pass ran (>= Restored
	// means every restored invariant was re-checked).
	Restored   int
	Reverified int
}

// protocolItems builds n cheap neighbor-reachability invariants anchored
// at the first access point (one batch = one anchor). Short footprints
// keep the evaluation cost low, so the measurement isolates what E15 is
// about: the per-registration exchange overhead v2 amortizes.
func protocolItems(topo *topology.Topology, n int) ([]wire.BatchItem, error) {
	aps := topo.AccessPoints()
	if len(aps) < 2 {
		return nil, fmt.Errorf("experiments: need >= 2 access points, have %d", len(aps))
	}
	dst := aps[1]
	items := make([]wire.BatchItem, n)
	for i := range items {
		items[i] = wire.BatchItem{
			Kind: wire.QueryReachableDestinations,
			Constraints: []wire.FieldConstraint{
				{Field: wire.FieldIPDst, Value: uint64(dst.HostIP), Mask: 0xFFFFFFFF},
				// A varying second constraint keeps the invariants distinct
				// without changing the traversal cost.
				{Field: wire.FieldL4Dst, Value: uint64(1024 + i%40000), Mask: 0xFFFF},
			},
		}
	}
	return items, nil
}

// protocolDeploy builds one deployment with protocol v2 agents and a
// file-backed subscription store.
func protocolDeploy(nt NamedTopology) (*deploy.Deployment, *rvaas.FileStore, string, error) {
	topo, err := nt.Build()
	if err != nil {
		return nil, nil, "", err
	}
	dir, err := os.MkdirTemp("", "rvaas-e15-*")
	if err != nil {
		return nil, nil, "", err
	}
	store, err := rvaas.OpenFileStore(rvaas.DefaultStorePath(dir))
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, "", err
	}
	d, err := deploy.New(topo, deploy.Options{
		ManualRecheck: true,
		Persist:       store,
		AgentProtocol: wire.EnvelopeVersion,
	})
	if err != nil {
		store.Close()
		os.RemoveAll(dir)
		return nil, nil, "", err
	}
	return d, store, dir, nil
}

// ProtocolScale measures E15 on one topology with n invariants, averaging
// every phase over iters iterations (each registration iteration gets a
// fresh deployment; each recovery iteration kills and restores the live
// one, which re-restores from the same store).
func ProtocolScale(nt NamedTopology, n, iters int) (ProtocolRow, error) {
	if iters < 1 {
		iters = 1
	}
	row := ProtocolRow{Topology: nt.Name, Subs: n}

	// --- sequential in-band round-trips ----------------------------------
	var seqTotal time.Duration
	for it := 0; it < iters; it++ {
		err := func() error {
			d, store, dir, err := protocolDeploy(nt)
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			defer store.Close()
			defer d.Close()
			items, err := protocolItems(d.Topology, n)
			if err != nil {
				return err
			}
			ag := d.Agent(d.Topology.AccessPoints()[0].ClientID)
			start := time.Now()
			for i, item := range items {
				if _, err := ag.Subscribe(item.Kind, item.Constraints, item.Param); err != nil {
					return fmt.Errorf("experiments: sequential subscribe %d: %w", i, err)
				}
			}
			seqTotal += time.Since(start)
			return nil
		}()
		if err != nil {
			return row, err
		}
	}
	row.SequentialTotal = seqTotal / time.Duration(iters)

	// --- one signed in-band batch exchange, then kill + restore ----------
	var batchTotal, restoreTotal time.Duration
	for it := 0; it < iters; it++ {
		err := func() error {
			d, store, dir, err := protocolDeploy(nt)
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			defer store.Close()
			defer d.Close()
			items, err := protocolItems(d.Topology, n)
			if err != nil {
				return err
			}
			ag := d.Agent(d.Topology.AccessPoints()[0].ClientID)
			start := time.Now()
			subs, err := ag.BatchSubscribe(items)
			batchTotal += time.Since(start)
			if err != nil {
				return fmt.Errorf("experiments: batch subscribe: %w", err)
			}
			for i, sub := range subs {
				if sub == nil {
					return fmt.Errorf("experiments: batch item %d rejected", i)
				}
			}

			start = time.Now()
			if err := d.RestartRVaaS(); err != nil {
				return err
			}
			d.RVaaS.RecheckNow()
			restoreTotal += time.Since(start)
			st := d.RVaaS.SubscriptionStats()
			row.Restored = int(st.Restored)
			row.Reverified = int(st.Evaluated)
			if live := len(d.RVaaS.Subscriptions()); live != n {
				return fmt.Errorf("experiments: restart restored %d of %d subscriptions", live, n)
			}
			return nil
		}()
		if err != nil {
			return row, err
		}
	}
	row.BatchTotal = batchTotal / time.Duration(iters)
	row.RestartRestore = restoreTotal / time.Duration(iters)
	if row.BatchTotal > 0 {
		row.Speedup = float64(row.SequentialTotal) / float64(row.BatchTotal)
	}
	return row, nil
}

// ProtocolSweep runs E15 at the headline population plus a smaller control
// point.
func ProtocolSweep(iters int) ([]ProtocolRow, error) {
	cases := []struct {
		nt NamedTopology
		n  int
	}{
		{NamedTopology{Name: "linear-40", Build: func() (*topology.Topology, error) { return topology.Linear(40, nil) }}, 1000},
		{NamedTopology{Name: "linear-40", Build: func() (*topology.Topology, error) { return topology.Linear(40, nil) }}, 10000},
	}
	rows := make([]ProtocolRow, 0, len(cases))
	for _, cs := range cases {
		row, err := ProtocolScale(cs.nt, cs.n, iters)
		if err != nil {
			return nil, fmt.Errorf("e15 %s/%d: %w", cs.nt.Name, cs.n, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
