package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/deploy"
	"repro/internal/rvaas"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Experiment E13: recheck-engine scale-out. A controller serving ~10⁴
// standing invariants absorbs a single-switch configuration event; we
// measure how long one re-verification pass takes under
//
//   - the PR 2 engine (LegacyScan ablation): linear footprint scan over
//     every subscription, sequential evaluation, full isolation sweeps;
//   - the sharded engine at worker-pool parallelism 1: inverted-index
//     dirty dispatch and isolation cone caching, no evaluation fan-out;
//   - the sharded engine at full parallelism (GOMAXPROCS workers).
//
// The claims under test: the indexed engine re-checks ≥5× faster than the
// linear-scan engine at 10⁴ invariants, its evaluation count per pass is
// the dirty-bucket size (not the subscription count), and the worker pool
// scales the pass wall-time down with GOMAXPROCS.
//
// Both sharded configurations pin RecheckTuning.PerSwitchDispatch: E13
// isolates sharding + indexing + cone caching against the legacy scan at
// SWITCH granularity. The rule-delta refinement layered on top (PR 4,
// enabled by default in production) is measured separately by E14, which
// compares it against exactly the per-switch dirty bucket measured here.

// ScaleOutRow is one row of the E13 table.
type ScaleOutRow struct {
	Topology string
	Switches int
	// Subs is the registered invariant population; IsoSubs of them are
	// isolation invariants (every-edge-port sweeps, the expensive kind).
	Subs    int
	IsoSubs int
	// EvalsPerCheck is how many invariants one incremental pass actually
	// re-evaluated — the dirty-bucket size.
	EvalsPerCheck float64
	// IsoSweptPerCheck/IsoReusedPerCheck count per-injection-point
	// isolation traversals re-run versus served from the cone cache, per
	// incremental pass.
	IsoSweptPerCheck  float64
	IsoReusedPerCheck float64
	// LegacyMean is the mean pass latency of the PR 2 (linear scan,
	// sequential) engine; Parallel1Mean the sharded engine at one worker;
	// ShardedMean the sharded engine at Workers workers.
	LegacyMean    time.Duration
	Parallel1Mean time.Duration
	ShardedMean   time.Duration
	Workers       int
	// Speedup is LegacyMean / ShardedMean; PoolSpeedup is
	// Parallel1Mean / ShardedMean (the worker pool's contribution alone).
	Speedup     float64
	PoolSpeedup float64
}

// BuildRecheckPopulation registers a mixed standing-invariant population:
// total-iso cheap neighbor-reachability invariants spread round-robin over
// the adjacent access-point pairs (each footprint is a two-switch
// segment), plus iso isolation invariants spread over the access points
// (each sweeps every edge port). It returns the number registered.
func BuildRecheckPopulation(d *deploy.Deployment, topo *topology.Topology, total, iso int) (int, error) {
	aps := topo.AccessPoints()
	if len(aps) < 2 {
		return 0, fmt.Errorf("experiments: need >= 2 access points, have %d", len(aps))
	}
	if iso > total {
		iso = total
	}
	registered := 0
	for k := 0; k < total-iso; k++ {
		i := k % (len(aps) - 1)
		dst := aps[i+1]
		if _, err := d.RVaaS.Subscribe(aps[i].ClientID, wire.QueryReachableDestinations,
			[]wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(dst.HostIP), Mask: 0xFFFFFFFF}},
			"", aps[i].Endpoint); err != nil {
			return registered, err
		}
		registered++
	}
	// Isolation invariants skip the last access point: experiments churn the
	// last switch, and an isolation invariant anchored THERE has every
	// injection-point cone dirtied by the churn — one invariant whose
	// re-sweep is as large as a full evaluation, which would swamp the
	// dirty-bucket measurement the experiment is after.
	for k := 0; k < iso; k++ {
		ap := aps[k%(len(aps)-1)]
		if _, err := d.RVaaS.Subscribe(ap.ClientID, wire.QueryIsolation,
			[]wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(ap.HostIP), Mask: 0xFFFFFFFF}},
			"", ap.Endpoint); err != nil {
			return registered, err
		}
		registered++
	}
	return registered, nil
}

// ScaleOutRecheck measures E13 on one topology with the given population.
func ScaleOutRecheck(nt NamedTopology, totalSubs, isoSubs, iters int) (ScaleOutRow, error) {
	if iters < 1 {
		iters = 1
	}
	row := ScaleOutRow{Topology: nt.Name, Workers: runtime.GOMAXPROCS(0)}
	topo, err := nt.Build()
	if err != nil {
		return row, err
	}
	d, err := deploy.New(topo, deploy.Options{SkipAgents: true, ManualRecheck: true})
	if err != nil {
		return row, err
	}
	defer d.Close()
	row.Switches = len(topo.Switches())

	n, err := BuildRecheckPopulation(d, topo, totalSubs, isoSubs)
	if err != nil {
		return row, err
	}
	row.Subs, row.IsoSubs = n, isoSubs

	// The churned switch: an end of the topology, so the dirty bucket is a
	// small slice of the population — the steady-state case of a targeted
	// single-switch reconfiguration.
	sws := topo.Switches()
	victim := sws[len(sws)-1]
	churn := 0
	settle := func() error {
		churn++
		want := d.RVaaS.SnapshotID() + 2
		e := subscriptionChurnEntry(churn)
		d.Fabric.Switch(victim).InstallDirect(e)
		d.Fabric.Switch(victim).RemoveDirect(e)
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if d.RVaaS.SnapshotID() >= want {
				return nil
			}
			time.Sleep(50 * time.Microsecond)
		}
		return fmt.Errorf("experiments: churn events not absorbed on %s", nt.Name)
	}

	// Warm up: populate footprints, cones and the compile-cache baseline.
	if err := settle(); err != nil {
		return row, err
	}
	d.RVaaS.RecheckNow()

	measure := func(t rvaas.RecheckTuning) (time.Duration, rvaas.SubscriptionStats, error) {
		d.RVaaS.SetRecheckTuning(t)
		before := d.RVaaS.SubscriptionStats()
		var total time.Duration
		for i := 0; i < iters; i++ {
			if err := settle(); err != nil {
				return 0, before, err
			}
			start := time.Now()
			d.RVaaS.RecheckNow()
			total += time.Since(start)
		}
		after := d.RVaaS.SubscriptionStats()
		delta := rvaas.SubscriptionStats{
			Rechecks:        after.Rechecks - before.Rechecks,
			Evaluated:       after.Evaluated - before.Evaluated,
			IsoPointsSwept:  after.IsoPointsSwept - before.IsoPointsSwept,
			IsoPointsReused: after.IsoPointsReused - before.IsoPointsReused,
		}
		return total / time.Duration(iters), delta, nil
	}

	legacyMean, _, err := measure(rvaas.RecheckTuning{LegacyScan: true})
	if err != nil {
		return row, err
	}
	row.LegacyMean = legacyMean
	p1Mean, _, err := measure(rvaas.RecheckTuning{Parallelism: 1, PerSwitchDispatch: true})
	if err != nil {
		return row, err
	}
	row.Parallel1Mean = p1Mean
	shardedMean, delta, err := measure(rvaas.RecheckTuning{PerSwitchDispatch: true})
	if err != nil {
		return row, err
	}
	row.ShardedMean = shardedMean
	d.RVaaS.SetRecheckTuning(rvaas.RecheckTuning{})

	if delta.Rechecks > 0 {
		checks := float64(delta.Rechecks)
		row.EvalsPerCheck = float64(delta.Evaluated) / checks
		row.IsoSweptPerCheck = float64(delta.IsoPointsSwept) / checks
		row.IsoReusedPerCheck = float64(delta.IsoPointsReused) / checks
	}
	if row.ShardedMean > 0 {
		row.Speedup = float64(row.LegacyMean) / float64(row.ShardedMean)
		row.PoolSpeedup = float64(row.Parallel1Mean) / float64(row.ShardedMean)
	}
	return row, nil
}

// ScaleOutSweep runs E13 at the headline population (10⁴ invariants on
// linear-40) plus a smaller control point.
func ScaleOutSweep(iters int) ([]ScaleOutRow, error) {
	cases := []struct {
		nt    NamedTopology
		total int
		iso   int
	}{
		{NamedTopology{Name: "linear-40", Build: func() (*topology.Topology, error) { return topology.Linear(40, nil) }}, 1000, 20},
		{NamedTopology{Name: "linear-40", Build: func() (*topology.Topology, error) { return topology.Linear(40, nil) }}, 10000, 40},
	}
	rows := make([]ScaleOutRow, 0, len(cases))
	for _, cs := range cases {
		row, err := ScaleOutRecheck(cs.nt, cs.total, cs.iso, iters)
		if err != nil {
			return nil, fmt.Errorf("e13 %s/%d: %w", cs.nt.Name, cs.total, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
