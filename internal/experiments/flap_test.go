package experiments

import (
	"testing"
	"time"
)

// TestFlapDetectionProbability is experiment E5: fixed-phase polling never
// catches a schedule-aware flap attacker, randomized polling catches it at
// roughly its duty cycle.
func TestFlapDetectionProbability(t *testing.T) {
	if testing.Short() {
		t.Skip("flap sweep is expensive")
	}
	const (
		pollInterval = 10 * time.Second
		horizon      = 400 * time.Second // ~40 nominal polls
	)
	// Attacker active 40% of every interval, aligned to nominal polls.
	window := 4 * time.Second

	fixed, err := FlapDetection(false, window, pollInterval, horizon, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Detected {
		t.Errorf("fixed polling detected a schedule-aware attacker (rate %.2f)", fixed.DetectionRate)
	}

	random, err := FlapDetection(true, window, pollInterval, horizon, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !random.Detected {
		t.Error("randomized polling never detected the attack")
	}
	// Expect detection rate in the rough vicinity of the duty cycle (0.4);
	// allow a wide band since the horizon is short.
	if random.DetectionRate < 0.1 || random.DetectionRate > 0.8 {
		t.Errorf("randomized detection rate %.2f outside plausible band", random.DetectionRate)
	}
	t.Logf("fixed rate=%.2f randomized rate=%.2f (duty cycle 0.4)",
		fixed.DetectionRate, random.DetectionRate)
}

func TestFlapDetectionValidatesWindow(t *testing.T) {
	_, err := FlapDetection(true, 20*time.Second, 10*time.Second, time.Minute, 1)
	if err == nil {
		t.Error("window larger than interval accepted")
	}
}

func TestFlapSweepMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("flap sweep is expensive")
	}
	rows, err := FlapSweep([]float64{0.1, 0.5, 0.9}, 10*time.Second, 300*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Randomized detection should grow with the attacker's duty cycle.
	if !(rows[2].RandomRate > rows[0].RandomRate) {
		t.Errorf("randomized rate not increasing: %+v", rows)
	}
	// Fixed polling stays blind regardless of duty cycle (<1 windows).
	for _, r := range rows {
		if r.FixedRate != 0 {
			t.Errorf("fixed polling caught flaps at fraction %.1f", r.WindowFraction)
		}
	}
}
