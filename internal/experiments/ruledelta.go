package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/deploy"
	"repro/internal/openflow"
	"repro/internal/rvaas"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Experiment E14: rule-delta (header-space) dispatch versus per-switch
// dirty dispatch. The worst case for switch-granularity rechecking is a
// hub topology: every invariant's path crosses the hub, so ANY rule change
// there — even one touching traffic no invariant cares about — lands the
// entire population in the dirty bucket. The PR 4 engine diffs old vs. new
// flow tables at commit time, extracts the header-space delta of the
// changed rules (minus higher-priority shadowing), and re-runs only the
// invariants whose recorded traversal slice at the hub overlaps it.
//
// The scenario under test is the ROADMAP's motivating one: a star network,
// 10⁴ standing invariants (every one crossing the hub), and a single
// low-priority shadow-free rule insert on the hub matching a destination
// no invariant's scope contains. Per-switch dispatch re-evaluates all 10⁴;
// rule-delta dispatch re-evaluates none — and the differential test
// (internal/rvaas TestDeltaDispatchDifferential plus the in-run check
// below) pins that the verdicts are identical either way.

// RuleDeltaRow is one row of the E14 table.
type RuleDeltaRow struct {
	Topology string
	Switches int
	// Subs is the registered invariant population; IsoSubs of them are
	// isolation invariants.
	Subs    int
	IsoSubs int
	// PerSwitchEvals is evals-per-check under forced per-switch dispatch —
	// the dirty-bucket size (≈ the whole population on a hub topology).
	PerSwitchEvals float64
	// DeltaEvals is evals-per-check under rule-delta dispatch; DeltaSkipped
	// counts the bucketed invariants the overlap filter discarded per
	// check.
	DeltaEvals   float64
	DeltaSkipped float64
	// PerSwitchMean/DeltaMean are the mean incremental pass latencies.
	PerSwitchMean time.Duration
	DeltaMean     time.Duration
	// Speedup is PerSwitchMean / DeltaMean.
	Speedup float64
	Workers int
}

// hubChurnEntry is a low-priority rule matching a destination outside
// every invariant's scope. It is shadow-free (no higher-priority rule
// covers its match — the provider's routing rules match other
// destinations), so its delta is its full match space; that space simply
// overlaps no invariant's traversal slice.
func hubChurnEntry(i int) openflow.FlowEntry {
	return openflow.FlowEntry{
		Priority: 2, // below the provider's routing rules (priority 100)
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: uint64(0xCB007200 + i%97), Mask: 0xFFFFFFFF},
		}},
		Actions: []openflow.Action{openflow.Output(1)},
		Cookie:  uint64(0xE1400000 + i),
	}
}

// RuleDeltaRecheck measures E14 on one topology: the hub (first switch) is
// churned with a single low-priority insert+remove per iteration and the
// incremental pass is timed under per-switch versus rule-delta dispatch.
func RuleDeltaRecheck(nt NamedTopology, totalSubs, isoSubs, iters int) (RuleDeltaRow, error) {
	if iters < 1 {
		iters = 1
	}
	row := RuleDeltaRow{Topology: nt.Name, Workers: runtime.GOMAXPROCS(0)}
	topo, err := nt.Build()
	if err != nil {
		return row, err
	}
	d, err := deploy.New(topo, deploy.Options{SkipAgents: true, ManualRecheck: true})
	if err != nil {
		return row, err
	}
	defer d.Close()
	row.Switches = len(topo.Switches())

	n, err := BuildRecheckPopulation(d, topo, totalSubs, isoSubs)
	if err != nil {
		return row, err
	}
	row.Subs, row.IsoSubs = n, isoSubs

	// The churned switch is the hub: every invariant's footprint contains
	// it, so the per-switch dirty bucket is the whole population.
	hub := topo.Switches()[0]
	churn := 0
	settle := func() error {
		churn++
		want := d.RVaaS.SnapshotID() + 2
		e := hubChurnEntry(churn)
		d.Fabric.Switch(hub).InstallDirect(e)
		d.Fabric.Switch(hub).RemoveDirect(e)
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if d.RVaaS.SnapshotID() >= want {
				return nil
			}
			time.Sleep(50 * time.Microsecond)
		}
		return fmt.Errorf("experiments: hub churn events not absorbed on %s", nt.Name)
	}

	// Warm up: populate footprints, cones and the compile-cache baseline.
	if err := settle(); err != nil {
		return row, err
	}
	d.RVaaS.RecheckNow()

	measure := func(t rvaas.RecheckTuning) (time.Duration, rvaas.SubscriptionStats, error) {
		d.RVaaS.SetRecheckTuning(t)
		before := d.RVaaS.SubscriptionStats()
		var total time.Duration
		for i := 0; i < iters; i++ {
			if err := settle(); err != nil {
				return 0, before, err
			}
			start := time.Now()
			d.RVaaS.RecheckNow()
			total += time.Since(start)
		}
		after := d.RVaaS.SubscriptionStats()
		delta := rvaas.SubscriptionStats{
			Rechecks:     after.Rechecks - before.Rechecks,
			Evaluated:    after.Evaluated - before.Evaluated,
			DeltaSkipped: after.DeltaSkipped - before.DeltaSkipped,
			Violations:   after.Violations - before.Violations,
			Recoveries:   after.Recoveries - before.Recoveries,
		}
		return total / time.Duration(iters), delta, nil
	}

	verdictsBefore := verdictSummary(d.RVaaS)
	psMean, psDelta, err := measure(rvaas.RecheckTuning{PerSwitchDispatch: true})
	if err != nil {
		return row, err
	}
	row.PerSwitchMean = psMean
	if psDelta.Rechecks > 0 {
		row.PerSwitchEvals = float64(psDelta.Evaluated) / float64(psDelta.Rechecks)
	}

	dMean, dDelta, err := measure(rvaas.RecheckTuning{})
	if err != nil {
		return row, err
	}
	row.DeltaMean = dMean
	if dDelta.Rechecks > 0 {
		row.DeltaEvals = float64(dDelta.Evaluated) / float64(dDelta.Rechecks)
		row.DeltaSkipped = float64(dDelta.DeltaSkipped) / float64(dDelta.Rechecks)
	}
	d.RVaaS.SetRecheckTuning(rvaas.RecheckTuning{})
	if row.DeltaMean > 0 {
		row.Speedup = float64(row.PerSwitchMean) / float64(row.DeltaMean)
	}

	// Differential guard: the churn is verdict-neutral and both dispatch
	// modes ran over it — no verdict may have flipped, and the final
	// verdict set must match the warmed-up baseline exactly.
	if psDelta.Violations+psDelta.Recoveries+dDelta.Violations+dDelta.Recoveries != 0 {
		return row, fmt.Errorf("experiments: e14 churn flipped verdicts (per-switch %d/%d, delta %d/%d)",
			psDelta.Violations, psDelta.Recoveries, dDelta.Violations, dDelta.Recoveries)
	}
	if got := verdictSummary(d.RVaaS); got != verdictsBefore {
		return row, fmt.Errorf("experiments: e14 verdict summary diverged: %s != %s", got, verdictsBefore)
	}
	return row, nil
}

// verdictSummary folds every subscription's verdict into a comparable
// string (count + violated ids).
func verdictSummary(c *rvaas.Controller) string {
	subs := c.Subscriptions()
	violated := 0
	for _, s := range subs {
		if s.Violated {
			violated++
		}
	}
	return fmt.Sprintf("%d subs / %d violated", len(subs), violated)
}

// RuleDeltaSweep runs E14 at the headline population (10⁴ invariants on a
// 40-leaf star) plus a smaller control point.
func RuleDeltaSweep(iters int) ([]RuleDeltaRow, error) {
	cases := []struct {
		nt    NamedTopology
		total int
		iso   int
	}{
		{NamedTopology{Name: "star-40", Build: func() (*topology.Topology, error) { return topology.Star(40) }}, 1000, 20},
		{NamedTopology{Name: "star-40", Build: func() (*topology.Topology, error) { return topology.Star(40) }}, 10000, 40},
	}
	rows := make([]RuleDeltaRow, 0, len(cases))
	for _, cs := range cases {
		row, err := RuleDeltaRecheck(cs.nt, cs.total, cs.iso, iters)
		if err != nil {
			return nil, fmt.Errorf("e14 %s/%d: %w", cs.nt.Name, cs.total, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
