package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/deploy"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Experiment E18: verifier fleet partitioning. The standing-invariant
// engine runs as N verifier instances behind a fleet router; invariants
// place by anchor-switch rendezvous ("footprint", the default) or by
// uniform id hash ("rendezvous", the locality-free ablation). Each arm
// registers the same invariant population on a multi-region fat WAN (a
// host, hence an anchor, on every switch), absorbs the same single-switch
// churn sequence, and reports
//
//   - registration (initial-evaluation) wall time and the mean
//     incremental re-check pass after a neutral single-switch change;
//   - the confinement ratio: instances visited per indexed pass. With
//     footprint placement a single-switch event reaches only the
//     instances owning an affected index bucket; rendezvous placement
//     scatters every bucket across the whole fleet;
//   - a differential verdict fingerprint against the N=1 baseline, fed by
//     a blackhole install/remove cycle that flips real verdicts:
//     per-subscription final (seq, violated, detail) plus the ordered
//     violation-log transition stream. The fleets must match the single
//     engine byte-for-byte — partitioning is a performance layout, never
//     a semantics change.

// FleetRow is one arm of the E18 table.
type FleetRow struct {
	Topology string
	Switches int
	Subs     int
	// Instances/Placement shape the fleet under test.
	Instances int
	Placement string
	// RegisterTotal is the wall time registering (and initially
	// evaluating) the whole population; RecheckMean the mean
	// single-switch incremental pass.
	RegisterTotal time.Duration
	RecheckMean   time.Duration
	// TouchedPerPass is instances visited per indexed pass
	// (InstanceDispatches / FleetPasses over the measured passes).
	TouchedPerPass float64
	// VerdictsMatch reports the differential check against the N=1
	// baseline arm (vacuously true on the baseline itself).
	VerdictsMatch bool
	// Violations counts verdict transitions to violated over the run.
	Violations uint64
}

// FleetWAN builds the E18 fabric: regions of chained switches joined by
// inter-region trunks, with a client host on every switch — the "fat"
// access layer that spreads invariant anchors across the whole fabric.
// Ports: 1 left, 2 right (intra-region chain), 3 trunk-in, 4 trunk-out,
// 5 host.
func FleetWAN(regionNames []topology.Region, perRegion int) (*topology.Topology, error) {
	if len(regionNames) < 2 || perRegion < 2 {
		return nil, fmt.Errorf("experiments: fleet wan needs >= 2 regions and >= 2 switches each")
	}
	t := topology.New()
	id := func(region, i int) topology.SwitchID { return topology.SwitchID(region*1000 + i + 1) }
	client := uint64(0)
	for ri, name := range regionNames {
		for i := 0; i < perRegion; i++ {
			sw := id(ri, i)
			t.AddSwitch(sw, 5)
			t.SetRegion(sw, name)
			client++
			mac, ip := topology.HostAddr(sw, 0)
			err := t.AddAccessPoint(topology.AccessPoint{
				Endpoint: topology.Endpoint{Switch: sw, Port: 5},
				ClientID: client, HostMAC: mac, HostIP: ip,
			})
			if err != nil {
				return nil, err
			}
		}
		for i := 0; i+1 < perRegion; i++ {
			err := t.AddLink(topology.Link{
				A:             topology.Endpoint{Switch: id(ri, i), Port: 2},
				B:             topology.Endpoint{Switch: id(ri, i+1), Port: 1},
				LatencyMicros: 50,
			})
			if err != nil {
				return nil, err
			}
		}
	}
	for ri := 0; ri+1 < len(regionNames); ri++ {
		err := t.AddLink(topology.Link{
			A:             topology.Endpoint{Switch: id(ri, perRegion-1), Port: 4},
			B:             topology.Endpoint{Switch: id(ri+1, 0), Port: 3},
			LatencyMicros: 5000,
		})
		if err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// fleetFingerprint serializes every subscription's verdict state and
// transition history into one comparable string.
func fleetFingerprint(d *deploy.Deployment) string {
	var b strings.Builder
	for _, sub := range d.RVaaS.Subscriptions() {
		fmt.Fprintf(&b, "sub=%d client=%d kind=%s seq=%d violated=%v detail=%q\n",
			sub.ID, sub.ClientID, sub.Kind, sub.Seq, sub.Violated, sub.Detail)
		recs, _ := d.RVaaS.SubscriptionHistory(sub.ID)
		for _, r := range recs {
			fmt.Fprintf(&b, "  %s snapshot=%d detail=%q\n", r.Event, r.SnapshotID, r.Detail)
		}
	}
	return b.String()
}

// fleetArm runs one fleet configuration: deploy, register the population,
// measure iters neutral churn passes on a single transit switch (dispatch
// cost + confinement), then drive iters blackhole install/remove cycles
// that flip real verdicts, and fingerprint the result.
func fleetArm(nt NamedTopology, instances int, placement string, totalSubs, isoSubs, iters int) (FleetRow, string, error) {
	row := FleetRow{Topology: nt.Name, Instances: instances, Placement: placement}
	topo, err := nt.Build()
	if err != nil {
		return row, "", err
	}
	d, err := deploy.New(topo, deploy.Options{
		SkipAgents:        true,
		ManualRecheck:     true,
		Verifiers:         instances,
		VerifierPlacement: placement,
	})
	if err != nil {
		return row, "", err
	}
	defer d.Close()
	row.Switches = len(topo.Switches())

	start := time.Now()
	n, err := BuildRecheckPopulation(d, topo, totalSubs, isoSubs)
	if err != nil {
		return row, "", err
	}
	row.RegisterTotal = time.Since(start)
	row.Subs = n

	// The churned switch: a mid-chain transit switch of the last region —
	// inside real footprints (its neighbors' adjacent-pair invariants
	// cross it) but far from the bulk of the population, so the dirty
	// bucket is a proper slice.
	aps := topo.AccessPoints()
	victimAP := aps[len(aps)-2]
	victim := victimAP.Endpoint.Switch
	// Quiesce: let any still-in-flight bring-up or registration events
	// land before baselining, so the absolute event counting below is
	// exact.
	stable := d.RVaaS.SnapshotID()
	for settleDeadline := time.Now().Add(2 * time.Second); time.Now().Before(settleDeadline); {
		time.Sleep(2 * time.Millisecond)
		if now := d.RVaaS.SnapshotID(); now != stable {
			stable = now
			continue
		}
		break
	}
	// Each settle emits exactly one flow event on the victim's ordered
	// channel, so after k settles the snapshot is exactly base+k — waiting
	// on the absolute count (not current+1, which a still-in-flight prior
	// event could satisfy early) keeps the event/recheck interleaving, and
	// with it every transition's SnapshotID, identical across arms.
	base := d.RVaaS.SnapshotID()
	churn := 0
	settle := func(e openflow.FlowEntry, install bool) error {
		churn++
		want := base + uint64(churn)
		if install {
			d.Fabric.Switch(victim).InstallDirect(e)
		} else {
			d.Fabric.Switch(victim).RemoveDirect(e)
		}
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if d.RVaaS.SnapshotID() >= want {
				return nil
			}
			time.Sleep(50 * time.Microsecond)
		}
		return fmt.Errorf("experiments: churn event %d not absorbed on %s", churn, nt.Name)
	}
	neutral := subscriptionChurnEntry(1)

	// Warm up footprints and cones with one full neutral cycle.
	for _, install := range []bool{true, false} {
		if err := settle(neutral, install); err != nil {
			return row, "", err
		}
		d.RVaaS.RecheckNow()
	}

	// Phase 1: neutral churn — pure dispatch cost and confinement.
	before := d.RVaaS.SubscriptionStats()
	var total time.Duration
	for i := 0; i < iters; i++ {
		for _, install := range []bool{true, false} {
			if err := settle(neutral, install); err != nil {
				return row, "", err
			}
			t0 := time.Now()
			d.RVaaS.RecheckNow()
			total += time.Since(t0)
		}
	}
	after := d.RVaaS.SubscriptionStats()
	row.RecheckMean = total / time.Duration(2*iters)
	if passes := after.FleetPasses - before.FleetPasses; passes > 0 {
		row.TouchedPerPass = float64(after.InstanceDispatches-before.InstanceDispatches) / float64(passes)
	}

	// Phase 2: verdict churn — blackhole the victim's own host so the
	// invariants whose footprint crosses it flip violated and back,
	// exercising the merged verdict stream the fingerprint compares.
	blackhole := openflow.FlowEntry{
		Priority: 3200,
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: uint64(victimAP.HostIP), Mask: 0xFFFFFFFF},
		}},
		Cookie: 0xB1AC_0018,
	}
	for i := 0; i < iters; i++ {
		for _, install := range []bool{true, false} {
			if err := settle(blackhole, install); err != nil {
				return row, "", err
			}
			d.RVaaS.RecheckNow()
		}
	}
	row.Violations = d.RVaaS.SubscriptionStats().Violations

	return row, fleetFingerprint(d), nil
}

// FleetSweep runs E18: the N=1 baseline, the N=4 footprint fleet, and the
// N=4 rendezvous ablation, all over the same fat WAN, population and
// churn sequence. Every fleet arm is differentially checked against the
// baseline fingerprint.
func FleetSweep(totalSubs, isoSubs, iters int) ([]FleetRow, error) {
	if iters < 1 {
		iters = 1
	}
	nt := NamedTopology{
		Name: "fatwan-4x6",
		Build: func() (*topology.Topology, error) {
			return FleetWAN([]topology.Region{"us", "eu", "ap", "sa"}, 6)
		},
	}
	arms := []struct {
		instances int
		placement string
	}{
		{1, "footprint"},
		{4, "footprint"},
		{4, "rendezvous"},
	}
	rows := make([]FleetRow, 0, len(arms))
	baseline := ""
	for _, arm := range arms {
		row, fp, err := fleetArm(nt, arm.instances, arm.placement, totalSubs, isoSubs, iters)
		if err != nil {
			return nil, fmt.Errorf("e18 n=%d/%s: %w", arm.instances, arm.placement, err)
		}
		if baseline == "" {
			baseline = fp
			row.VerdictsMatch = true
		} else {
			row.VerdictsMatch = fp == baseline
		}
		rows = append(rows, row)
	}
	return rows, nil
}
