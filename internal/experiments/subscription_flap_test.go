package experiments

import (
	"sync"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/history"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

// flapDrop is a high-priority no-action (drop) rule severing reachability
// for one destination.
func flapDrop(dstIP uint32) openflow.FlowEntry {
	return openflow.FlowEntry{
		Priority: 3000,
		Match: openflow.Match{Fields: []openflow.FieldMatch{
			{Field: wire.FieldIPDst, Value: uint64(dstIP), Mask: 0xFFFFFFFF},
		}},
		Cookie: 0xF1A9_0001,
	}
}

// pollStorm hammers the controller with parallel active polls and manual
// rechecks — the adversarial interleaving that must NOT duplicate verdict
// transitions.
func pollStorm(t *testing.T, d *deploy.Deployment, rounds int) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := d.RVaaS.PollAll(2 * time.Second); err != nil {
					t.Error(err)
					return
				}
				d.RVaaS.RecheckNow()
			}
		}()
	}
	wg.Wait()
}

func waitForRecords(t *testing.T, d *deploy.Deployment, subID uint64, want int) []history.Violation {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		recs := d.RVaaS.ViolationLog().PerSub(subID)
		if len(recs) >= want {
			return recs
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d violation-log records of sub %d (have %+v)",
		want, subID, d.RVaaS.ViolationLog().PerSub(subID))
	return nil
}

// TestSubscriptionFlapStorm is the flap-storm scenario: a standing
// reachability invariant is violated and then restored while the
// controller is bombarded with parallel active polls and concurrent manual
// rechecks. The serialized re-verification pass must record exactly ONE
// violation and ONE recovery — duplicate notifications would train clients
// to ignore alarms.
func TestSubscriptionFlapStorm(t *testing.T) {
	topo, err := topology.Linear(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(topo, deploy.Options{SkipAgents: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	aps := topo.AccessPoints()
	dst := aps[2]
	subID, err := d.RVaaS.Subscribe(aps[0].ClientID, wire.QueryReachableDestinations,
		[]wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(dst.HostIP), Mask: 0xFFFFFFFF}},
		"", aps[0].Endpoint)
	if err != nil {
		t.Fatal(err)
	}
	if recs := d.RVaaS.ViolationLog().PerSub(subID); len(recs) != 0 {
		t.Fatalf("invariant violated before the attack: %+v", recs)
	}

	// Violate: short-term reconfiguration on the middle switch, caught by
	// the passive event stream between any two client polls.
	mid := topo.Switches()[1]
	drop := flapDrop(dst.HostIP)
	d.Fabric.Switch(mid).InstallDirect(drop)
	pollStorm(t, d, 8)
	recs := waitForRecords(t, d, subID, 1)
	if recs[0].Event != history.EventViolation {
		t.Fatalf("first record = %+v, want violation", recs[0])
	}

	// Restore and storm again.
	d.Fabric.Switch(mid).RemoveDirect(drop)
	pollStorm(t, d, 8)
	recs = waitForRecords(t, d, subID, 2)

	if len(recs) != 2 {
		t.Fatalf("records = %+v, want exactly [violation recovery]", recs)
	}
	if recs[0].Event != history.EventViolation || recs[1].Event != history.EventRecovery {
		t.Fatalf("record order = %+v", recs)
	}
	st := d.RVaaS.SubscriptionStats()
	if st.Violations != 1 || st.Recoveries != 1 {
		t.Errorf("transition counters = %+v, want exactly one of each", st)
	}
	if st.NotificationsSent != 2 {
		t.Errorf("notifications sent = %d, want 2 (one per transition)", st.NotificationsSent)
	}
}

// TestSubscriptionRecheckExperiment smoke-runs the E12 driver on a small
// topology and sanity-checks the incremental engine actually skipped work.
func TestSubscriptionRecheckExperiment(t *testing.T) {
	row, err := SubscriptionRecheck(NamedTopology{
		Name:  "linear-8",
		Build: func() (*topology.Topology, error) { return topology.Linear(8, nil) },
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.Subs != 21 {
		t.Fatalf("subs = %d, want 21 (3 kinds x 7 pairs)", row.Subs)
	}
	if row.IncrementalMean <= 0 || row.NaiveMean <= 0 {
		t.Fatalf("degenerate timings: %+v", row)
	}
	// After a single-switch change only a fraction of invariants may
	// re-evaluate (the count check is the non-flaky form of E12's latency
	// claim).
	if row.EvalsPerCheck >= float64(row.Subs) {
		t.Errorf("incremental recheck evaluated %.1f of %d invariants — not incremental",
			row.EvalsPerCheck, row.Subs)
	}
}
