// Package experiments implements the paper-reproduction experiments listed
// in DESIGN.md (E1..E10). Each experiment is a plain function returning
// structured results so it can be driven by unit tests, the benchmark
// harness in bench_test.go, and cmd/benchharness alike.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/controlplane"
	"repro/internal/deploy"
	"repro/internal/topology"
	"repro/internal/wire"
)

// DetectionResult is one cell of the E4 detection matrix.
type DetectionResult struct {
	Attack   string
	Detector string
	Detected bool
	Err      error
}

// rvaasCheck verifies an attack through RVaaS queries; it may capture clean
// reference state when built.
type rvaasCheck func(d *deploy.Deployment) (bool, error)

// scenario couples an attack with the topology it needs and the RVaaS query
// that should expose it.
type scenario struct {
	name  string
	build func() (*deploy.Deployment, *baseline.Env, controlplane.Attack, rvaasCheck, error)
	// execute performs the attack phase; default is launch + poll.
	execute func(d *deploy.Deployment, atk controlplane.Attack) error
}

func defaultExecute(d *deploy.Deployment, atk controlplane.Attack) error {
	if err := atk.Launch(d.Provider); err != nil {
		return err
	}
	return d.RVaaS.PollAll(2 * time.Second)
}

func newEnv(d *deploy.Deployment, src, dst topology.AccessPoint, lying bool) *baseline.Env {
	return &baseline.Env{
		Fabric:   d.Fabric,
		Topology: d.Topology,
		Provider: d.Provider,
		SrcAP:    src,
		DstAP:    dst,
		Lying:    lying,
	}
}

func ipConstraint(ip uint32) []wire.FieldConstraint {
	return []wire.FieldConstraint{{Field: wire.FieldIPDst, Value: uint64(ip), Mask: 0xFFFFFFFF}}
}

// scenarios builds the six attack scenarios of the matrix.
func scenarios(lying bool) []scenario {
	return []scenario{
		{
			name: "traffic-diversion",
			build: func() (*deploy.Deployment, *baseline.Env, controlplane.Attack, rvaasCheck, error) {
				topo, err := topology.Grid(3, 3)
				if err != nil {
					return nil, nil, nil, nil, err
				}
				d, err := deploy.New(topo, deploy.Options{})
				if err != nil {
					return nil, nil, nil, nil, err
				}
				aps := topo.AccessPoints()
				src, victim := aps[0], aps[1]
				atk := &controlplane.TrafficDiversion{VictimIP: victim.HostIP, Detour: 9}
				agent := d.Agent(src.ClientID)
				// Clean reference: the max path length toward the victim.
				clean, err := agent.Query(wire.QueryPathLength, ipConstraint(victim.HostIP), "1000")
				if err != nil {
					d.Close()
					return nil, nil, nil, nil, err
				}
				bound := clean.Detail
				check := func(d *deploy.Deployment) (bool, error) {
					resp, err := agent.Query(wire.QueryPathLength, ipConstraint(victim.HostIP), bound)
					if err != nil {
						return false, err
					}
					return resp.Status == wire.StatusViolation, nil
				}
				return d, newEnv(d, src, victim, lying), atk, check, nil
			},
		},
		{
			name: "exfiltration",
			build: func() (*deploy.Deployment, *baseline.Env, controlplane.Attack, rvaasCheck, error) {
				topo, err := topology.Grid(2, 2)
				if err != nil {
					return nil, nil, nil, nil, err
				}
				d, err := deploy.New(topo, deploy.Options{})
				if err != nil {
					return nil, nil, nil, nil, err
				}
				aps := topo.AccessPoints()
				src, victim := aps[0], aps[3]
				tap, err := freeEdgePort(topo, victim.Endpoint.Switch)
				if err != nil {
					d.Close()
					return nil, nil, nil, nil, err
				}
				atk := &controlplane.Exfiltration{VictimIP: victim.HostIP, Tap: tap}
				agent := d.Agent(src.ClientID)
				clean, err := agent.Query(wire.QueryReachableDestinations, ipConstraint(victim.HostIP), "")
				if err != nil {
					d.Close()
					return nil, nil, nil, nil, err
				}
				cleanCount := len(clean.Endpoints)
				check := func(d *deploy.Deployment) (bool, error) {
					resp, err := agent.Query(wire.QueryReachableDestinations, ipConstraint(victim.HostIP), "")
					if err != nil {
						return false, err
					}
					return len(resp.Endpoints) != cleanCount, nil
				}
				return d, newEnv(d, src, victim, lying), atk, check, nil
			},
		},
		{
			name: "join-attack",
			build: func() (*deploy.Deployment, *baseline.Env, controlplane.Attack, rvaasCheck, error) {
				topo, err := topology.Linear(4, []uint64{1, 1, 2, 2})
				if err != nil {
					return nil, nil, nil, nil, err
				}
				d, err := deploy.New(topo, deploy.Options{TenantRouting: true})
				if err != nil {
					return nil, nil, nil, nil, err
				}
				aps := topo.AccessPoints()
				victim := aps[0]
				atk := &controlplane.JoinAttack{
					VictimIP:   victim.HostIP,
					SecretAP:   aps[2].Endpoint,
					AttackerIP: wire.IPv4(172, 16, 6, 6),
				}
				agent := d.Agent(victim.ClientID)
				check := func(d *deploy.Deployment) (bool, error) {
					resp, err := agent.Query(wire.QueryIsolation, ipConstraint(victim.HostIP), "")
					if err != nil {
						return false, err
					}
					return resp.Status == wire.StatusViolation, nil
				}
				// The baseline flow observes client 1's legitimate partner
				// traffic (aps[1] -> aps[0]); the join attack does not
				// change it, which is exactly why path-based baselines are
				// blind to join attacks.
				return d, newEnv(d, aps[1], victim, lying), atk, check, nil
			},
		},
		{
			name: "geo-violation",
			build: func() (*deploy.Deployment, *baseline.Env, controlplane.Attack, rvaasCheck, error) {
				topo, err := topology.MultiRegionWAN([]topology.Region{"eu-west", "offshore", "us-east"}, 3)
				if err != nil {
					return nil, nil, nil, nil, err
				}
				d, err := deploy.New(topo, deploy.Options{})
				if err != nil {
					return nil, nil, nil, nil, err
				}
				var src, dst topology.AccessPoint
				for _, ap := range topo.AccessPoints() {
					switch topo.RegionOf(ap.Endpoint.Switch) {
					case "eu-west":
						src = ap
					case "us-east":
						dst = ap
					}
				}
				var offshore topology.SwitchID
				for _, sw := range topo.Switches() {
					if topo.RegionOf(sw) == "offshore" {
						offshore = sw
						break
					}
				}
				atk := &controlplane.GeoViolation{SrcIP: src.HostIP, DstIP: dst.HostIP, Via: offshore}
				agent := d.Agent(src.ClientID)
				check := func(d *deploy.Deployment) (bool, error) {
					resp, err := agent.Query(wire.QueryGeoRegions, ipConstraint(dst.HostIP), "offshore")
					if err != nil {
						return false, err
					}
					return resp.Status == wire.StatusViolation, nil
				}
				return d, newEnv(d, src, dst, lying), atk, check, nil
			},
		},
		{
			name: "neutrality-violation",
			build: func() (*deploy.Deployment, *baseline.Env, controlplane.Attack, rvaasCheck, error) {
				topo, err := topology.Linear(3, nil)
				if err != nil {
					return nil, nil, nil, nil, err
				}
				d, err := deploy.New(topo, deploy.Options{})
				if err != nil {
					return nil, nil, nil, nil, err
				}
				aps := topo.AccessPoints()
				src, victim := aps[0], aps[2]
				atk := &controlplane.NeutralityViolation{VictimIP: victim.HostIP, L4Dst: 443}
				agent := d.Agent(src.ClientID)
				constraints := append(ipConstraint(victim.HostIP),
					wire.FieldConstraint{Field: wire.FieldIPProto, Value: uint64(wire.IPProtoUDP), Mask: 0xFF},
					wire.FieldConstraint{Field: wire.FieldL4Dst, Value: 443, Mask: 0xFFFF},
				)
				check := func(d *deploy.Deployment) (bool, error) {
					resp, err := agent.Query(wire.QueryNeutrality, constraints, "")
					if err != nil {
						return false, err
					}
					return resp.Status == wire.StatusViolation, nil
				}
				env := newEnv(d, src, victim, lying)
				env.L4Dst = 443 // observe the throttled class itself
				return d, env, atk, check, nil
			},
		},
		{
			name: "meter-throttle",
			build: func() (*deploy.Deployment, *baseline.Env, controlplane.Attack, rvaasCheck, error) {
				topo, err := topology.Linear(3, nil)
				if err != nil {
					return nil, nil, nil, nil, err
				}
				d, err := deploy.New(topo, deploy.Options{})
				if err != nil {
					return nil, nil, nil, nil, err
				}
				aps := topo.AccessPoints()
				src, victim := aps[0], aps[2]
				atk := &controlplane.MeterThrottle{VictimIP: victim.HostIP, L4Dst: 443, RateKbps: 8}
				agent := d.Agent(src.ClientID)
				constraints := append(ipConstraint(victim.HostIP),
					wire.FieldConstraint{Field: wire.FieldIPProto, Value: uint64(wire.IPProtoUDP), Mask: 0xFF},
					wire.FieldConstraint{Field: wire.FieldL4Dst, Value: 443, Mask: 0xFFFF},
				)
				check := func(d *deploy.Deployment) (bool, error) {
					resp, err := agent.Query(wire.QueryNeutrality, constraints, "")
					if err != nil {
						return false, err
					}
					return resp.Status == wire.StatusViolation, nil
				}
				// Baselines observe the throttled class, but a single probe
				// packet passes the meter's burst allowance — path-based
				// observation is structurally blind to rate starvation.
				env := newEnv(d, src, victim, lying)
				env.L4Dst = 443
				return d, env, atk, check, nil
			},
		},
		{
			name: "flap-attack",
			build: func() (*deploy.Deployment, *baseline.Env, controlplane.Attack, rvaasCheck, error) {
				topo, err := topology.Linear(3, nil)
				if err != nil {
					return nil, nil, nil, nil, err
				}
				d, err := deploy.New(topo, deploy.Options{})
				if err != nil {
					return nil, nil, nil, nil, err
				}
				aps := topo.AccessPoints()
				src, victim := aps[0], aps[2]
				atk := &controlplane.FlapAttack{
					Inner: &controlplane.NeutralityViolation{VictimIP: victim.HostIP, L4Dst: 443},
				}
				check := func(d *deploy.Deployment) (bool, error) {
					for _, c := range d.RVaaS.FlapEvidence(0) {
						if c.Entry.Cookie&controlplane.CookieAttack == controlplane.CookieAttack {
							return true, nil
						}
					}
					return false, nil
				}
				return d, newEnv(d, src, victim, lying), atk, check, nil
			},
			// The flap attack installs and removes its rules between two
			// RVaaS polls; by the time any detector looks, the data plane
			// is clean again.
			execute: func(d *deploy.Deployment, atk controlplane.Attack) error {
				if err := d.RVaaS.PollAll(2 * time.Second); err != nil {
					return err
				}
				if err := atk.Launch(d.Provider); err != nil {
					return err
				}
				if err := d.RVaaS.PollAll(2 * time.Second); err != nil {
					return err
				}
				if err := atk.Revert(d.Provider); err != nil {
					return err
				}
				return d.RVaaS.PollAll(2 * time.Second)
			},
		},
	}
}

func freeEdgePort(topo *topology.Topology, sw topology.SwitchID) (topology.Endpoint, error) {
	for p := topology.PortNo(1); p <= topo.PortCount(sw); p++ {
		ep := topology.Endpoint{Switch: sw, Port: p}
		if topo.IsInternal(ep) {
			continue
		}
		if _, used := topo.AccessPointAt(ep); used {
			continue
		}
		return ep, nil
	}
	return topology.Endpoint{}, fmt.Errorf("experiments: no free port on switch %d", sw)
}

// DetectionMatrix runs every attack against RVaaS and both baselines and
// returns the full matrix. lying selects whether the compromised control
// plane falsifies its reports to the baselines (the paper's threat model;
// pass false for the honest-provider ablation).
func DetectionMatrix(lying bool) []DetectionResult {
	var out []DetectionResult
	for _, sc := range scenarios(lying) {
		out = append(out, runScenario(sc, lying)...)
	}
	return out
}

func runScenario(sc scenario, lying bool) []DetectionResult {
	fail := func(err error) []DetectionResult {
		return []DetectionResult{{Attack: sc.name, Detector: "setup", Err: err}}
	}
	d, env, atk, check, err := sc.build()
	if err != nil {
		return fail(err)
	}
	defer d.Close()

	detectors := []baseline.Detector{&baseline.Traceroute{}, &baseline.TrajectorySampling{}}
	for _, det := range detectors {
		if err := det.Baseline(env); err != nil {
			return fail(err)
		}
	}
	execute := sc.execute
	if execute == nil {
		execute = defaultExecute
	}
	if err := execute(d, atk); err != nil {
		return fail(err)
	}

	var out []DetectionResult
	detected, err := check(d)
	out = append(out, DetectionResult{Attack: sc.name, Detector: "rvaas", Detected: detected, Err: err})
	for _, det := range detectors {
		got, err := det.Detect(env)
		out = append(out, DetectionResult{Attack: sc.name, Detector: det.Name(), Detected: got, Err: err})
	}
	return out
}

// FormatMatrix renders the matrix as the table the harness prints.
func FormatMatrix(results []DetectionResult) string {
	detectors := []string{"rvaas", "traceroute", "trajectory-sampling"}
	cells := make(map[string]map[string]string)
	var attacks []string
	for _, r := range results {
		if cells[r.Attack] == nil {
			cells[r.Attack] = make(map[string]string)
			attacks = append(attacks, r.Attack)
		}
		v := "miss"
		if r.Err != nil {
			v = "err"
		} else if r.Detected {
			v = "DETECT"
		}
		cells[r.Attack][r.Detector] = v
	}
	out := fmt.Sprintf("%-22s %-8s %-12s %-20s\n", "attack", "rvaas", "traceroute", "traj-sampling")
	for _, a := range attacks {
		out += fmt.Sprintf("%-22s %-8s %-12s %-20s\n", a,
			cells[a][detectors[0]], cells[a][detectors[1]], cells[a][detectors[2]])
	}
	return out
}

// DetectionScore summarizes detection counts per detector.
func DetectionScore(results []DetectionResult) map[string]int {
	score := make(map[string]int)
	for _, r := range results {
		if r.Err == nil && r.Detected {
			score[r.Detector]++
		}
	}
	return score
}
