// Isolation check: the paper's first case study (§IV-B1) and the message
// flow of Figures 1 and 2. Two tenants share a provider network; the
// compromised control plane mounts a join attack, secretly granting a
// foreign endpoint access to tenant 1's network. Tenant 1's periodic
// isolation query detects it.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/controlplane"
	"repro/internal/deploy"
	"repro/internal/topology"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Four switches; tenant 1 owns the access points on switches 1-2,
	// tenant 2 those on switches 3-4. The provider installs tenant-isolated
	// routing (ingress-pinned, src/dst-matched flows).
	topo, err := topology.Linear(4, []uint64{1, 1, 2, 2})
	if err != nil {
		return err
	}
	d, err := deploy.New(topo, deploy.Options{TenantRouting: true})
	if err != nil {
		return err
	}
	defer d.Close()

	victim := topo.AccessPoints()[0]
	agent := d.Agent(1)

	query := func(label string) (*wire.QueryResponse, error) {
		fmt.Printf("== %s ==\n", label)
		fmt.Println(" 1. client sends integrity request packet (magic UDP header)")
		fmt.Println(" 2. ingress switch reports it via OpenFlow Packet-In")
		resp, err := agent.Query(wire.QueryIsolation, []wire.FieldConstraint{
			{Field: wire.FieldIPDst, Value: uint64(victim.HostIP), Mask: 0xFFFFFFFF},
		}, "")
		if err != nil {
			return nil, err
		}
		fmt.Println(" 3. RVaaS computes all access points able to reach the request point")
		fmt.Printf(" 4. auth requests dispatched via Packet-Out: %d (replies: %d)\n",
			resp.AuthRequested, resp.AuthReplied)
		fmt.Printf(" 5. signed integrity reply: status=%s\n", resp.Status)
		for _, e := range resp.Endpoints {
			owner := fmt.Sprintf("client %d", e.ClientID)
			if e.Detail == "unregistered-port" {
				owner = "UNREGISTERED PORT"
			}
			fmt.Printf("      reaching endpoint: switch %d port %d (%s, authenticated=%v)\n",
				e.SwitchID, e.Port, owner, e.Authenticated)
		}
		if resp.Detail != "" {
			fmt.Printf("      detail: %s\n", resp.Detail)
		}
		fmt.Println()
		return resp, nil
	}

	if _, err := query("clean network: isolation query"); err != nil {
		return err
	}

	fmt.Println(">>> cyber attack: the provider's control plane is compromised and")
	fmt.Println(">>> secretly joins a foreign endpoint into tenant 1's network")
	fmt.Println()
	atk := &controlplane.JoinAttack{
		VictimIP:   victim.HostIP,
		SecretAP:   topo.AccessPoints()[2].Endpoint, // tenant 2's port
		AttackerIP: wire.IPv4(172, 16, 6, 6),
	}
	if err := atk.Launch(d.Provider); err != nil {
		return err
	}
	if err := d.RVaaS.PollAll(2 * time.Second); err != nil {
		return err
	}

	resp, err := query("after join attack: isolation query")
	if err != nil {
		return err
	}
	if resp.Status == wire.StatusViolation {
		fmt.Println("RESULT: join attack detected — the client learned, with an enclave-signed")
		fmt.Println("answer, that endpoints outside its tenant can reach its network card.")
	} else {
		fmt.Println("RESULT: attack NOT detected (unexpected)")
	}
	return nil
}
