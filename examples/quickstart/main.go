// Quickstart: bring up a small software-defined network with an RVaaS
// controller attached and ask the most basic question the paper supports:
// "which destinations can be reached by the traffic leaving my network
// card?" — verified both logically (header space analysis on the monitored
// configuration) and physically (in-band authentication of each endpoint).
//
// The lab itself is declared in lab.yml — the same spec format the rvaasd
// runner deploys — and built here with deploy.FromSpec.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"repro/internal/deploy"
	"repro/internal/labspec"
	"repro/internal/wire"
)

//go:embed lab.yml
var labYAML []byte

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec, err := labspec.Parse(labYAML)
	if err != nil {
		return err
	}
	d, err := deploy.FromSpec(spec)
	if err != nil {
		return err
	}
	defer d.Close()
	topo := d.Topology

	fmt.Println("RVaaS quickstart")
	fmt.Printf("  lab spec: %q (%s)\n", spec.Name, "lab.yml")
	fmt.Printf("  switches: %d, clients: %d\n", len(topo.Switches()), len(topo.AccessPoints()))
	fmt.Printf("  enclave measurement: %x...\n", rvaasMeasurementPrefix(d))
	fmt.Println()

	// Client 1 asks which endpoints its traffic to client 4's address can
	// reach. The query travels in-band (magic UDP header), is intercepted
	// at the ingress switch as an OpenFlow Packet-In, analyzed against the
	// monitored configuration, and every discovered endpoint is challenged
	// with an authentication request before the signed answer returns.
	agent := d.Agent(1)
	dst := topo.AccessPoints()[3]
	resp, err := agent.Query(wire.QueryReachableDestinations, []wire.FieldConstraint{
		{Field: wire.FieldIPDst, Value: uint64(dst.HostIP), Mask: 0xFFFFFFFF},
	}, "")
	if err != nil {
		return err
	}

	fmt.Printf("query: reachable destinations for traffic to %s\n", wire.IPString(dst.HostIP))
	fmt.Printf("  status:         %s\n", resp.Status)
	fmt.Printf("  snapshot:       #%d\n", resp.SnapshotID)
	fmt.Printf("  auth requested: %d, replied: %d\n", resp.AuthRequested, resp.AuthReplied)
	for _, e := range resp.Endpoints {
		fmt.Printf("  endpoint: switch %d port %d client %d authenticated=%v\n",
			e.SwitchID, e.Port, e.ClientID, e.Authenticated)
	}
	fmt.Println()
	fmt.Println("The response was signed inside the RVaaS enclave and verified against")
	fmt.Println("the pinned code measurement — the provider's control plane never had")
	fmt.Println("to be trusted for any part of this answer.")
	return nil
}

func rvaasMeasurementPrefix(d *deploy.Deployment) []byte {
	m := d.RVaaS.KeyQuote().Measurement
	return m[:6]
}
