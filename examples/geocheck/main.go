// Geo-location check: the paper's second case study (§IV-B2). A client in
// eu-west sends traffic to us-east and verifies which jurisdictions its
// packets can traverse. A compromised control plane re-routes the flow
// through an offshore region; the client's geo query exposes it.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/controlplane"
	"repro/internal/deploy"
	"repro/internal/topology"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topo, err := topology.MultiRegionWAN(
		[]topology.Region{"eu-west", "offshore", "us-east"}, 3)
	if err != nil {
		return err
	}
	d, err := deploy.New(topo, deploy.Options{})
	if err != nil {
		return err
	}
	defer d.Close()

	var src, dst topology.AccessPoint
	for _, ap := range topo.AccessPoints() {
		switch topo.RegionOf(ap.Endpoint.Switch) {
		case "eu-west":
			src = ap
		case "us-east":
			dst = ap
		}
	}
	agent := d.Agent(src.ClientID)
	constraint := []wire.FieldConstraint{
		{Field: wire.FieldIPDst, Value: uint64(dst.HostIP), Mask: 0xFFFFFFFF},
	}

	query := func(label string) error {
		resp, err := agent.Query(wire.QueryGeoRegions, constraint, "offshore")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n  regions traversable: %v\n  status: %s",
			label, resp.Regions, resp.Status)
		if resp.Detail != "" {
			fmt.Printf(" (%s)", resp.Detail)
		}
		fmt.Println()
		fmt.Println()
		return nil
	}

	fmt.Printf("geo check: %s (eu-west) -> %s (us-east), forbidden region: offshore\n\n",
		wire.IPString(src.HostIP), wire.IPString(dst.HostIP))
	if err := query("clean network:"); err != nil {
		return err
	}

	var offshore topology.SwitchID
	for _, sw := range topo.Switches() {
		if topo.RegionOf(sw) == "offshore" {
			offshore = sw
			break
		}
	}
	fmt.Println(">>> compromised control plane re-routes the flow through offshore")
	fmt.Println()
	atk := &controlplane.GeoViolation{SrcIP: src.HostIP, DstIP: dst.HostIP, Via: offshore}
	if err := atk.Launch(d.Provider); err != nil {
		return err
	}
	if err := d.RVaaS.PollAll(2 * time.Second); err != nil {
		return err
	}
	if err := query("after geo-violation attack:"); err != nil {
		return err
	}

	fmt.Println("The client never learned the provider's topology — only the set of")
	fmt.Println("jurisdictions its own traffic is exposed to (paper §IV-B2).")
	return nil
}
