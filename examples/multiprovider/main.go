// Multi-provider federation: the paper's §IV-C extension. Traffic from a
// client of provider A exits through a peering port into provider B. A geo
// query to A's RVaaS recurses into B's RVaaS, so the client learns every
// jurisdiction along the full inter-provider route while each provider's
// topology stays confidential.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/deploy"
	"repro/internal/openflow"
	"repro/internal/topology"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topoA, err := topology.MultiRegionWAN([]topology.Region{"a-north", "a-south"}, 2)
	if err != nil {
		return err
	}
	topoB, err := topology.MultiRegionWAN([]topology.Region{"b-east", "b-west"}, 2)
	if err != nil {
		return err
	}
	dA, err := deploy.New(topoA, deploy.Options{})
	if err != nil {
		return err
	}
	defer dA.Close()
	dB, err := deploy.New(topoB, deploy.Options{})
	if err != nil {
		return err
	}
	defer dB.Close()

	egressA, err := freePort(topoA)
	if err != nil {
		return err
	}
	entryB, err := freePort(topoB)
	if err != nil {
		return err
	}
	srcA := topoA.AccessPoints()[0]
	dstB := topoB.AccessPoints()[len(topoB.AccessPoints())-1]

	// Provider A routes the B prefix toward the peering port.
	for _, sw := range topoA.Switches() {
		var out topology.PortNo
		if sw == egressA.Switch {
			out = egressA.Port
		} else {
			path := topoA.ShortestPath(sw, egressA.Switch)
			if path == nil || len(path) < 2 {
				continue
			}
			out = topoA.PortTowards(sw, path[1])
		}
		dA.Fabric.Switch(sw).InstallDirect(openflow.FlowEntry{
			Priority: 150,
			Match: openflow.Match{Fields: []openflow.FieldMatch{
				{Field: wire.FieldIPDst, Value: uint64(dstB.HostIP), Mask: 0xFFFFFFFF},
			}},
			Actions: []openflow.Action{openflow.Output(uint32(out))},
			Cookie:  0x9999,
		})
	}
	if err := dA.RVaaS.PollAll(2 * time.Second); err != nil {
		return err
	}
	// Providers exchange RVaaS peering contracts.
	dA.RVaaS.AddPeer("provider-b", egressA, dB.RVaaS, entryB)

	fmt.Println("multi-provider RVaaS federation")
	fmt.Printf("  provider A regions: %v\n", topoA.Regions())
	fmt.Printf("  provider B regions: %v\n", topoB.Regions())
	fmt.Printf("  peering: A %s  ->  B %s\n\n", egressA, entryB)

	agent := dA.Agent(srcA.ClientID)
	resp, err := agent.Query(wire.QueryGeoRegions, []wire.FieldConstraint{
		{Field: wire.FieldIPDst, Value: uint64(dstB.HostIP), Mask: 0xFFFFFFFF},
	}, "")
	if err != nil {
		return err
	}
	fmt.Printf("client of A queries geo-regions for traffic to %s (a host in B):\n",
		wire.IPString(dstB.HostIP))
	fmt.Printf("  regions traversable across BOTH providers: %v\n", resp.Regions)
	fmt.Printf("  status: %s\n\n", resp.Status)

	eps := dA.RVaaS.FederatedReachable(srcA.Endpoint, []wire.FieldConstraint{
		{Field: wire.FieldIPDst, Value: uint64(dstB.HostIP), Mask: 0xFFFFFFFF},
	})
	fmt.Printf("federated reachable endpoints (provider-qualified): %v\n", eps)
	fmt.Println("\nEach provider answered only for its own network; the recursion result")
	fmt.Println("reveals endpoints and jurisdictions, never internal topology (§IV-C).")
	return nil
}

func freePort(topo *topology.Topology) (topology.Endpoint, error) {
	for _, sw := range topo.Switches() {
		for p := topology.PortNo(1); p <= topo.PortCount(sw); p++ {
			ep := topology.Endpoint{Switch: sw, Port: p}
			if topo.IsInternal(ep) {
				continue
			}
			if _, used := topo.AccessPointAt(ep); used {
				continue
			}
			return ep, nil
		}
	}
	return topology.Endpoint{}, fmt.Errorf("no free peering port")
}
