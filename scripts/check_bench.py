#!/usr/bin/env python3
"""CI benchmark gate.

Two layers of checking over the BENCH_<EXP>.json files the bench harness
emits (cmd/benchharness -json):

1. Absolute claims — invariants of the architecture that must hold on any
   healthy runner:
     * E12: incremental re-check of standing invariants is >= 5x faster
       than naive full re-evaluation on linear-40.
     * E13: the sharded recheck engine (inverted-index dispatch + worker
       pool + isolation cone caching) is >= 5x faster than the legacy
       linear-scan engine at the 10^4-invariant population, and one
       incremental pass evaluates only the dirty bucket (<= 10% of the
       subscription population). Its pool-speedup (parallel-1 vs
       parallel-max) must be >= POOL_SPEEDUP_FLOOR: the floor is kept
       deliberately conservative (1.1x) because CI runner core counts
       vary, but any healthy multi-core runner must show the worker pool
       beating the single-worker pass.
     * E14: rule-delta (header-space) dispatch after a single shadow-free
       rule insert on a hub switch evaluates strictly fewer invariants
       per pass than the per-switch dirty bucket (which on a hub is the
       whole population).
     * E15: protocol v2 batch registration of the 10^4-invariant
       population is >= 5x faster than sequential signed round-trips, and
       kill/restart recovery completes: every persisted subscription is
       restored AND re-verified (restored == subs, reverified >= restored).
     * E16: every fault-envelope row (trunk partition, with and without
       channel loss) detects the partition within the liveness contract,
       reports ZERO stale-green samples, and heals through the children's
       own rejoin backoff (>= 1 rejoin per row) within a bounded window.
     * E18: every verifier-fleet arm's verdict/detail/seq stream is
       byte-identical to the N=1 reference (verdicts-match == 1), and on
       the anchor-rooted population the N=4 footprint fleet confines a
       single-switch pass to strictly fewer instances than the fleet size
       (dispatch reaches only the instances owning a dirty bucket).

2. Regression gate — when a previous run's artifacts are available (pass
   the directory as --prev), every key metric is diffed against its
   previous value and the run fails on > REGRESSION_TOLERANCE relative
   regression. Latency metrics (unit "ns") regress upwards; speedup
   metrics (unit "x") regress downwards. Tiny latencies are skipped as
   noise-dominated.

Usage: check_bench.py [--prev DIR] [--cur DIR]
"""

import argparse
import json
import sys
from pathlib import Path

REGRESSION_TOLERANCE = 0.25  # fail on >25% regression vs previous run
NOISE_FLOOR_NS = 200_000     # latencies under 200us are noise-dominated
POOL_SPEEDUP_FLOOR = 1.1     # conservative: runner core counts vary, but
                             # the worker pool must beat one worker


def load_reports(directory):
    """Map experiment id -> {metric -> (value, unit)}."""
    reports = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        with open(path) as f:
            report = json.load(f)
        metrics = {}
        for m in report.get("metrics", []):
            metrics[m["metric"]] = (float(m["value"]), m.get("unit", ""))
        reports[report["experiment"]] = metrics
    return reports


def check_claims(cur):
    failures = []

    e12 = cur.get("e12", {})
    speedup = e12.get("linear-40/speedup", (0.0, ""))[0]
    print(f"e12: linear-40 incremental speedup = {speedup:.1f}x (require >= 5)")
    if speedup < 5.0:
        failures.append(f"e12: linear-40 incremental speedup {speedup:.1f}x < 5x")

    e13 = cur.get("e13", {})
    key = "linear-40/subs=10000"
    speedup = e13.get(f"{key}/speedup", (0.0, ""))[0]
    subs = e13.get(f"{key}/subs", (0.0, ""))[0]
    evals = e13.get(f"{key}/evals-per-check", (float("inf"), ""))[0]
    print(f"e13: {key} sharded-vs-legacy speedup = {speedup:.1f}x (require >= 5)")
    print(f"e13: {key} evals/check = {evals:.1f} of {subs:.0f} subs (require <= 10%)")
    if speedup < 5.0:
        failures.append(f"e13: {key} sharded speedup {speedup:.1f}x < 5x")
    if subs <= 0 or evals > subs * 0.10:
        failures.append(
            f"e13: {key} evals-per-check {evals:.1f} exceeds 10% of {subs:.0f} subs "
            "(dirty dispatch is touching more than the affected bucket)")
    pool = e13.get(f"{key}/pool-speedup", (0.0, ""))[0]
    print(f"e13: {key} pool-speedup = {pool:.2f}x (require >= {POOL_SPEEDUP_FLOOR})")
    if pool < POOL_SPEEDUP_FLOOR:
        failures.append(
            f"e13: {key} pool-speedup {pool:.2f}x < {POOL_SPEEDUP_FLOOR}x "
            "(the recheck worker pool is not beating a single worker)")

    e14 = cur.get("e14", {})
    key = "star-40/subs=10000"
    per_switch = e14.get(f"{key}/per-switch-evals", (0.0, ""))[0]
    delta = e14.get(f"{key}/delta-evals", (float("inf"), ""))[0]
    print(f"e14: {key} evals/check: rule-delta {delta:.1f} vs per-switch {per_switch:.1f} "
          "(require delta < per-switch)")
    if per_switch <= 0 or delta >= per_switch:
        failures.append(
            f"e14: {key} rule-delta evals-per-check {delta:.1f} not below the per-switch "
            f"dirty bucket {per_switch:.1f} (the header-space overlap filter is not filtering)")

    e15 = cur.get("e15", {})
    key = "linear-40/subs=10000"
    speedup = e15.get(f"{key}/batch-speedup", (0.0, ""))[0]
    subs = e15.get(f"{key}/subs", (0.0, ""))[0]
    restored = e15.get(f"{key}/restored", (0.0, ""))[0]
    reverified = e15.get(f"{key}/reverified", (-1.0, ""))[0]
    print(f"e15: {key} batch-vs-sequential registration speedup = {speedup:.1f}x (require >= 5)")
    print(f"e15: {key} restart restore: {restored:.0f}/{subs:.0f} restored, "
          f"{reverified:.0f} re-verified (require restored == subs, reverified >= restored)")
    if speedup < 5.0:
        failures.append(f"e15: {key} batch registration speedup {speedup:.1f}x < 5x")
    if subs <= 0 or restored != subs:
        failures.append(
            f"e15: {key} restart restored {restored:.0f} of {subs:.0f} subscriptions "
            "(persistence restore is incomplete)")
    if reverified < restored:
        failures.append(
            f"e15: {key} only {reverified:.0f} of {restored:.0f} restored subscriptions were "
            "re-verified after the restart")

    e16 = cur.get("e16", {})
    # Detection must beat 5x the lab's 400ms beat-miss contract; recovery
    # is randomized (jittered backoff under loss) but must stay inside the
    # sweep's own convergence deadline.
    DETECT_BOUND_NS = 2e9
    CONVERGE_BOUND_NS = 25e9
    for row in ("loss=0/part=1200ms", "loss=5/part=1200ms", "loss=5/part=2500ms"):
        key = f"placed4/{row}"
        detect = e16.get(f"{key}/detach-detect", (0.0, ""))[0]
        converge = e16.get(f"{key}/reattach-converge", (0.0, ""))[0]
        stale = e16.get(f"{key}/stale-green", (-1.0, ""))[0]
        rejoins = e16.get(f"{key}/rejoins", (0.0, ""))[0]
        print(f"e16: {key} detach-detect = {detect / 1e6:.0f}ms, reattach-converge = "
              f"{converge / 1e6:.0f}ms, stale-green = {stale:.0f}, rejoins = {rejoins:.0f}")
        if not 0 < detect < DETECT_BOUND_NS:
            failures.append(
                f"e16: {key} detach-detect {detect / 1e6:.0f}ms outside (0, {DETECT_BOUND_NS / 1e6:.0f}ms) "
                "(the beat-miss monitor is not detecting the partition)")
        if not 0 < converge < CONVERGE_BOUND_NS:
            failures.append(
                f"e16: {key} reattach-converge {converge / 1e6:.0f}ms outside "
                f"(0, {CONVERGE_BOUND_NS / 1e6:.0f}ms)")
        if stale != 0:
            failures.append(
                f"e16: {key} stale-green = {stale:.0f} (the verification plane reported green "
                "while partitioned switches were known-detached)")
        if rejoins < 1:
            failures.append(
                f"e16: {key} rejoins = {rejoins:.0f} (healing did not go through the child's "
                "rejoin backoff)")

    e18 = cur.get("e18", {})
    FLEET_ARMS = [
        f"fatwan-4x6/{pop}/n={n}-{placement}"
        for pop in ("reach", "mixed")
        for n, placement in ((1, "footprint"), (4, "footprint"), (4, "rendezvous"))
    ]
    for key in FLEET_ARMS:
        match = e18.get(f"{key}/verdicts-match", (-1.0, ""))[0]
        print(f"e18: {key} verdicts-match = {match:.0f} (require 1)")
        if match != 1.0:
            failures.append(
                f"e18: {key} verdicts-match = {match:.0f} (the fleet's merged verdict stream "
                "diverged from the N=1 reference engine)")
    key = "fatwan-4x6/reach/n=4-footprint"
    touched = e18.get(f"{key}/touched-per-pass", (float("inf"), ""))[0]
    print(f"e18: {key} touched/pass = {touched:.2f} of 4 instances (require < 4)")
    if touched >= 4.0:
        failures.append(
            f"e18: {key} single-switch passes touched {touched:.2f} of 4 instances "
            "(footprint placement is not confining dispatch to owning instances)")
    return failures


def check_regressions(prev, cur):
    failures = []
    compared = 0
    for exp, cur_metrics in sorted(cur.items()):
        if exp == "e16":
            # Envelope latencies are dominated by jittered backoff and
            # randomized loss timing; they are gated by the absolute
            # bounds in check_claims, not run-to-run diffs.
            print("e16: envelope metrics gated by absolute bounds; skipping regression diff")
            continue
        prev_metrics = prev.get(exp)
        if not prev_metrics:
            print(f"{exp}: no previous artifact, skipping regression diff")
            continue
        for metric, (cur_val, unit) in sorted(cur_metrics.items()):
            if metric not in prev_metrics:
                continue
            prev_val = prev_metrics[metric][0]
            if prev_val <= 0 or cur_val <= 0:
                continue
            if unit == "ns":
                if max(prev_val, cur_val) < NOISE_FLOOR_NS:
                    continue
                ratio = cur_val / prev_val
                regressed = ratio > 1.0 + REGRESSION_TOLERANCE
            elif unit == "x":
                ratio = cur_val / prev_val
                regressed = ratio < 1.0 - REGRESSION_TOLERANCE
            else:
                continue
            compared += 1
            if regressed:
                failures.append(
                    f"{exp}: {metric} regressed {prev_val:.0f} -> {cur_val:.0f} {unit} "
                    f"({(ratio - 1.0) * 100:+.0f}%)")
    print(f"regression gate: compared {compared} metrics against the previous run")
    return failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--cur", default=".", help="directory with this run's BENCH_*.json")
    ap.add_argument("--prev", default="", help="directory with the previous run's BENCH_*.json")
    args = ap.parse_args()

    cur = load_reports(args.cur)
    if not cur:
        print(f"no BENCH_*.json found in {args.cur}", file=sys.stderr)
        return 1

    failures = check_claims(cur)
    if args.prev and Path(args.prev).is_dir():
        failures += check_regressions(load_reports(args.prev), cur)
    elif args.prev:
        print(f"previous artifact dir {args.prev} absent; skipping regression diff")

    if failures:
        print("\nBENCH GATE FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
